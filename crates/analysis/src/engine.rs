//! `BatchAnalyzer`: the hyper-scale batch verification engine.
//!
//! The sequential entry points ([`crate::analyze_batch_with`]) lint one
//! plan after another and build the waits-for graph by an O(n²) pairwise
//! scan. This engine produces the *byte-identical* diagnostic list (proved
//! by the differential suites in `tests/analysis_parallel_equivalence.rs`)
//! while scaling to hyper-scale batches two ways:
//!
//! - **Parallel**: per-plan lints are independent, so they shard across a
//!   `std::thread::scope` pool (the same deterministic fork-join pattern
//!   `p4update-perf` uses) and merge in plan order. The waits-for graph is
//!   built from a *link index* — only plan pairs that actually share a
//!   directed link are examined — and cycle detection runs per
//!   link-disjoint component, components in parallel.
//! - **Deterministic**: workers stash `(index, result)` pairs and the
//!   merge sorts by index, so the output is identical for any worker
//!   count; cycle sets merge through the same `BTreeSet` canonical order
//!   the sequential path emits in.
//!
//! Why sharding by link is sound: a waits-for edge `A → B` requires a
//! directed link on `A`'s new path that lies on `B`'s old path, so every
//! edge stays inside one link-connected component, and a three-coloring
//! DFS restricted to a component (vertices in ascending order) reports
//! exactly the cycles the global DFS would. See `DESIGN.md` §13.

use crate::conflicts::{
    check_batch_versions, contended, cycle_diagnostics, find_cycles, PlanEdges,
};
use crate::delta::PlanDelta;
use crate::{analyze_with, AnalysisContext, Diagnostic};
use p4update_core::PreparedUpdate;
use p4update_net::{NodeId, Version};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Deterministic fork-join map (the `p4update-perf` pool pattern,
/// rehomed here because `perf` sits above `analysis` in the crate DAG):
/// evaluate `f(0..jobs)` on up to `workers` threads and return results in
/// input order, so the caller sees the same output for any worker count.
fn parallel_map<T, F>(jobs: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, jobs.max(1));
    if workers == 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(jobs);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            indexed.extend(h.join().expect("analysis worker panicked"));
        }
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

/// What one plan's lint saw and produced; cached so a delta can reuse it
/// when the plan and its context inputs are unchanged.
#[derive(Debug, Clone)]
struct PlanRecord {
    /// Findings of the per-plan checks (P4U001–P4U010, P4U013).
    diags: Vec<Diagnostic>,
    /// The installed-version context the lint observed for this flow
    /// (`P4U004`'s input); a different value invalidates the record.
    installed: Option<Version>,
}

/// The parallel, incremental batch verification engine. Stateless apart
/// from its worker count; results (and the caches a delta reuses) live in
/// the [`BatchAnalysis`] it returns.
#[derive(Debug, Clone, Copy)]
pub struct BatchAnalyzer {
    workers: usize,
}

impl BatchAnalyzer {
    /// An engine running on `workers` threads (clamped to at least 1).
    /// One worker runs everything inline — no threads are spawned — and
    /// is still byte-identical to any other worker count.
    pub fn new(workers: usize) -> Self {
        BatchAnalyzer {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Analyze a batch from scratch. The returned
    /// [`BatchAnalysis::diagnostics`] list is byte-identical to
    /// [`crate::analyze_batch_with`] on the same inputs.
    pub fn analyze(&self, plans: &[PreparedUpdate], ctx: &AnalysisContext<'_>) -> BatchAnalysis {
        let records: Vec<PlanRecord> = parallel_map(plans.len(), self.workers, |i| PlanRecord {
            diags: analyze_with(&plans[i], ctx),
            installed: ctx.installed.get(&plans[i].flow).copied(),
        });
        self.assemble(plans.to_vec(), records, plans.len(), ctx, None)
    }

    /// Re-analyze `prev`'s batch after `delta`, reusing every cached
    /// result whose inputs did not change:
    ///
    /// - per-plan lints are reused unless the plan was added/revised or
    ///   the installed version of its flow in `ctx` differs from what the
    ///   cached lint saw;
    /// - waits-for cycle sets are reused per link-disjoint component when
    ///   the component's member set maps exactly onto a component of the
    ///   previous analysis with every member unchanged.
    ///
    /// The result is byte-identical to a full [`Self::analyze`] of the
    /// post-delta batch (asserted by the differential suites);
    /// [`BatchAnalysis::revalidated`] reports how many plans were
    /// actually re-linted. `ctx` must target the same topology as the
    /// previous analysis — the caches do not fingerprint the topology.
    pub fn reanalyze(
        &self,
        prev: &BatchAnalysis,
        delta: &PlanDelta,
        ctx: &AnalysisContext<'_>,
    ) -> BatchAnalysis {
        let (plans, origin) = delta.apply(&prev.plans);
        // Decide, per plan, whether the cached record is still valid.
        let reusable: Vec<Option<usize>> = plans
            .iter()
            .zip(&origin)
            .map(|(plan, o)| {
                o.filter(|&p| prev.per_plan[p].installed == ctx.installed.get(&plan.flow).copied())
            })
            .collect();
        let misses: Vec<usize> = (0..plans.len())
            .filter(|&i| reusable[i].is_none())
            .collect();
        let fresh: Vec<PlanRecord> = parallel_map(misses.len(), self.workers, |j| {
            let i = misses[j];
            PlanRecord {
                diags: analyze_with(&plans[i], ctx),
                installed: ctx.installed.get(&plans[i].flow).copied(),
            }
        });
        let mut fresh = fresh.into_iter();
        let records: Vec<PlanRecord> = (0..plans.len())
            .map(|i| match reusable[i] {
                Some(p) => prev.per_plan[p].clone(),
                None => fresh.next().expect("one fresh record per miss"),
            })
            .collect();
        let revalidated = misses.len();
        // Components are reusable only when every member is an unchanged
        // plan (origin preserved), independent of installed context —
        // the waits-for graph reads paths, sizes, and capacities only.
        let cache = ComponentCache {
            origin: &origin,
            prev: &prev.components,
        };
        self.assemble(plans, records, revalidated, ctx, Some(cache))
    }

    /// Shared back half of [`Self::analyze`] / [`Self::reanalyze`]: batch
    /// version check, link-sharded waits-for analysis, and final
    /// diagnostic assembly in the sequential emission order.
    fn assemble(
        &self,
        plans: Vec<PreparedUpdate>,
        per_plan: Vec<PlanRecord>,
        revalidated: usize,
        ctx: &AnalysisContext<'_>,
        cache: Option<ComponentCache<'_>>,
    ) -> BatchAnalysis {
        let mut diags: Vec<Diagnostic> = Vec::new();
        for r in &per_plan {
            diags.extend(r.diags.iter().cloned());
        }
        check_batch_versions(&plans, &mut diags);
        let components = self.waits_for_components(&plans, ctx, cache);
        let mut all_cycles: BTreeSet<Vec<usize>> = BTreeSet::new();
        for (members, local_cycles) in &components {
            for cycle in local_cycles {
                all_cycles.insert(cycle.iter().map(|&p| members[p]).collect());
            }
        }
        cycle_diagnostics(&plans, &all_cycles, &mut diags);
        BatchAnalysis {
            plans,
            per_plan,
            components,
            diags,
            revalidated,
        }
    }

    /// The link-sharded waits-for analysis. Returns each non-trivial
    /// component as `(ascending member indices, cycles in member-local
    /// positions)`, ordered by smallest member.
    fn waits_for_components(
        &self,
        plans: &[PreparedUpdate],
        ctx: &AnalysisContext<'_>,
        cache: Option<ComponentCache<'_>>,
    ) -> BTreeMap<Vec<usize>, Vec<Vec<usize>>> {
        let n = plans.len();
        if n < 2 {
            return BTreeMap::new();
        }
        let edges: Vec<PlanEdges> = parallel_map(n, self.workers, |i| PlanEdges::of(&plans[i]));
        // Link index: for every directed link, the plans whose *new* path
        // uses it (edge sources) and the plans moving *off* it (old but
        // not new — edge targets). Only these pairs can contend, so the
        // construction never touches the n² pair space.
        let mut by_link: BTreeMap<(NodeId, NodeId), (Vec<usize>, Vec<usize>)> = BTreeMap::new();
        for (i, e) in edges.iter().enumerate() {
            for &l in &e.new_edges {
                by_link.entry(l).or_default().0.push(i);
            }
            for &l in &e.old_edges {
                if !e.new_edges.contains(&l) {
                    by_link.entry(l).or_default().1.push(i);
                }
            }
        }
        // Shard adjacency construction by link: each worker scans a chunk
        // of the link entries and emits candidate waits-for edges; the
        // merge unions them into per-vertex sets (order-insensitive), so
        // the adjacency is identical for any worker count — and identical
        // to the pairwise reference construction, which admits an edge
        // `a → b` iff *some* shared link contends.
        type LinkEntry<'a> = (&'a (NodeId, NodeId), &'a (Vec<usize>, Vec<usize>));
        let entries: Vec<LinkEntry<'_>> = by_link.iter().collect();
        let chunks = self.workers.min(entries.len()).max(1);
        let chunk_size = entries.len().div_ceil(chunks);
        let edge_lists: Vec<Vec<(usize, usize)>> = parallel_map(chunks, self.workers, |c| {
            let mut found = Vec::new();
            let lo = (c * chunk_size).min(entries.len());
            let hi = (lo + chunk_size).min(entries.len());
            for (&link, (sources, targets)) in &entries[lo..hi] {
                for &a in sources {
                    for &b in targets {
                        if a != b
                            && edges[a].flow != edges[b].flow
                            && contended(ctx.topo, link, &edges[a], &edges[b])
                        {
                            found.push((a, b));
                        }
                    }
                }
            }
            found
        });
        let mut adj_sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        let mut dsu = Dsu::new(n);
        for (a, b) in edge_lists.into_iter().flatten() {
            adj_sets[a].insert(b);
            dsu.union(a, b);
        }
        let adj: Vec<Vec<usize>> = adj_sets
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect();
        // Group vertices that share waits-for edges into components.
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (v, out) in adj.iter().enumerate() {
            if !out.is_empty() || dsu.find(v) != v {
                groups.entry(dsu.find(v)).or_default().push(v);
            }
        }
        let comps: Vec<Vec<usize>> = groups.into_values().filter(|m| m.len() >= 2).collect();
        // Cycle detection per component, components in parallel; reuse a
        // previous component's cycles when the member sets correspond
        // exactly through the delta's origin map.
        let local_cycles: Vec<Vec<Vec<usize>>> = parallel_map(comps.len(), self.workers, |c| {
            let members = &comps[c];
            if let Some(cached) = cache.as_ref().and_then(|ca| ca.lookup(members)) {
                return cached;
            }
            find_cycles(&adj, members.iter().copied())
                .into_iter()
                .map(|cycle| {
                    cycle
                        .iter()
                        .map(|&g| {
                            members
                                .binary_search(&g)
                                .expect("cycle vertex in component")
                        })
                        .collect()
                })
                .collect()
        });
        comps.into_iter().zip(local_cycles).collect()
    }
}

/// The previous analysis' component cache plus the index mapping a delta
/// established: `origin[new_index]` is the plan's index in the previous
/// batch when it was carried over unchanged.
struct ComponentCache<'a> {
    origin: &'a [Option<usize>],
    prev: &'a BTreeMap<Vec<usize>, Vec<Vec<usize>>>,
}

impl ComponentCache<'_> {
    /// Cycles (member-local) for a component whose members are all
    /// unchanged plans forming exactly one previous component. Member
    /// order is preserved because deltas keep retained plans in batch
    /// order, so ascending stays ascending through the mapping.
    fn lookup(&self, members: &[usize]) -> Option<Vec<Vec<usize>>> {
        let prev_members: Vec<usize> = members
            .iter()
            .map(|&i| self.origin[i])
            .collect::<Option<_>>()?;
        self.prev.get(&prev_members).cloned()
    }
}

/// Union-find with path halving; determinism is irrelevant here because
/// only the final partition (not the root choice) is observable.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut v: usize) -> usize {
        while self.parent[v] != v {
            self.parent[v] = self.parent[self.parent[v]];
            v = self.parent[v];
        }
        v
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller root wins so `find` results are stable per partition.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// The result of one engine pass: the analyzed plans, the diagnostic list
/// (byte-identical to the sequential path), and the caches the next
/// [`BatchAnalyzer::reanalyze`] call draws on.
#[derive(Debug, Clone)]
pub struct BatchAnalysis {
    plans: Vec<PreparedUpdate>,
    per_plan: Vec<PlanRecord>,
    /// Non-trivial waits-for components: ascending member indices →
    /// cycles in member-local positions.
    components: BTreeMap<Vec<usize>, Vec<Vec<usize>>>,
    diags: Vec<Diagnostic>,
    revalidated: usize,
}

impl BatchAnalysis {
    /// The plans this analysis covers, in batch order.
    pub fn plans(&self) -> &[PreparedUpdate] {
        &self.plans
    }

    /// Every finding, in the exact order [`crate::analyze_batch_with`]
    /// emits: per-plan diagnostics in plan order, then batch version
    /// conflicts, then waits-for cycles in canonical order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// How many plans this pass actually linted (as opposed to reusing a
    /// cached record). Equals the plan count for a fresh
    /// [`BatchAnalyzer::analyze`]; strictly smaller whenever
    /// [`BatchAnalyzer::reanalyze`] found reusable work.
    pub fn revalidated(&self) -> usize {
        self.revalidated
    }

    /// Number of plans in the batch.
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }

    /// True when no finding is an error (the analysis-gate condition).
    pub fn is_clean(&self) -> bool {
        crate::is_clean(&self.diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_batch_with;
    use p4update_core::{prepare_update, Strategy};
    use p4update_net::{FlowId, FlowUpdate, Path};

    fn path(ids: &[u32]) -> Path {
        Path::new(ids.iter().map(|&i| p4update_net::NodeId(i)).collect())
    }

    fn swap_batch() -> Vec<PreparedUpdate> {
        let a = FlowUpdate::new(FlowId(1), Some(path(&[0, 1, 3])), path(&[0, 2, 3]), 1.0);
        let b = FlowUpdate::new(FlowId(2), Some(path(&[0, 2, 3])), path(&[0, 1, 3]), 1.0);
        vec![
            prepare_update(&a, Version(2), Strategy::Auto),
            prepare_update(&b, Version(2), Strategy::Auto),
        ]
    }

    #[test]
    fn engine_matches_sequential_on_a_cycle_batch() {
        let plans = swap_batch();
        let ctx = AnalysisContext::default();
        let reference = analyze_batch_with(&plans, &ctx);
        for workers in [1, 2, 4] {
            let got = BatchAnalyzer::new(workers).analyze(&plans, &ctx);
            assert_eq!(got.diagnostics(), &reference[..], "workers={workers}");
            assert_eq!(got.revalidated(), plans.len());
        }
    }

    #[test]
    fn empty_and_single_plan_batches_work() {
        let engine = BatchAnalyzer::new(4);
        let ctx = AnalysisContext::default();
        let empty = engine.analyze(&[], &ctx);
        assert!(empty.diagnostics().is_empty());
        assert_eq!(empty.plan_count(), 0);
        let one = swap_batch().into_iter().take(1).collect::<Vec<_>>();
        let got = engine.analyze(&one, &ctx);
        assert_eq!(got.diagnostics(), &analyze_batch_with(&one, &ctx)[..]);
    }

    #[test]
    fn parallel_map_preserves_order() {
        for workers in [1, 2, 3, 8] {
            assert_eq!(
                parallel_map(17, workers, |i| i * 3),
                (0..17).map(|i| i * 3).collect::<Vec<_>>()
            );
        }
        assert!(parallel_map(0, 4, |i| i).is_empty());
    }
}
