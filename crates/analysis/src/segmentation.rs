//! Segmentation well-formedness (P4U005, P4U006, P4U007) and the §7.5
//! mechanism-choice advisory (P4U008).

use crate::diagnostic::{Code, Diagnostic};
use p4update_core::{old_distances, PreparedUpdate, SegmentDir, SL_NODE_THRESHOLD};
use p4update_messages::UpdateKind;
use p4update_net::NodeId;

/// The old distance Algorithm 2 expects a gateway to carry: its hop
/// distance to the egress on the old path, or the synthetic endpoint values
/// for a fresh deployment (egress 0, ingress "infinitely far").
fn expected_old_distance(plan: &PreparedUpdate, node: NodeId) -> Option<u32> {
    if plan.update.old_path.is_some() {
        old_distances(&plan.update)
            .iter()
            .find(|&&(n, _)| n == node)
            .map(|&(_, d)| d)
    } else if node == plan.update.new_path.egress() {
        Some(0)
    } else if node == plan.update.new_path.ingress() {
        Some(u32::MAX)
    } else {
        None
    }
}

/// Verify the plan's segmentation against Algorithm 2's construction:
/// gateways are exactly the shared nodes in new-path order, segments tile
/// the new path with fresh interiors, and each recorded old distance (the
/// "segment ID") matches the old path.
pub(crate) fn check_segmentation(plan: &PreparedUpdate, out: &mut Vec<Diagnostic>) {
    let seg = &plan.segmentation;
    let new_path = &plan.update.new_path;
    let old = plan.update.old_path.as_ref();

    // -- gateway set: on both paths, in new-path order, endpoints included.
    for &g in &seg.gateways {
        if !new_path.contains(g) {
            out.push(Diagnostic::new(
                Code::SegmentationMalformed,
                plan.flow,
                Some(g),
                "gateway is not on the new path",
            ));
        }
        if let Some(old) = old {
            if !old.contains(g) {
                out.push(Diagnostic::new(
                    Code::SegmentationMalformed,
                    plan.flow,
                    Some(g),
                    "gateway is not on the old path",
                ));
            }
        }
    }
    let positions: Vec<Option<usize>> =
        seg.gateways.iter().map(|&g| new_path.position(g)).collect();
    if positions.windows(2).any(|w| match (w[0], w[1]) {
        (Some(a), Some(b)) => a >= b,
        _ => false,
    }) {
        out.push(Diagnostic::new(
            Code::SegmentationMalformed,
            plan.flow,
            None,
            "gateways are not in new-path order",
        ));
    }
    match (seg.gateways.first(), seg.gateways.last()) {
        (Some(&first), Some(&last)) => {
            if first != new_path.ingress() || last != new_path.egress() {
                out.push(Diagnostic::new(
                    Code::SegmentationMalformed,
                    plan.flow,
                    None,
                    format!(
                        "gateway set spans {first}..{last}, expected {}..{}",
                        new_path.ingress(),
                        new_path.egress()
                    ),
                ));
            }
        }
        _ => {
            out.push(Diagnostic::new(
                Code::SegmentationMalformed,
                plan.flow,
                None,
                "empty gateway set",
            ));
            return;
        }
    }
    // Any shared node missing from the gateway set splits the old and new
    // distance spaces incorrectly.
    if let Some(old) = old {
        for &n in new_path.nodes() {
            if old.contains(n) && !seg.gateways.contains(&n) {
                out.push(Diagnostic::new(
                    Code::SegmentationMalformed,
                    plan.flow,
                    Some(n),
                    "node shared by both paths is missing from the gateway set",
                ));
            }
        }
    }

    // -- tiling: consecutive gateways chain through the segments, interiors
    // are fresh nodes, and the concatenation is exactly the new path.
    if seg.segments.len() + 1 != seg.gateways.len() {
        out.push(Diagnostic::new(
            Code::SegmentationMalformed,
            plan.flow,
            None,
            format!(
                "{} segments do not connect {} gateways",
                seg.segments.len(),
                seg.gateways.len()
            ),
        ));
    }
    let mut covered: Vec<NodeId> = Vec::new();
    if let Some(&g0) = seg.gateways.first() {
        covered.push(g0);
    }
    for (i, s) in seg.segments.iter().enumerate() {
        if covered.last() != Some(&s.ingress_gateway) {
            out.push(Diagnostic::new(
                Code::SegmentationMalformed,
                plan.flow,
                Some(s.ingress_gateway),
                format!("segment #{i} does not start where the previous one ended"),
            ));
        }
        for &n in &s.interior {
            if let Some(old) = old {
                if old.contains(n) {
                    out.push(Diagnostic::new(
                        Code::SegmentationMalformed,
                        plan.flow,
                        Some(n),
                        format!("segment #{i} interior node lies on the old path"),
                    ));
                }
            }
        }
        covered.extend(&s.interior);
        covered.push(s.egress_gateway);
    }
    if covered != new_path.nodes() {
        out.push(Diagnostic::new(
            Code::SegmentationMalformed,
            plan.flow,
            None,
            "segments do not tile the new path",
        ));
    }

    // -- old distances ("segment IDs") and direction classes.
    for (i, s) in seg.segments.iter().enumerate() {
        for (which, g, recorded) in [
            ("ingress", s.ingress_gateway, s.ingress_old_distance),
            ("egress", s.egress_gateway, s.egress_old_distance),
        ] {
            match expected_old_distance(plan, g) {
                Some(expected) if expected != recorded => {
                    out.push(Diagnostic::new(
                        Code::OldDistanceMismatch,
                        plan.flow,
                        Some(g),
                        format!(
                            "segment #{i} records {which} old distance {recorded}, \
                             the old path says {expected}"
                        ),
                    ));
                }
                None => {
                    out.push(Diagnostic::new(
                        Code::OldDistanceMismatch,
                        plan.flow,
                        Some(g),
                        format!("segment #{i} {which} gateway has no old distance at all"),
                    ));
                }
                _ => {}
            }
        }

        // Direction: Forward iff the ingress gateway's true old distance
        // exceeds the egress gateway's. `Segment::direction()` derives from
        // the recorded fields, so this catches corrupted distances whose
        // corruption flips the class — the dangerous case: a backward
        // segment treated as forward updates before its downstream segments
        // and can transiently loop (§3.2).
        if let (Some(d_in), Some(d_out)) = (
            expected_old_distance(plan, s.ingress_gateway),
            expected_old_distance(plan, s.egress_gateway),
        ) {
            let expected_dir = if d_in > d_out {
                SegmentDir::Forward
            } else {
                SegmentDir::Backward
            };
            if s.direction() != expected_dir {
                out.push(Diagnostic::new(
                    Code::SegmentDirectionMisclassified,
                    plan.flow,
                    Some(s.ingress_gateway),
                    format!(
                        "segment #{i} classifies as {:?} but its true old distances \
                         ({d_in} -> {d_out}) make it {expected_dir:?}",
                        s.direction()
                    ),
                ));
            }
        }
    }
}

/// The §7.5 deployment rule, as an advisory: single-layer is only intended
/// for forward-only updates touching at most [`SL_NODE_THRESHOLD`] nodes.
/// A forced-SL plan outside that envelope still completes (SL is
/// loop-limited, not loop-free, on backward stretches) but forfeits the
/// paper's consistency argument, so the analyzer flags it as a warning.
pub(crate) fn check_mechanism(plan: &PreparedUpdate, out: &mut Vec<Diagnostic>) {
    if plan.kind != UpdateKind::Single {
        return;
    }
    let seg = &plan.segmentation;
    if !seg.forward_only() {
        out.push(Diagnostic::new(
            Code::MechanismAdvisory,
            plan.flow,
            None,
            format!(
                "single-layer deployment of a plan with {} backward segment(s); \
                 the §7.5 rule calls for dual-layer",
                seg.backward_count()
            ),
        ));
    }
    let nodes_to_update = plan.update.new_path.nodes().len();
    if nodes_to_update > SL_NODE_THRESHOLD {
        out.push(Diagnostic::new(
            Code::MechanismAdvisory,
            plan.flow,
            None,
            format!(
                "single-layer deployment across {nodes_to_update} nodes \
                 (threshold {SL_NODE_THRESHOLD}); dual-layer converges faster"
            ),
        ));
    }
}
