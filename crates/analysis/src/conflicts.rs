//! Cross-update checks over a batch: duplicate/monotone versions (P4U011)
//! and waits-for cycle detection between concurrent updates (P4U012).
//!
//! The graph construction, cycle finding, and diagnostic emission are kept
//! as separable pieces so the sequential path ([`check_waits_for`]) and the
//! link-sharded parallel path ([`crate::engine::BatchAnalyzer`]) share the
//! exact cycle semantics — the differential suites assert the two emit
//! byte-identical findings.

use crate::diagnostic::{Code, Diagnostic};
use p4update_core::PreparedUpdate;
use p4update_net::{NodeId, Topology};
use std::collections::{BTreeMap, BTreeSet};

/// Duplicate-flow entries in one batch must carry strictly increasing
/// versions in batch order; otherwise the later plan is dead on arrival
/// (switches keep the highest version, §3).
pub(crate) fn check_batch_versions(plans: &[PreparedUpdate], out: &mut Vec<Diagnostic>) {
    let mut last: BTreeMap<_, _> = BTreeMap::new();
    for plan in plans {
        if let Some(prev) = last.insert(plan.flow, plan.version) {
            if plan.version <= prev {
                out.push(Diagnostic::new(
                    Code::BatchVersionConflict,
                    plan.flow,
                    None,
                    format!(
                        "batch contains {} twice with non-increasing versions \
                         ({prev} then {})",
                        plan.flow, plan.version
                    ),
                ));
            }
        }
    }
}

/// Directed edges traversed by a path, as ordered node pairs.
pub(crate) fn edge_set(path: &p4update_net::Path) -> BTreeSet<(NodeId, NodeId)> {
    path.edges().collect()
}

/// The per-plan inputs of the waits-for graph: the directed edge sets of a
/// plan's new and old paths plus its flow identity and size. Precomputed
/// once so both graph constructions (pairwise and link-indexed) read the
/// same data.
pub(crate) struct PlanEdges {
    pub(crate) flow: p4update_net::FlowId,
    pub(crate) size: f64,
    pub(crate) new_edges: BTreeSet<(NodeId, NodeId)>,
    pub(crate) old_edges: BTreeSet<(NodeId, NodeId)>,
}

impl PlanEdges {
    pub(crate) fn of(plan: &PreparedUpdate) -> Self {
        PlanEdges {
            flow: plan.flow,
            size: plan.update.size,
            new_edges: edge_set(&plan.update.new_path),
            old_edges: plan
                .update
                .old_path
                .as_ref()
                .map(edge_set)
                .unwrap_or_default(),
        }
    }
}

/// Whether plans `a` and `b` genuinely contend on the directed link
/// `(x, y)`: with a topology in hand the edge is only real when the link
/// cannot hold both flows at once; without one the analyzer is
/// conservative and assumes contention. (An edge that is not a topology
/// link is flagged elsewhere as P4U003 and treated as contended here.)
pub(crate) fn contended(
    topo: Option<&Topology>,
    (x, y): (NodeId, NodeId),
    a: &PlanEdges,
    b: &PlanEdges,
) -> bool {
    match topo.and_then(|t| t.link_between(x, y)) {
        Some(link) => a.size + b.size > topo.expect("link implies topo").link(link).capacity,
        None => true,
    }
}

/// Build the full waits-for adjacency by pairwise scan (the sequential
/// reference construction): update `A` *waits for* update `B` when some
/// directed link on `A`'s new path lies on `B`'s old path but not on `B`'s
/// new path — `A` moves onto capacity that only frees once `B` has moved
/// off it — and the link cannot hold both flows.
pub(crate) fn build_waits_for(edges: &[PlanEdges], topo: Option<&Topology>) -> Vec<Vec<usize>> {
    let n = edges.len();
    let mut waits_for: Vec<Vec<usize>> = vec![Vec::new(); n];
    for a in 0..n {
        for b in 0..n {
            if a == b || edges[a].flow == edges[b].flow {
                continue;
            }
            let shared = edges[a]
                .new_edges
                .iter()
                .filter(|e| edges[b].old_edges.contains(e) && !edges[b].new_edges.contains(e));
            for &e in shared {
                if contended(topo, e, &edges[a], &edges[b]) {
                    waits_for[a].push(b);
                    break;
                }
            }
        }
    }
    waits_for
}

/// Find the cycles a three-coloring DFS reports over `vertices` of the
/// `waits_for` adjacency (vertex ids are indices into `waits_for`;
/// `vertices` must be ascending). Cycles are canonicalized (rotated to
/// start at the smallest participant) and deduplicated; the `BTreeSet`
/// order is the stable emission order.
///
/// The DFS is iterative (an explicit stack mirroring the recursion
/// exactly), so deep chains at hyper-scale batch sizes cannot overflow the
/// thread stack. Because DFS from a vertex only ever reaches its own
/// link-connected component, running this per component over the
/// component's ascending vertex list reports the identical cycle set to
/// one global pass — the property the sharded engine rests on.
pub(crate) fn find_cycles(
    waits_for: &[Vec<usize>],
    vertices: impl IntoIterator<Item = usize>,
) -> BTreeSet<Vec<usize>> {
    let n = waits_for.len();
    let mut reported: BTreeSet<Vec<usize>> = BTreeSet::new();
    let mut color = vec![0u8; n]; // 0 = white, 1 = on stack, 2 = done
    let mut path: Vec<usize> = Vec::new();
    // (vertex, index of the next neighbor to examine)
    let mut stack: Vec<(usize, usize)> = Vec::new();

    for root in vertices {
        if color[root] != 0 {
            continue;
        }
        color[root] = 1;
        path.push(root);
        stack.push((root, 0));
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < waits_for[v].len() {
                let w = waits_for[v][*next];
                *next += 1;
                match color[w] {
                    0 => {
                        color[w] = 1;
                        path.push(w);
                        stack.push((w, 0));
                    }
                    1 => {
                        let start = path.iter().position(|&x| x == w).expect("on stack");
                        let mut cycle: Vec<usize> = path[start..].to_vec();
                        let min_pos = cycle
                            .iter()
                            .enumerate()
                            .min_by_key(|&(_, &x)| x)
                            .map_or(0, |(i, _)| i);
                        cycle.rotate_left(min_pos);
                        reported.insert(cycle);
                    }
                    _ => {}
                }
            } else {
                path.pop();
                stack.pop();
                color[v] = 2;
            }
        }
    }
    reported
}

/// Render the canonical cycle set as `P4U012` diagnostics, one per cycle,
/// reported at the cycle's smallest flow id in `BTreeSet` order.
pub(crate) fn cycle_diagnostics(
    plans: &[PreparedUpdate],
    cycles: &BTreeSet<Vec<usize>>,
    out: &mut Vec<Diagnostic>,
) {
    for cycle in cycles {
        let flows: Vec<String> = cycle.iter().map(|&i| plans[i].flow.to_string()).collect();
        out.push(Diagnostic::new(
            Code::WaitsForCycle,
            plans[cycle[0]].flow,
            None,
            format!(
                "updates wait on each other's freed capacity in a cycle: {}; \
                 completion depends on the runtime congestion scheduler",
                flows.join(" -> ")
            ),
        ));
    }
}

/// Build the waits-for graph over the batch and flag cycles.
///
/// A cycle means every update in it waits on another — the deadlock
/// ez-Segway resolves with global dependency graphs and P4Update leaves to
/// the local congestion scheduler (§7.4), which breaks ties by priority but
/// may serialize or park flows. That is a legal but noteworthy plan, so the
/// finding is a warning, reported once per cycle at its smallest flow id.
pub(crate) fn check_waits_for(
    plans: &[PreparedUpdate],
    topo: Option<&Topology>,
    out: &mut Vec<Diagnostic>,
) {
    let n = plans.len();
    if n < 2 {
        return;
    }
    let edges: Vec<PlanEdges> = plans.iter().map(PlanEdges::of).collect();
    let waits_for = build_waits_for(&edges, topo);
    let cycles = find_cycles(&waits_for, 0..n);
    cycle_diagnostics(plans, &cycles, out);
}
