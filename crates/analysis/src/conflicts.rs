//! Cross-update checks over a batch: duplicate/monotone versions (P4U011)
//! and waits-for cycle detection between concurrent updates (P4U012).

use crate::diagnostic::{Code, Diagnostic};
use p4update_core::PreparedUpdate;
use p4update_net::{NodeId, Topology};
use std::collections::{BTreeMap, BTreeSet};

/// Duplicate-flow entries in one batch must carry strictly increasing
/// versions in batch order; otherwise the later plan is dead on arrival
/// (switches keep the highest version, §3).
pub(crate) fn check_batch_versions(plans: &[PreparedUpdate], out: &mut Vec<Diagnostic>) {
    let mut last: BTreeMap<_, _> = BTreeMap::new();
    for plan in plans {
        if let Some(prev) = last.insert(plan.flow, plan.version) {
            if plan.version <= prev {
                out.push(Diagnostic::new(
                    Code::BatchVersionConflict,
                    plan.flow,
                    None,
                    format!(
                        "batch contains {} twice with non-increasing versions \
                         ({prev} then {})",
                        plan.flow, plan.version
                    ),
                ));
            }
        }
    }
}

/// Directed edges traversed by a path, as ordered node pairs.
fn edge_set(path: &p4update_net::Path) -> BTreeSet<(NodeId, NodeId)> {
    path.edges().collect()
}

/// Build the waits-for graph over the batch and flag cycles.
///
/// Update `A` *waits for* update `B` when some directed link on `A`'s new
/// path lies on `B`'s old path but not on `B`'s new path: `A` moves onto
/// capacity that only frees once `B` has moved off it. With a topology in
/// hand the edge is only real when the link cannot hold both flows at once
/// (`size(A) + size(B) > capacity`); without one the analyzer is
/// conservative and assumes contention.
///
/// A cycle means every update in it waits on another — the deadlock
/// ez-Segway resolves with global dependency graphs and P4Update leaves to
/// the local congestion scheduler (§7.4), which breaks ties by priority but
/// may serialize or park flows. That is a legal but noteworthy plan, so the
/// finding is a warning, reported once per cycle at its smallest flow id.
pub(crate) fn check_waits_for(
    plans: &[PreparedUpdate],
    topo: Option<&Topology>,
    out: &mut Vec<Diagnostic>,
) {
    let n = plans.len();
    if n < 2 {
        return;
    }
    let new_edges: Vec<BTreeSet<(NodeId, NodeId)>> =
        plans.iter().map(|p| edge_set(&p.update.new_path)).collect();
    let old_edges: Vec<BTreeSet<(NodeId, NodeId)>> = plans
        .iter()
        .map(|p| p.update.old_path.as_ref().map(edge_set).unwrap_or_default())
        .collect();

    let mut waits_for: Vec<Vec<usize>> = vec![Vec::new(); n];
    for a in 0..n {
        for b in 0..n {
            if a == b || plans[a].flow == plans[b].flow {
                continue;
            }
            let contended = new_edges[a]
                .iter()
                .filter(|e| old_edges[b].contains(e) && !new_edges[b].contains(e));
            for &(x, y) in contended {
                let over_capacity = match topo.and_then(|t| t.link_between(x, y)) {
                    Some(link) => {
                        plans[a].update.size + plans[b].update.size
                            > topo.expect("link implies topo").link(link).capacity
                    }
                    // No topology (or an unroutable edge, flagged elsewhere):
                    // assume the worst.
                    None => true,
                };
                if over_capacity {
                    waits_for[a].push(b);
                    break;
                }
            }
        }
    }

    // Iterative DFS three-coloring; every back edge closes a cycle.
    // Reported cycles are canonicalized (rotated to start at the smallest
    // participant) and deduplicated.
    let mut reported: BTreeSet<Vec<usize>> = BTreeSet::new();
    let mut color = vec![0u8; n]; // 0 = white, 1 = on stack, 2 = done
    let mut stack: Vec<usize> = Vec::new();

    fn dfs(
        v: usize,
        waits_for: &[Vec<usize>],
        color: &mut [u8],
        stack: &mut Vec<usize>,
        reported: &mut BTreeSet<Vec<usize>>,
    ) {
        color[v] = 1;
        stack.push(v);
        for &w in &waits_for[v] {
            match color[w] {
                0 => dfs(w, waits_for, color, stack, reported),
                1 => {
                    let start = stack.iter().position(|&x| x == w).expect("on stack");
                    let mut cycle: Vec<usize> = stack[start..].to_vec();
                    let min_pos = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &x)| x)
                        .map_or(0, |(i, _)| i);
                    cycle.rotate_left(min_pos);
                    reported.insert(cycle);
                }
                _ => {}
            }
        }
        stack.pop();
        color[v] = 2;
    }

    for v in 0..n {
        if color[v] == 0 {
            dfs(v, &waits_for, &mut color, &mut stack, &mut reported);
        }
    }

    for cycle in reported {
        let flows: Vec<String> = cycle.iter().map(|&i| plans[i].flow.to_string()).collect();
        out.push(Diagnostic::new(
            Code::WaitsForCycle,
            plans[cycle[0]].flow,
            None,
            format!(
                "updates wait on each other's freed capacity in a cycle: {}; \
                 completion depends on the runtime congestion scheduler",
                flows.join(" -> ")
            ),
        ));
    }
}
