//! Diagnostics: stable codes, severities, and rustc-style rendering.

use p4update_net::{FlowId, NodeId};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The plan is legal but likely not what was intended, or relies on
    /// runtime machinery (congestion scheduling, recovery) to stay safe.
    Warning,
    /// The plan violates a proof-labeling invariant: deploying it can
    /// produce loops, blackholes, or stuck updates that the data-plane
    /// verifiers will reject or — worse — accept.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes. The numeric part never changes meaning across
/// versions; retired codes are not reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// `P4U001`: a distance label breaks the strictly-decreasing chain
    /// toward the egress (the proof the switches verify, §3).
    LabelChainBroken,
    /// `P4U002`: a UIM's next hop or upstream pointer disagrees with the
    /// new path (the UNM clone session would notify the wrong neighbor).
    UimChainMismatch,
    /// `P4U003`: a path edge is not a link of the topology — the plan is
    /// unroutable as written.
    UnroutableEdge,
    /// `P4U004`: the plan's version does not strictly exceed the installed
    /// version (switches would reject it as out of date, §3).
    VersionNotNewer,
    /// `P4U005`: segmentation is malformed — gateways off the shared paths,
    /// segments not tiling the new path, or broken gateway chaining (§3.2).
    SegmentationMalformed,
    /// `P4U006`: a segment's direction class disagrees with its old
    /// distances (Forward iff the ingress gateway's old distance exceeds
    /// the egress gateway's).
    SegmentDirectionMisclassified,
    /// `P4U007`: a gateway's recorded old distance disagrees with its
    /// position on the old path (the inherited "segment ID" of §3.2).
    OldDistanceMismatch,
    /// `P4U008`: mechanism-choice advisory — single-layer deployment on a
    /// plan the §7.5 rule says needs dual-layer (backward segments or too
    /// many nodes).
    MechanismAdvisory,
    /// `P4U009`: a message of the plan fails to round-trip through the wire
    /// codec — the switch pipeline would parse a different update.
    WireRoundTripFailed,
    /// `P4U010`: the UIM set does not match the new path's nodes (missing,
    /// duplicated, or mis-addressed indications; wrong flow/kind metadata).
    UimSetMismatch,
    /// `P4U011`: batch inconsistency — duplicate flow entries whose
    /// versions do not strictly increase in batch order.
    BatchVersionConflict,
    /// `P4U012`: the cross-update waits-for graph has a cycle: each update
    /// needs capacity another frees, so none can proceed without the
    /// runtime congestion scheduler breaking the tie.
    WaitsForCycle,
    /// `P4U013`: a flow-size bound is unusable (non-finite, non-positive,
    /// or inconsistent across the plan's UIMs).
    BadFlowSize,
}

impl Code {
    /// The stable `P4Unnn` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::LabelChainBroken => "P4U001",
            Code::UimChainMismatch => "P4U002",
            Code::UnroutableEdge => "P4U003",
            Code::VersionNotNewer => "P4U004",
            Code::SegmentationMalformed => "P4U005",
            Code::SegmentDirectionMisclassified => "P4U006",
            Code::OldDistanceMismatch => "P4U007",
            Code::MechanismAdvisory => "P4U008",
            Code::WireRoundTripFailed => "P4U009",
            Code::UimSetMismatch => "P4U010",
            Code::BatchVersionConflict => "P4U011",
            Code::WaitsForCycle => "P4U012",
            Code::BadFlowSize => "P4U013",
        }
    }

    /// The severity this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            Code::MechanismAdvisory | Code::WaitsForCycle => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code identifying the invariant violated.
    pub code: Code,
    /// Severity (always `code.severity()`; stored for direct filtering).
    pub severity: Severity,
    /// The flow whose plan the finding is about.
    pub flow: FlowId,
    /// The switch the finding localizes to, when one exists.
    pub node: Option<NodeId>,
    /// Human-readable explanation with the offending values.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic; severity comes from the code.
    pub fn new(code: Code, flow: FlowId, node: Option<NodeId>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            flow,
            node,
            message: message.into(),
        }
    }

    /// True for error-severity findings (the debug gate trips on these).
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}: ", self.severity, self.code, self.flow)?;
        if let Some(node) = self.node {
            write!(f, "at {node}: ")?;
        }
        f.write_str(&self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::LabelChainBroken.as_str(), "P4U001");
        assert_eq!(Code::BadFlowSize.as_str(), "P4U013");
        assert_eq!(Code::WaitsForCycle.to_string(), "P4U012");
    }

    #[test]
    fn advisories_are_warnings_the_rest_errors() {
        assert_eq!(Code::MechanismAdvisory.severity(), Severity::Warning);
        assert_eq!(Code::WaitsForCycle.severity(), Severity::Warning);
        assert_eq!(Code::LabelChainBroken.severity(), Severity::Error);
        assert_eq!(Code::WireRoundTripFailed.severity(), Severity::Error);
    }

    #[test]
    fn display_is_rustc_like() {
        let d = Diagnostic::new(
            Code::LabelChainBroken,
            FlowId(3),
            Some(NodeId(7)),
            "distance 5 does not continue the chain",
        );
        assert_eq!(
            d.to_string(),
            "error[P4U001]: f3: at v7: distance 5 does not continue the chain"
        );
        assert!(d.is_error());
        let w = Diagnostic::new(Code::MechanismAdvisory, FlowId(0), None, "msg");
        assert_eq!(w.to_string(), "warning[P4U008]: f0: msg");
        assert!(!w.is_error());
    }
}
