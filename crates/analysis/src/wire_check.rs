//! Wire well-formedness (P4U009): every message the plan will inject must
//! survive the codec unchanged, or the switch pipeline parses a different
//! update than the controller verified.

use crate::diagnostic::{Code, Diagnostic};
use p4update_core::PreparedUpdate;
use p4update_messages::{wire, Message, Unm, UnmLayer};
use p4update_net::Version;

/// Round-trip every UIM of the plan — and the UNM each node would clone
/// from it — through the wire codec.
///
/// The UIMs are the literal control messages the plan ships. The UNMs are
/// synthesized the way the data plane builds them (new version/distance
/// from the staged UIM, old state from the pre-update configuration), which
/// exercises the notification header with the plan's real field values
/// rather than arbitrary ones.
pub(crate) fn check_wire(plan: &PreparedUpdate, out: &mut Vec<Diagnostic>) {
    for (node, uim) in &plan.uims {
        let msg = Message::Uim(*uim);
        match wire::encode(&msg) {
            Ok(buf) => match wire::decode(&buf) {
                Ok(back) if back == msg => {}
                Ok(_) => out.push(Diagnostic::new(
                    Code::WireRoundTripFailed,
                    plan.flow,
                    Some(*node),
                    "UIM decodes to a different message than was encoded",
                )),
                Err(e) => out.push(Diagnostic::new(
                    Code::WireRoundTripFailed,
                    plan.flow,
                    Some(*node),
                    format!("encoded UIM fails to decode: {e}"),
                )),
            },
            Err(e) => out.push(Diagnostic::new(
                Code::WireRoundTripFailed,
                plan.flow,
                Some(*node),
                format!("UIM fails to encode: {e}"),
            )),
        }

        let old_d = plan
            .update
            .old_path
            .as_ref()
            .and_then(|p| p.distance_to_egress(*node))
            .unwrap_or(u32::MAX);
        let unm = Message::Unm(Unm {
            flow: uim.flow,
            v_new: uim.version,
            v_old: Version(uim.version.0.saturating_sub(1)),
            d_new: uim.new_distance,
            d_old: old_d,
            counter: 0,
            kind: uim.kind,
            layer: UnmLayer::Inter,
        });
        let ok = wire::encode(&unm)
            .ok()
            .and_then(|buf| wire::decode(&buf).ok())
            .is_some_and(|back| back == unm);
        if !ok {
            out.push(Diagnostic::new(
                Code::WireRoundTripFailed,
                plan.flow,
                Some(*node),
                "the UNM this node would emit does not round-trip the codec",
            ));
        }
    }
}
