//! A minimal JSON value, emitter, and parser. The workspace builds fully
//! offline, so this is hand-rolled rather than a serde dependency.
//!
//! It lives in the analysis crate because the on-disk dataset format
//! ([`crate::dataset`]) is its primary consumer; `p4update-perf` reuses it
//! for the `BENCH_p4update.json` artifact.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (emitted in shortest round-trip form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on emit.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    /// Parse one JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/inf; null is the honest spelling
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            c as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid keyword at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one full UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' (found {other:?})")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            other => return Err(format!("expected ',' or '}}' (found {other:?})")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("v1".into())),
            ("n".into(), Json::Num(42.0)),
            ("ratio".into(), Json::Num(1.5)),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Str("two\n\"quoted\"".into())]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("n").and_then(Json::as_f64), Some(42.0));
        assert_eq!(back.get("schema").and_then(Json::as_str), Some("v1"));
        assert_eq!(back.get("items").and_then(Json::as_arr).unwrap().len(), 2);
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Json::Num(3.0).to_string_pretty(), "3\n");
        assert_eq!(Json::Num(3.25).to_string_pretty(), "3.25\n");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{} trailing",
            "[1 2]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_negative_and_exponent_numbers() {
        let v = Json::parse("[-1.5e3, 0.25]").unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0].as_f64(), Some(-1500.0));
        assert_eq!(items[1].as_f64(), Some(0.25));
    }
}
