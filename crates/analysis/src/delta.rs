//! [`PlanDelta`]: the edit an evolving batch applies between two analysis
//! passes, feeding [`crate::engine::BatchAnalyzer::reanalyze`] so
//! steady-state callers (the sim's analysis gate, a long-running lint
//! service) revalidate only what actually changed.

use p4update_core::PreparedUpdate;

/// An edit script from one analyzed batch to the next. Index fields refer
/// to positions in the *previous* batch; the edit applies as: drop the
/// removed positions, substitute the revised positions, keep everything
/// else in order, then append the additions.
#[derive(Debug, Clone, Default)]
pub struct PlanDelta {
    /// Previous-batch positions dropped from the batch (ascending).
    pub removed: Vec<usize>,
    /// Previous-batch positions replaced by a new plan.
    pub revised: Vec<(usize, PreparedUpdate)>,
    /// Plans appended after the retained ones.
    pub added: Vec<PreparedUpdate>,
}

impl PlanDelta {
    /// True when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.revised.is_empty() && self.added.is_empty()
    }

    /// Number of plans this delta touches (each counts once; a position
    /// both removed and revised would be ill-formed and counts never
    /// arise because [`Self::diff`] keeps the sets disjoint).
    pub fn touched(&self) -> usize {
        self.removed.len() + self.revised.len() + self.added.len()
    }

    /// The positional edit from `old` to `new`: positions present in both
    /// are revised where the plans differ, surplus old positions are
    /// removed, surplus new positions are added. Positional (not a
    /// minimal-edit diff) because batch producers keep stable plan order;
    /// an ill-matched ordering only costs reuse, never correctness.
    pub fn diff(old: &[PreparedUpdate], new: &[PreparedUpdate]) -> PlanDelta {
        let common = old.len().min(new.len());
        PlanDelta {
            removed: (common..old.len()).collect(),
            revised: (0..common)
                .filter(|&i| old[i] != new[i])
                .map(|i| (i, new[i].clone()))
                .collect(),
            added: new[common..].to_vec(),
        }
    }

    /// A delta that only appends plans.
    pub fn extend(added: Vec<PreparedUpdate>) -> PlanDelta {
        PlanDelta {
            added,
            ..PlanDelta::default()
        }
    }

    /// Apply the edit to `prev`, returning the new batch plus, per new
    /// position, the previous position it was carried over from unchanged
    /// (`None` for revised and added plans). The carried-over mapping is
    /// strictly increasing, which is what lets component caches match
    /// ascending member lists through it.
    pub(crate) fn apply(
        &self,
        prev: &[PreparedUpdate],
    ) -> (Vec<PreparedUpdate>, Vec<Option<usize>>) {
        let mut plans = Vec::with_capacity(prev.len() + self.added.len());
        let mut origin = Vec::with_capacity(prev.len() + self.added.len());
        let mut removed = self.removed.iter().copied().peekable();
        for (i, plan) in prev.iter().enumerate() {
            if removed.peek() == Some(&i) {
                removed.next();
                continue;
            }
            if let Some((_, replacement)) = self.revised.iter().find(|&&(r, _)| r == i) {
                plans.push(replacement.clone());
                origin.push(None);
            } else {
                plans.push(plan.clone());
                origin.push(Some(i));
            }
        }
        for plan in &self.added {
            plans.push(plan.clone());
            origin.push(None);
        }
        (plans, origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4update_core::{prepare_update, Strategy};
    use p4update_net::{FlowId, FlowUpdate, NodeId, Path, Version};

    fn plan(flow: u32, version: u32) -> PreparedUpdate {
        let p = |ids: &[u32]| Path::new(ids.iter().map(|&i| NodeId(i)).collect());
        let u = FlowUpdate::new(FlowId(flow), Some(p(&[0, 1, 2])), p(&[0, 3, 2]), 1.0);
        prepare_update(&u, Version(version), Strategy::Auto)
    }

    #[test]
    fn diff_classifies_positions() {
        let old = vec![plan(0, 2), plan(1, 2), plan(2, 2)];
        let new = vec![plan(0, 2), plan(1, 3)];
        let delta = PlanDelta::diff(&old, &new);
        assert_eq!(delta.removed, vec![2]);
        assert_eq!(delta.revised.len(), 1);
        assert_eq!(delta.revised[0].0, 1);
        assert!(delta.added.is_empty());
        assert_eq!(delta.touched(), 2);

        let (applied, origin) = delta.apply(&old);
        assert_eq!(applied.len(), 2);
        assert_eq!(origin, vec![Some(0), None]);
        assert_eq!(applied[1].version, Version(3));
    }

    #[test]
    fn identical_batches_diff_empty() {
        let batch = vec![plan(0, 2), plan(1, 2)];
        let delta = PlanDelta::diff(&batch, &batch.clone());
        assert!(delta.is_empty());
        let (applied, origin) = delta.apply(&batch);
        assert_eq!(applied.len(), 2);
        assert_eq!(origin, vec![Some(0), Some(1)]);
    }

    #[test]
    fn extend_appends_with_no_origin() {
        let base = vec![plan(0, 2)];
        let delta = PlanDelta::extend(vec![plan(1, 2), plan(2, 2)]);
        let (applied, origin) = delta.apply(&base);
        assert_eq!(applied.len(), 3);
        assert_eq!(origin, vec![Some(0), None, None]);
    }
}
