//! # p4update-analysis
//!
//! Static plan verifier: lints the output of `prepare_update` /
//! `prepare_batch` against the proof-labeling invariants of the P4Update
//! paper *before* a plan ships to any switch — no execution, no simulator.
//!
//! The data-plane verifiers (Algorithms 1 and 2) catch inconsistent updates
//! at runtime, hop by hop. This crate is the complementary tool: given a
//! [`PreparedUpdate`] (and optionally the [`Topology`] it targets), it
//! re-derives what the labels, segmentation, and messages *must* look like
//! and reports every divergence as a [`Diagnostic`] with a stable
//! `P4Unnn` code, rustc-style:
//!
//! ```text
//! error[P4U001]: f0: at v3: distance label 5 breaks the chain (hop distance to egress is 4)
//! warning[P4U008]: f2: single-layer deployment of a plan with 1 backward segment(s); ...
//! ```
//!
//! ## What is checked
//!
//! | Codes | Invariant |
//! |---|---|
//! | `P4U001`, `P4U002`, `P4U010`, `P4U013` | label soundness: distances strictly decrease toward the egress, next-hop/upstream pointers mirror the new path, one UIM per path node (egress first), usable flow sizes |
//! | `P4U004` | versions strictly exceed installed versions |
//! | `P4U003` | every path edge is a topology link |
//! | `P4U005`, `P4U006`, `P4U007` | segmentation well-formedness: gateways on both paths, segments tile the new path, direction classes and old distances match Algorithm 2's construction |
//! | `P4U008` | §7.5 mechanism-choice advisory (warning) |
//! | `P4U009` | every UIM/UNM round-trips the wire codec |
//! | `P4U011`, `P4U012` | batch-level: version monotonicity per flow, waits-for cycles between concurrent updates (warning) |
//!
//! Errors mean the plan violates an invariant the paper's correctness
//! argument needs; warnings mean the plan is legal but leans on runtime
//! machinery. The simulator's debug "analysis gate" trips on errors only.
//!
//! ## Entry points
//!
//! - [`analyze`] — one plan against an optional topology.
//! - [`analyze_with`] — one plan with full context (installed versions).
//! - [`analyze_batch`] — a batch: per-plan checks plus cross-update checks.
//! - [`engine::BatchAnalyzer`] — the parallel, incremental engine:
//!   byte-identical diagnostics on worker pools, delta-driven
//!   revalidation ([`delta::PlanDelta`]), and on-disk datasets
//!   ([`dataset`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod conflicts;
pub mod dataset;
pub mod delta;
mod diagnostic;
pub mod engine;
mod json;
mod labels;
mod segmentation;
mod wire_check;

pub use dataset::{export_dataset, load_dataset, Dataset};
pub use delta::PlanDelta;
pub use diagnostic::{Code, Diagnostic, Severity};
pub use engine::{BatchAnalysis, BatchAnalyzer};
pub use json::Json;

use p4update_core::PreparedUpdate;
use p4update_net::{FlowId, Topology, Version};
use std::collections::BTreeMap;

/// Everything the analyzer may know about the network a plan targets.
///
/// All fields are optional knowledge: with less context the analyzer checks
/// less (it never guesses), with more it checks more.
#[derive(Debug, Default)]
pub struct AnalysisContext<'a> {
    /// The topology the plan routes over; enables the `P4U003` routability
    /// check and exact capacity reasoning in the waits-for graph.
    pub topo: Option<&'a Topology>,
    /// Currently installed configuration versions, per flow; enables the
    /// `P4U004` installed-version comparison.
    pub installed: BTreeMap<FlowId, Version>,
}

impl<'a> AnalysisContext<'a> {
    /// Context carrying only a topology.
    pub fn with_topo(topo: &'a Topology) -> Self {
        AnalysisContext {
            topo: Some(topo),
            installed: BTreeMap::new(),
        }
    }

    /// Context carrying a topology plus installed versions in bulk, so
    /// batch callers don't insert flow-by-flow.
    pub fn with_installed(
        topo: Option<&'a Topology>,
        installed: impl IntoIterator<Item = (FlowId, Version)>,
    ) -> Self {
        AnalysisContext {
            topo,
            installed: installed.into_iter().collect(),
        }
    }

    /// Record the installed version of a flow. A by-value builder, so
    /// construction chains: `AnalysisContext::with_topo(&t).install(f, v)`.
    #[must_use = "install is a by-value builder; use the returned context"]
    pub fn install(mut self, flow: FlowId, version: Version) -> Self {
        self.installed.insert(flow, version);
        self
    }
}

/// Analyze one prepared plan. `topo` enables routability checking; pass
/// `None` when the plan is synthetic (pure label/segmentation linting).
pub fn analyze(plan: &PreparedUpdate, topo: Option<&Topology>) -> Vec<Diagnostic> {
    let ctx = AnalysisContext {
        topo,
        installed: BTreeMap::new(),
    };
    analyze_with(plan, &ctx)
}

/// Analyze one prepared plan with full context.
pub fn analyze_with(plan: &PreparedUpdate, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    labels::check_labels(plan, &mut out);
    labels::check_version(plan, ctx.installed.get(&plan.flow).copied(), &mut out);
    if let Some(topo) = ctx.topo {
        labels::check_topology(plan, topo, &mut out);
    }
    segmentation::check_segmentation(plan, &mut out);
    segmentation::check_mechanism(plan, &mut out);
    wire_check::check_wire(plan, &mut out);
    out
}

/// Analyze a batch of plans: every per-plan check, plus batch version
/// monotonicity (`P4U011`) and waits-for cycle detection (`P4U012`).
pub fn analyze_batch(plans: &[PreparedUpdate], topo: Option<&Topology>) -> Vec<Diagnostic> {
    let ctx = AnalysisContext {
        topo,
        installed: BTreeMap::new(),
    };
    analyze_batch_with(plans, &ctx)
}

/// Analyze a batch with full context.
pub fn analyze_batch_with(plans: &[PreparedUpdate], ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for plan in plans {
        out.extend(analyze_with(plan, ctx));
    }
    conflicts::check_batch_versions(plans, &mut out);
    conflicts::check_waits_for(plans, ctx.topo, &mut out);
    out
}

/// True when no finding is an error (warnings allowed) — the condition the
/// simulator's debug gate asserts before shipping a plan.
pub fn is_clean(diagnostics: &[Diagnostic]) -> bool {
    !diagnostics.iter().any(Diagnostic::is_error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4update_core::{prepare_update, Strategy};
    use p4update_net::{FlowUpdate, NodeId, Path};

    fn path(ids: &[u32]) -> Path {
        Path::new(ids.iter().map(|&i| NodeId(i)).collect())
    }

    fn fig1_update() -> FlowUpdate {
        FlowUpdate::new(
            FlowId(0),
            Some(path(&[0, 4, 2, 7])),
            path(&[0, 1, 2, 3, 4, 5, 6, 7]),
            1.0,
        )
    }

    #[test]
    fn well_prepared_plan_is_clean() {
        let plan = prepare_update(&fig1_update(), Version(2), Strategy::Auto);
        let diags = analyze(&plan, None);
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    #[test]
    fn fresh_deployment_is_clean() {
        let u = FlowUpdate::new(FlowId(3), None, path(&[0, 2, 5]), 2.0);
        let plan = prepare_update(&u, Version(1), Strategy::Auto);
        assert!(analyze(&plan, None).is_empty());
    }

    #[test]
    fn corrupt_distance_is_p4u001() {
        let mut plan = prepare_update(&fig1_update(), Version(2), Strategy::Auto);
        plan.uims[3].1.new_distance += 1;
        let diags = analyze(&plan, None);
        assert!(diags.iter().any(|d| d.code == Code::LabelChainBroken));
        assert!(!is_clean(&diags));
    }

    #[test]
    fn forced_sl_on_fig1_is_advisory_only() {
        let plan = prepare_update(&fig1_update(), Version(2), Strategy::ForceSingle);
        let diags = analyze(&plan, None);
        assert!(diags.iter().all(|d| d.code == Code::MechanismAdvisory));
        assert!(!diags.is_empty());
        // Warnings do not trip the gate.
        assert!(is_clean(&diags));
    }

    #[test]
    fn stale_version_is_p4u004_with_context() {
        let plan = prepare_update(&fig1_update(), Version(2), Strategy::Auto);
        let ctx = AnalysisContext::default().install(FlowId(0), Version(2));
        let diags = analyze_with(&plan, &ctx);
        assert!(diags.iter().any(|d| d.code == Code::VersionNotNewer));
        // Without context the same plan is clean.
        assert!(analyze(&plan, None).is_empty());
    }

    #[test]
    fn batch_duplicate_flow_must_increase_version() {
        let u = fig1_update();
        let plans = vec![
            prepare_update(&u, Version(3), Strategy::Auto),
            prepare_update(&u, Version(2), Strategy::Auto),
        ];
        let diags = analyze_batch(&plans, None);
        assert!(diags.iter().any(|d| d.code == Code::BatchVersionConflict));

        let ordered = vec![
            prepare_update(&u, Version(2), Strategy::Auto),
            prepare_update(&u, Version(3), Strategy::Auto),
        ];
        assert!(is_clean(&analyze_batch(&ordered, None)));
    }

    #[test]
    fn swapped_paths_form_a_waits_for_cycle() {
        // Two flows exchanging routes with no topology knowledge: each new
        // path uses a directed link on the other's old path.
        let a = FlowUpdate::new(FlowId(1), Some(path(&[0, 1, 3])), path(&[0, 2, 3]), 1.0);
        let b = FlowUpdate::new(FlowId(2), Some(path(&[0, 2, 3])), path(&[0, 1, 3]), 1.0);
        let plans = vec![
            prepare_update(&a, Version(2), Strategy::Auto),
            prepare_update(&b, Version(2), Strategy::Auto),
        ];
        let diags = analyze_batch(&plans, None);
        assert!(diags.iter().any(|d| d.code == Code::WaitsForCycle));
        // A deadlock risk is a warning, not an error.
        assert!(is_clean(&diags));
    }

    #[test]
    fn capacity_headroom_dissolves_the_cycle() {
        use p4update_des::SimDuration;
        use p4update_net::TopologyBuilder;
        let mut tb = TopologyBuilder::new("diamond");
        let ids: Vec<NodeId> = (0..4).map(|i| tb.add_node(format!("v{i}"))).collect();
        for (x, y) in [(0, 1), (1, 3), (0, 2), (2, 3)] {
            tb.add_link(ids[x], ids[y], SimDuration::from_millis(1), 10.0);
        }
        let topo = tb.build();
        let a = FlowUpdate::new(FlowId(1), Some(path(&[0, 1, 3])), path(&[0, 2, 3]), 1.0);
        let b = FlowUpdate::new(FlowId(2), Some(path(&[0, 2, 3])), path(&[0, 1, 3]), 1.0);
        let plans = vec![
            prepare_update(&a, Version(2), Strategy::Auto),
            prepare_update(&b, Version(2), Strategy::Auto),
        ];
        // Capacity 10 holds both unit flows: no contention, no cycle.
        let diags = analyze_batch(&plans, Some(&topo));
        assert!(
            !diags.iter().any(|d| d.code == Code::WaitsForCycle),
            "{diags:?}"
        );
    }

    #[test]
    fn off_topology_edge_is_p4u003() {
        use p4update_des::SimDuration;
        use p4update_net::TopologyBuilder;
        let mut tb = TopologyBuilder::new("line");
        let v0 = tb.add_node("v0");
        let v1 = tb.add_node("v1");
        let v2 = tb.add_node("v2");
        tb.add_link(v0, v1, SimDuration::from_millis(1), 1.0);
        tb.add_link(v1, v2, SimDuration::from_millis(1), 1.0);
        let topo = tb.build();
        // New path jumps v0 -> v2 directly: not a link.
        let u = FlowUpdate::new(FlowId(0), None, path(&[0, 2]), 1.0);
        let plan = prepare_update(&u, Version(1), Strategy::Auto);
        let diags = analyze(&plan, Some(&topo));
        assert!(diags.iter().any(|d| d.code == Code::UnroutableEdge));
    }
}
