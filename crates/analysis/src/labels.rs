//! Label soundness: the distance/version proof carried by the plan's UIMs
//! (P4U001, P4U002, P4U004, P4U010, P4U013) and routability (P4U003).

use crate::diagnostic::{Code, Diagnostic};
use p4update_core::PreparedUpdate;
use p4update_net::{Topology, Version};

/// Verify the UIM set against the new path: one indication per path node,
/// egress first, each carrying the exact distance label and neighbor
/// pointers the proof-labeling scheme assigns (§3).
pub(crate) fn check_labels(plan: &PreparedUpdate, out: &mut Vec<Diagnostic>) {
    let path = &plan.update.new_path;
    let nodes = path.nodes();

    if plan.uims.len() != nodes.len() {
        out.push(Diagnostic::new(
            Code::UimSetMismatch,
            plan.flow,
            None,
            format!(
                "plan has {} UIMs for a new path of {} nodes",
                plan.uims.len(),
                nodes.len()
            ),
        ));
    }

    for (i, (target, uim)) in plan.uims.iter().enumerate() {
        let Some(pos) = path.position(*target) else {
            out.push(Diagnostic::new(
                Code::UimSetMismatch,
                plan.flow,
                Some(*target),
                "UIM addressed to a node that is not on the new path",
            ));
            continue;
        };

        // Egress-first ordering: uims[i] targets nodes[len-1-i]. The order
        // is part of the plan's contract (the egress starts the chain, so
        // its indication is pushed first).
        let expected_target = nodes[nodes.len() - 1 - i.min(nodes.len() - 1)];
        if i < nodes.len() && *target != expected_target {
            out.push(Diagnostic::new(
                Code::UimSetMismatch,
                plan.flow,
                Some(*target),
                format!(
                    "UIM #{i} targets {target}, expected {expected_target} (egress-first order)"
                ),
            ));
        }

        if uim.flow != plan.flow {
            out.push(Diagnostic::new(
                Code::UimSetMismatch,
                plan.flow,
                Some(*target),
                format!("UIM carries flow {} in a plan for {}", uim.flow, plan.flow),
            ));
        }
        if uim.kind != plan.kind {
            out.push(Diagnostic::new(
                Code::UimSetMismatch,
                plan.flow,
                Some(*target),
                format!(
                    "UIM kind {:?} disagrees with plan kind {:?}",
                    uim.kind, plan.kind
                ),
            ));
        }
        if uim.version != plan.version {
            out.push(Diagnostic::new(
                Code::VersionNotNewer,
                plan.flow,
                Some(*target),
                format!(
                    "UIM carries version {} in a plan for {}",
                    uim.version, plan.version
                ),
            ));
        }

        // The distance label: D_n(v) = hop distance to the egress. The
        // switches verify D_n(v) = D_n(UNM) + 1 hop by hop; a wrong label
        // here is exactly the forged proof the scheme exists to catch.
        let expected_d = (nodes.len() - 1 - pos) as u32;
        if uim.new_distance != expected_d {
            out.push(Diagnostic::new(
                Code::LabelChainBroken,
                plan.flow,
                Some(*target),
                format!(
                    "distance label {} breaks the chain (hop distance to egress is {expected_d})",
                    uim.new_distance
                ),
            ));
        }

        // Neighbor pointers: next hop forwards the flow, upstream receives
        // the cloned UNM. Either one wrong mis-wires the notification chain.
        let expected_next = path.successor(*target);
        if uim.next_hop != expected_next {
            out.push(Diagnostic::new(
                Code::UimChainMismatch,
                plan.flow,
                Some(*target),
                format!(
                    "next hop {:?} disagrees with the new path ({:?})",
                    uim.next_hop, expected_next
                ),
            ));
        }
        let expected_up = path.predecessor(*target);
        if uim.upstream != expected_up {
            out.push(Diagnostic::new(
                Code::UimChainMismatch,
                plan.flow,
                Some(*target),
                format!(
                    "upstream {:?} disagrees with the new path ({:?})",
                    uim.upstream, expected_up
                ),
            ));
        }

        if !uim.flow_size.is_finite() || uim.flow_size <= 0.0 {
            out.push(Diagnostic::new(
                Code::BadFlowSize,
                plan.flow,
                Some(*target),
                format!("flow size bound {} is unusable", uim.flow_size),
            ));
        } else if uim.flow_size != plan.update.size {
            out.push(Diagnostic::new(
                Code::BadFlowSize,
                plan.flow,
                Some(*target),
                format!(
                    "UIM flow size {} disagrees with the update's bound {}",
                    uim.flow_size, plan.update.size
                ),
            ));
        }
    }

    // Duplicate targets (two UIMs for one switch: the second overwrites the
    // staged entry and the chain count is off by one).
    let mut targets: Vec<_> = plan.uims.iter().map(|(n, _)| *n).collect();
    targets.sort_unstable();
    for w in targets.windows(2) {
        if w[0] == w[1] {
            out.push(Diagnostic::new(
                Code::UimSetMismatch,
                plan.flow,
                Some(w[0]),
                "duplicate UIM target",
            ));
        }
    }
}

/// Version soundness: the plan's version must be a real version and strictly
/// exceed whatever is installed (switches reject stale versions, §3 — a
/// plan that trips that check network-wide is a controller bug).
pub(crate) fn check_version(
    plan: &PreparedUpdate,
    installed: Option<Version>,
    out: &mut Vec<Diagnostic>,
) {
    if plan.version == Version::NONE {
        out.push(Diagnostic::new(
            Code::VersionNotNewer,
            plan.flow,
            None,
            "plan uses the reserved pre-deployment version V0",
        ));
    }
    if let Some(cur) = installed {
        if plan.version <= cur {
            out.push(Diagnostic::new(
                Code::VersionNotNewer,
                plan.flow,
                None,
                format!(
                    "plan version {} does not exceed installed version {cur}",
                    plan.version
                ),
            ));
        }
    }
}

/// Routability: every new-path edge must be a topology link (errors — the
/// plan cannot forward at all); missing old-path edges are warnings folded
/// into the same code (the old configuration predates this plan).
pub(crate) fn check_topology(plan: &PreparedUpdate, topo: &Topology, out: &mut Vec<Diagnostic>) {
    for (a, b) in plan.update.new_path.edges() {
        if topo.link_between(a, b).is_none() {
            out.push(Diagnostic::new(
                Code::UnroutableEdge,
                plan.flow,
                Some(a),
                format!(
                    "new path uses {a} -> {b}, which is not a link of '{}'",
                    topo.name
                ),
            ));
        }
    }
    for n in plan.update.new_path.nodes() {
        if n.index() >= topo.node_count() {
            out.push(Diagnostic::new(
                Code::UnroutableEdge,
                plan.flow,
                Some(*n),
                format!(
                    "new path visits {n}, which '{}' does not contain",
                    topo.name
                ),
            ));
        }
    }
}
