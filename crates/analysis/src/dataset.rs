//! On-disk dataset format for standalone linting at scale.
//!
//! A dataset is a directory:
//!
//! ```text
//! dataset/
//!   topology.json     # optional: nodes + links (latency_ns, capacity)
//!   context.json      # optional: installed versions per flow
//!   plans/
//!     00000.p4u       # one prepared plan per file, batch order =
//!     00001.p4u       # lexicographic file order
//!     ...
//! ```
//!
//! Every file is hand-rolled JSON ([`crate::Json`]); the format
//! round-trips exactly — [`export_dataset`] then [`load_dataset`] yields
//! plans comparing equal to the originals, so on-disk lint results are
//! byte-identical to in-memory analysis (asserted by `scripts/check.sh`'s
//! round-trip step). Plans are serialized in *prepared* form (labels,
//! segmentation, UIMs included, not re-derived on load) so corrupted
//! artifacts remain representable and lintable.

use crate::engine::{BatchAnalysis, BatchAnalyzer};
use crate::{AnalysisContext, Json};
use p4update_core::{PreparedUpdate, Segment, Segmentation};
use p4update_des::SimDuration;
use p4update_messages::{Uim, UpdateKind};
use p4update_net::{FlowId, FlowUpdate, NodeId, Path, Topology, TopologyBuilder, Version};
use std::collections::BTreeMap;
use std::path::Path as FsPath;

/// Schema tag written into `topology.json` and every `.p4u` file.
pub const DATASET_SCHEMA: &str = "p4update-dataset-v1";

/// A dataset loaded from disk: the optional topology, the plan batch (in
/// file order), and the installed-version context.
#[derive(Debug)]
pub struct Dataset {
    /// The topology, when `topology.json` was present.
    pub topology: Option<Topology>,
    /// The plan batch, in lexicographic file order.
    pub plans: Vec<PreparedUpdate>,
    /// Installed versions from `context.json` (empty when absent).
    pub installed: BTreeMap<FlowId, Version>,
}

impl Dataset {
    /// The analysis context this dataset describes.
    pub fn context(&self) -> AnalysisContext<'_> {
        AnalysisContext {
            topo: self.topology.as_ref(),
            installed: self.installed.clone(),
        }
    }

    /// Lint the whole dataset with `workers` threads.
    pub fn lint(&self, workers: usize) -> BatchAnalysis {
        BatchAnalyzer::new(workers).analyze(&self.plans, &self.context())
    }
}

/// Write `plans` (plus optional topology and installed-version context)
/// as a dataset directory. Creates `dir` and `dir/plans`; existing plan
/// files are removed first so the directory holds exactly this batch.
pub fn export_dataset(
    dir: &FsPath,
    topo: Option<&Topology>,
    plans: &[PreparedUpdate],
    installed: &BTreeMap<FlowId, Version>,
) -> std::io::Result<()> {
    let plans_dir = dir.join("plans");
    std::fs::create_dir_all(&plans_dir)?;
    for entry in std::fs::read_dir(&plans_dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "p4u") {
            std::fs::remove_file(path)?;
        }
    }
    if let Some(t) = topo {
        std::fs::write(
            dir.join("topology.json"),
            topology_json(t).to_string_pretty(),
        )?;
    }
    if !installed.is_empty() {
        std::fs::write(
            dir.join("context.json"),
            context_json(installed).to_string_pretty(),
        )?;
    }
    for (i, plan) in plans.iter().enumerate() {
        std::fs::write(
            plans_dir.join(format!("{i:05}.p4u")),
            plan_json(plan).to_string_pretty(),
        )?;
    }
    Ok(())
}

/// Load a dataset directory. `topology.json` and `context.json` are
/// optional; `plans/` must exist (an empty batch is legal).
pub fn load_dataset(dir: &FsPath) -> Result<Dataset, String> {
    let read = |p: &FsPath| std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()));
    let topology = {
        let p = dir.join("topology.json");
        if p.is_file() {
            Some(parse_topology(
                &Json::parse(&read(&p)?).map_err(|e| format!("{}: {e}", p.display()))?,
            )?)
        } else {
            None
        }
    };
    let installed = {
        let p = dir.join("context.json");
        if p.is_file() {
            parse_context(&Json::parse(&read(&p)?).map_err(|e| format!("{}: {e}", p.display()))?)?
        } else {
            BTreeMap::new()
        }
    };
    let plans_dir = dir.join("plans");
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(&plans_dir)
        .map_err(|e| format!("{}: {e}", plans_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "p4u"))
        .collect();
    files.sort();
    let mut plans = Vec::with_capacity(files.len());
    for p in files {
        let doc = Json::parse(&read(&p)?).map_err(|e| format!("{}: {e}", p.display()))?;
        plans.push(parse_plan(&doc).map_err(|e| format!("{}: {e}", p.display()))?);
    }
    Ok(Dataset {
        topology,
        plans,
        installed,
    })
}

// ---- serialization -------------------------------------------------------

fn num(n: f64) -> Json {
    Json::Num(n)
}

fn node(id: NodeId) -> Json {
    num(f64::from(id.0))
}

fn opt_node(id: Option<NodeId>) -> Json {
    id.map_or(Json::Null, node)
}

fn path_json(p: &Path) -> Json {
    Json::Arr(p.nodes().iter().map(|&n| node(n)).collect())
}

fn kind_str(kind: UpdateKind) -> &'static str {
    match kind {
        UpdateKind::Single => "single",
        UpdateKind::Dual => "dual",
    }
}

fn topology_json(t: &Topology) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(DATASET_SCHEMA.into())),
        ("name".into(), Json::Str(t.name.clone())),
        (
            "nodes".into(),
            Json::Arr(
                t.node_ids()
                    .map(|id| {
                        let n = t.node(id);
                        let mut m = vec![("name".into(), Json::Str(n.name.clone()))];
                        if let Some((lat, lon)) = n.position {
                            m.push(("position".into(), Json::Arr(vec![num(lat), num(lon)])));
                        }
                        Json::Obj(m)
                    })
                    .collect(),
            ),
        ),
        (
            "links".into(),
            Json::Arr(
                t.links()
                    .iter()
                    .map(|l| {
                        Json::Obj(vec![
                            ("a".into(), node(l.a)),
                            ("b".into(), node(l.b)),
                            // Integer nanoseconds for an exact round trip.
                            ("latency_ns".into(), num(l.latency.as_nanos() as f64)),
                            ("capacity".into(), num(l.capacity)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn context_json(installed: &BTreeMap<FlowId, Version>) -> Json {
    Json::Obj(vec![(
        "installed".into(),
        Json::Arr(
            installed
                .iter()
                .map(|(&f, &v)| {
                    Json::Obj(vec![
                        ("flow".into(), num(f64::from(f.0))),
                        ("version".into(), num(f64::from(v.0))),
                    ])
                })
                .collect(),
        ),
    )])
}

fn plan_json(plan: &PreparedUpdate) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(DATASET_SCHEMA.into())),
        ("flow".into(), num(f64::from(plan.flow.0))),
        ("version".into(), num(f64::from(plan.version.0))),
        ("kind".into(), Json::Str(kind_str(plan.kind).into())),
        (
            "update".into(),
            Json::Obj(vec![
                (
                    "old_path".into(),
                    plan.update.old_path.as_ref().map_or(Json::Null, path_json),
                ),
                ("new_path".into(), path_json(&plan.update.new_path)),
                ("size".into(), num(plan.update.size)),
            ]),
        ),
        (
            "segmentation".into(),
            Json::Obj(vec![
                (
                    "gateways".into(),
                    Json::Arr(
                        plan.segmentation
                            .gateways
                            .iter()
                            .map(|&g| node(g))
                            .collect(),
                    ),
                ),
                (
                    "segments".into(),
                    Json::Arr(
                        plan.segmentation
                            .segments
                            .iter()
                            .map(|s| {
                                Json::Obj(vec![
                                    ("ingress_gateway".into(), node(s.ingress_gateway)),
                                    ("egress_gateway".into(), node(s.egress_gateway)),
                                    (
                                        "interior".into(),
                                        Json::Arr(s.interior.iter().map(|&n| node(n)).collect()),
                                    ),
                                    (
                                        "ingress_old_distance".into(),
                                        num(f64::from(s.ingress_old_distance)),
                                    ),
                                    (
                                        "egress_old_distance".into(),
                                        num(f64::from(s.egress_old_distance)),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "uims".into(),
            Json::Arr(
                plan.uims
                    .iter()
                    .map(|&(n, uim)| {
                        Json::Obj(vec![
                            ("node".into(), node(n)),
                            ("version".into(), num(f64::from(uim.version.0))),
                            ("new_distance".into(), num(f64::from(uim.new_distance))),
                            ("flow_size".into(), num(uim.flow_size)),
                            ("next_hop".into(), opt_node(uim.next_hop)),
                            ("upstream".into(), opt_node(uim.upstream)),
                            ("kind".into(), Json::Str(kind_str(uim.kind).into())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

// ---- parsing -------------------------------------------------------------

fn field<'j>(doc: &'j Json, key: &str) -> Result<&'j Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn parse_u32(doc: &Json, key: &str) -> Result<u32, String> {
    let n = field(doc, key)?
        .as_f64()
        .ok_or_else(|| format!("{key:?} is not a number"))?;
    if n < 0.0 || n.fract() != 0.0 || n > f64::from(u32::MAX) {
        return Err(format!("{key:?} = {n} is not a u32"));
    }
    Ok(n as u32)
}

fn parse_f64(doc: &Json, key: &str) -> Result<f64, String> {
    field(doc, key)?
        .as_f64()
        .ok_or_else(|| format!("{key:?} is not a number"))
}

fn parse_node(v: &Json) -> Result<NodeId, String> {
    let n = v.as_f64().ok_or("node id is not a number")?;
    if n < 0.0 || n.fract() != 0.0 || n > f64::from(u32::MAX) {
        return Err(format!("node id {n} is not a u32"));
    }
    Ok(NodeId(n as u32))
}

fn parse_opt_node(v: &Json) -> Result<Option<NodeId>, String> {
    match v {
        Json::Null => Ok(None),
        other => parse_node(other).map(Some),
    }
}

fn parse_path(v: &Json) -> Result<Path, String> {
    let nodes = v
        .as_arr()
        .ok_or("path is not an array")?
        .iter()
        .map(parse_node)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Path::new(nodes))
}

fn parse_kind(v: &Json) -> Result<UpdateKind, String> {
    match v.as_str() {
        Some("single") => Ok(UpdateKind::Single),
        Some("dual") => Ok(UpdateKind::Dual),
        other => Err(format!("unknown update kind {other:?}")),
    }
}

fn check_schema(doc: &Json, what: &str) -> Result<(), String> {
    match field(doc, "schema")?.as_str() {
        Some(DATASET_SCHEMA) => Ok(()),
        other => Err(format!(
            "{what}: unsupported schema {other:?} (expected {DATASET_SCHEMA:?})"
        )),
    }
}

fn parse_topology(doc: &Json) -> Result<Topology, String> {
    check_schema(doc, "topology.json")?;
    let name = field(doc, "name")?.as_str().ok_or("name is not a string")?;
    let mut tb = TopologyBuilder::new(name);
    for n in field(doc, "nodes")?
        .as_arr()
        .ok_or("nodes is not an array")?
    {
        let node_name = field(n, "name")?
            .as_str()
            .ok_or("node name is not a string")?;
        match n.get("position") {
            Some(Json::Arr(coords)) if coords.len() == 2 => {
                let lat = coords[0].as_f64().ok_or("latitude is not a number")?;
                let lon = coords[1].as_f64().ok_or("longitude is not a number")?;
                tb.add_site(node_name, lat, lon);
            }
            Some(other) => return Err(format!("bad position {other:?}")),
            None => {
                tb.add_node(node_name);
            }
        }
    }
    for l in field(doc, "links")?
        .as_arr()
        .ok_or("links is not an array")?
    {
        let a = parse_node(field(l, "a")?)?;
        let b = parse_node(field(l, "b")?)?;
        let latency_ns = field(l, "latency_ns")?
            .as_f64()
            .ok_or("latency_ns is not a number")?;
        if latency_ns < 0.0 || latency_ns.fract() != 0.0 {
            return Err(format!(
                "latency_ns = {latency_ns} is not a nanosecond count"
            ));
        }
        let capacity = parse_f64(l, "capacity")?;
        tb.add_link(a, b, SimDuration::from_nanos(latency_ns as u64), capacity);
    }
    Ok(tb.build())
}

fn parse_context(doc: &Json) -> Result<BTreeMap<FlowId, Version>, String> {
    let mut installed = BTreeMap::new();
    for entry in field(doc, "installed")?
        .as_arr()
        .ok_or("installed is not an array")?
    {
        installed.insert(
            FlowId(parse_u32(entry, "flow")?),
            Version(parse_u32(entry, "version")?),
        );
    }
    Ok(installed)
}

fn parse_plan(doc: &Json) -> Result<PreparedUpdate, String> {
    check_schema(doc, "plan")?;
    let flow = FlowId(parse_u32(doc, "flow")?);
    let version = Version(parse_u32(doc, "version")?);
    let kind = parse_kind(field(doc, "kind")?)?;

    let u = field(doc, "update")?;
    let old_path = match field(u, "old_path")? {
        Json::Null => None,
        other => Some(parse_path(other)?),
    };
    let update = FlowUpdate {
        flow,
        old_path,
        new_path: parse_path(field(u, "new_path")?)?,
        size: parse_f64(u, "size")?,
    };

    let seg = field(doc, "segmentation")?;
    let gateways = field(seg, "gateways")?
        .as_arr()
        .ok_or("gateways is not an array")?
        .iter()
        .map(parse_node)
        .collect::<Result<Vec<_>, _>>()?;
    let segments = field(seg, "segments")?
        .as_arr()
        .ok_or("segments is not an array")?
        .iter()
        .map(|s| {
            Ok(Segment {
                ingress_gateway: parse_node(field(s, "ingress_gateway")?)?,
                egress_gateway: parse_node(field(s, "egress_gateway")?)?,
                interior: field(s, "interior")?
                    .as_arr()
                    .ok_or("interior is not an array")?
                    .iter()
                    .map(parse_node)
                    .collect::<Result<Vec<_>, String>>()?,
                ingress_old_distance: parse_u32(s, "ingress_old_distance")?,
                egress_old_distance: parse_u32(s, "egress_old_distance")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;

    let uims = field(doc, "uims")?
        .as_arr()
        .ok_or("uims is not an array")?
        .iter()
        .map(|entry| {
            Ok((
                parse_node(field(entry, "node")?)?,
                Uim {
                    flow,
                    version: Version(parse_u32(entry, "version")?),
                    new_distance: parse_u32(entry, "new_distance")?,
                    flow_size: parse_f64(entry, "flow_size")?,
                    next_hop: parse_opt_node(field(entry, "next_hop")?)?,
                    upstream: parse_opt_node(field(entry, "upstream")?)?,
                    kind: parse_kind(field(entry, "kind")?)?,
                },
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;

    Ok(PreparedUpdate {
        flow,
        update,
        version,
        kind,
        segmentation: Segmentation { gateways, segments },
        uims,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4update_core::{prepare_update, Strategy};

    fn sample_topo() -> Topology {
        let mut tb = TopologyBuilder::new("diamond");
        let ids: Vec<NodeId> = (0..4).map(|i| tb.add_node(format!("v{i}"))).collect();
        for (x, y) in [(0usize, 1), (1, 3), (0, 2), (2, 3)] {
            tb.add_link(ids[x], ids[y], SimDuration::from_nanos(1_234_567), 2.5);
        }
        tb.build()
    }

    fn sample_plans() -> Vec<PreparedUpdate> {
        let p = |ids: &[u32]| Path::new(ids.iter().map(|&i| NodeId(i)).collect());
        let a = FlowUpdate::new(FlowId(1), Some(p(&[0, 1, 3])), p(&[0, 2, 3]), 1.5);
        let b = FlowUpdate::new(FlowId(2), None, p(&[0, 1, 3]), 0.25);
        vec![
            prepare_update(&a, Version(2), Strategy::Auto),
            prepare_update(&b, Version(1), Strategy::ForceSingle),
        ]
    }

    #[test]
    fn dataset_round_trips_exactly() {
        let dir = std::env::temp_dir().join(format!("p4u-ds-{}", std::process::id()));
        let topo = sample_topo();
        let plans = sample_plans();
        let mut installed = BTreeMap::new();
        installed.insert(FlowId(1), Version(1));
        export_dataset(&dir, Some(&topo), &plans, &installed).unwrap();
        let ds = load_dataset(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();

        assert_eq!(ds.plans, plans);
        assert_eq!(ds.installed, installed);
        let back = ds.topology.expect("topology present");
        assert_eq!(back.name, topo.name);
        assert_eq!(back.node_count(), topo.node_count());
        assert_eq!(back.link_count(), topo.link_count());
        for (l, r) in back.links().iter().zip(topo.links()) {
            assert_eq!((l.a, l.b, l.latency), (r.a, r.b, r.latency));
            assert_eq!(l.capacity.to_bits(), r.capacity.to_bits());
        }
    }

    #[test]
    fn lint_of_loaded_dataset_matches_in_memory_analysis() {
        let dir = std::env::temp_dir().join(format!("p4u-ds-lint-{}", std::process::id()));
        let topo = sample_topo();
        let plans = sample_plans();
        export_dataset(&dir, Some(&topo), &plans, &BTreeMap::new()).unwrap();
        let ds = load_dataset(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();

        let ctx = AnalysisContext::with_topo(&topo);
        let reference = crate::analyze_batch_with(&plans, &ctx);
        assert_eq!(ds.lint(2).diagnostics(), &reference[..]);
    }

    #[test]
    fn missing_plans_dir_is_an_error() {
        let dir = std::env::temp_dir().join(format!("p4u-ds-missing-{}", std::process::id()));
        assert!(load_dataset(&dir).is_err());
    }

    #[test]
    fn export_replaces_stale_plan_files() {
        let dir = std::env::temp_dir().join(format!("p4u-ds-stale-{}", std::process::id()));
        let plans = sample_plans();
        export_dataset(&dir, None, &plans, &BTreeMap::new()).unwrap();
        export_dataset(&dir, None, &plans[..1], &BTreeMap::new()).unwrap();
        let ds = load_dataset(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(ds.plans.len(), 1);
        assert!(ds.topology.is_none());
        assert!(ds.installed.is_empty());
    }
}
