//! Golden-diagnostic tests: for each invariant the analyzer checks, a
//! known-bad plan (a well-prepared plan with one field corrupted) must
//! produce exactly the expected stable code — and the uncorrupted plan
//! must be clean. This pins both the analyzer's sensitivity and its codes.

use p4update_analysis::{analyze, analyze_batch, is_clean, AnalysisContext, Code, Severity};
use p4update_core::{prepare_update, PreparedUpdate, Strategy};
use p4update_net::{FlowId, FlowUpdate, NodeId, Path, Version};

fn path(ids: &[u32]) -> Path {
    Path::new(ids.iter().map(|&i| NodeId(i)).collect())
}

/// The paper's Fig. 1 migration: 3 segments, one backward — the richest
/// small plan (exercises the DL machinery).
fn fig1_update() -> FlowUpdate {
    FlowUpdate::new(
        FlowId(0),
        Some(path(&[0, 4, 2, 7])),
        path(&[0, 1, 2, 3, 4, 5, 6, 7]),
        1.0,
    )
}

fn fig1_plan() -> PreparedUpdate {
    prepare_update(&fig1_update(), Version(2), Strategy::Auto)
}

/// Codes (deduplicated, sorted) of all error-severity findings.
fn error_codes(plan: &PreparedUpdate) -> Vec<Code> {
    let mut codes: Vec<Code> = analyze(plan, None)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.code)
        .collect();
    codes.sort();
    codes.dedup();
    codes
}

#[test]
fn baseline_plan_is_clean() {
    assert!(analyze(&fig1_plan(), None).is_empty());
}

#[test]
fn corrupt_distance_label() {
    let mut plan = fig1_plan();
    plan.uims[4].1.new_distance = 9;
    assert_eq!(error_codes(&plan), vec![Code::LabelChainBroken]);
}

#[test]
fn corrupt_next_hop() {
    let mut plan = fig1_plan();
    plan.uims[2].1.next_hop = Some(NodeId(0));
    assert_eq!(error_codes(&plan), vec![Code::UimChainMismatch]);
}

#[test]
fn corrupt_upstream() {
    let mut plan = fig1_plan();
    plan.uims[2].1.upstream = None;
    assert_eq!(error_codes(&plan), vec![Code::UimChainMismatch]);
}

#[test]
fn stale_uim_version() {
    let mut plan = fig1_plan();
    plan.uims[1].1.version = Version(1);
    assert_eq!(error_codes(&plan), vec![Code::VersionNotNewer]);
}

#[test]
fn reserved_version_zero() {
    let plan = prepare_update(&fig1_update(), Version(0), Strategy::Auto);
    assert_eq!(error_codes(&plan), vec![Code::VersionNotNewer]);
}

#[test]
fn version_must_exceed_installed() {
    let plan = prepare_update(&fig1_update(), Version(3), Strategy::Auto);
    let ctx = AnalysisContext::default().install(FlowId(0), Version(3));
    let diags = p4update_analysis::analyze_with(&plan, &ctx);
    assert!(diags.iter().any(|d| d.code == Code::VersionNotNewer));
}

#[test]
fn missing_uim() {
    let mut plan = fig1_plan();
    plan.uims.pop(); // drop the ingress indication
    assert_eq!(error_codes(&plan), vec![Code::UimSetMismatch]);
}

#[test]
fn duplicated_uim_target() {
    let mut plan = fig1_plan();
    let dup = plan.uims[3];
    plan.uims[4] = dup;
    assert!(error_codes(&plan).contains(&Code::UimSetMismatch));
}

#[test]
fn swapped_uim_order() {
    let mut plan = fig1_plan();
    plan.uims.swap(0, 1); // egress no longer first
    assert_eq!(error_codes(&plan), vec![Code::UimSetMismatch]);
}

#[test]
fn uim_for_foreign_node() {
    let mut plan = fig1_plan();
    plan.uims[3].0 = NodeId(42);
    let codes = error_codes(&plan);
    assert!(codes.contains(&Code::UimSetMismatch), "{codes:?}");
}

#[test]
fn wrong_flow_in_uim() {
    let mut plan = fig1_plan();
    plan.uims[5].1.flow = FlowId(99);
    assert_eq!(error_codes(&plan), vec![Code::UimSetMismatch]);
}

#[test]
fn wrong_kind_in_uim() {
    let mut plan = fig1_plan();
    plan.uims[5].1.kind = p4update_messages::UpdateKind::Single;
    assert_eq!(error_codes(&plan), vec![Code::UimSetMismatch]);
}

#[test]
fn unusable_flow_size() {
    let mut plan = fig1_plan();
    plan.uims[0].1.flow_size = f64::NAN;
    // NaN also breaks wire round-trip equality, so two codes fire.
    let codes = error_codes(&plan);
    assert!(codes.contains(&Code::BadFlowSize), "{codes:?}");

    let mut plan = fig1_plan();
    plan.uims[0].1.flow_size = 2.0; // disagrees with the update's bound
    assert_eq!(error_codes(&plan), vec![Code::BadFlowSize]);
}

// ---- segmentation (P4U005/P4U006/P4U007), including the DL backward
// ---- segment edge cases.

#[test]
fn dropped_gateway() {
    let mut plan = fig1_plan();
    // Remove gateway v2 and merge its two segments into one — tiling still
    // holds, so the specific finding is the missing shared node.
    plan.segmentation.gateways.retain(|&g| g != NodeId(2));
    let s0 = plan.segmentation.segments[0].clone();
    let s1 = plan.segmentation.segments[1].clone();
    let merged = p4update_core::Segment {
        ingress_gateway: s0.ingress_gateway,
        egress_gateway: s1.egress_gateway,
        interior: {
            let mut v = s0.interior.clone();
            v.push(s0.egress_gateway);
            v.extend(&s1.interior);
            v
        },
        ingress_old_distance: s0.ingress_old_distance,
        egress_old_distance: s1.egress_old_distance,
    };
    plan.segmentation.segments.splice(0..2, [merged]);
    assert_eq!(error_codes(&plan), vec![Code::SegmentationMalformed]);
}

#[test]
fn interior_node_on_old_path() {
    let mut plan = fig1_plan();
    // Claim old-path node v4 is an interior of segment 0.
    plan.segmentation.segments[0].interior.push(NodeId(4));
    let codes = error_codes(&plan);
    assert!(codes.contains(&Code::SegmentationMalformed), "{codes:?}");
}

#[test]
fn backward_segment_distance_corruption_flips_direction() {
    let mut plan = fig1_plan();
    // Fig. 1's middle segment (v2 -> v4) is backward: D_o = 1 -> 2. Forging
    // the ingress distance to 5 makes direction() report Forward — the
    // dangerous misclassification (the segment would update before its
    // downstream segments and can transiently loop). The analyzer must see
    // both the forged distance and the flipped class.
    let s = &mut plan.segmentation.segments[1];
    assert_eq!(s.direction(), p4update_core::SegmentDir::Backward);
    s.ingress_old_distance = 5;
    assert_eq!(s.direction(), p4update_core::SegmentDir::Forward);
    let codes = error_codes(&plan);
    assert!(codes.contains(&Code::OldDistanceMismatch), "{codes:?}");
    assert!(
        codes.contains(&Code::SegmentDirectionMisclassified),
        "{codes:?}"
    );
}

#[test]
fn forward_segment_distance_corruption_without_flip() {
    let mut plan = fig1_plan();
    // Segment 0 (v0 -> v2) is forward: D_o = 3 -> 1. Forging 3 to 7 keeps
    // the class Forward; only the distance mismatch fires.
    plan.segmentation.segments[0].ingress_old_distance = 7;
    assert_eq!(error_codes(&plan), vec![Code::OldDistanceMismatch]);
}

#[test]
fn fresh_deployment_synthetic_distances_are_checked() {
    let u = FlowUpdate::new(FlowId(1), None, path(&[0, 2, 5]), 1.0);
    let mut plan = prepare_update(&u, Version(1), Strategy::Auto);
    assert!(analyze(&plan, None).is_empty());
    // The fresh-deployment convention: egress 0, ingress u32::MAX.
    plan.segmentation.segments[0].egress_old_distance = 3;
    let codes = error_codes(&plan);
    assert!(codes.contains(&Code::OldDistanceMismatch), "{codes:?}");
}

// ---- advisory and batch-level codes.

#[test]
fn forced_single_layer_is_an_advisory() {
    let plan = prepare_update(&fig1_update(), Version(2), Strategy::ForceSingle);
    let diags = analyze(&plan, None);
    // Two advisories: backward segment present, and 8 > 5 nodes.
    assert_eq!(diags.len(), 2);
    assert!(diags.iter().all(|d| d.code == Code::MechanismAdvisory));
    assert!(is_clean(&diags));
}

#[test]
fn batch_with_non_increasing_versions() {
    let u = fig1_update();
    let plans = vec![
        prepare_update(&u, Version(2), Strategy::Auto),
        prepare_update(&u, Version(2), Strategy::Auto),
    ];
    let diags = analyze_batch(&plans, None);
    assert!(diags.iter().any(|d| d.code == Code::BatchVersionConflict));
}

#[test]
fn waits_for_cycle_between_swapping_flows() {
    let a = FlowUpdate::new(FlowId(1), Some(path(&[0, 1, 3])), path(&[0, 2, 3]), 1.0);
    let b = FlowUpdate::new(FlowId(2), Some(path(&[0, 2, 3])), path(&[0, 1, 3]), 1.0);
    let plans = vec![
        prepare_update(&a, Version(2), Strategy::Auto),
        prepare_update(&b, Version(2), Strategy::Auto),
    ];
    let diags = analyze_batch(&plans, None);
    let cycles: Vec<_> = diags
        .iter()
        .filter(|d| d.code == Code::WaitsForCycle)
        .collect();
    assert_eq!(cycles.len(), 1, "{diags:?}");
    assert_eq!(cycles[0].severity, Severity::Warning);
}

#[test]
fn independent_updates_have_no_cycle() {
    let a = FlowUpdate::new(FlowId(1), Some(path(&[0, 1, 3])), path(&[0, 2, 3]), 1.0);
    let b = FlowUpdate::new(FlowId(2), Some(path(&[4, 5, 7])), path(&[4, 6, 7]), 1.0);
    let plans = vec![
        prepare_update(&a, Version(2), Strategy::Auto),
        prepare_update(&b, Version(2), Strategy::Auto),
    ];
    assert!(analyze_batch(&plans, None).is_empty());
}

#[test]
fn diagnostics_render_with_stable_codes() {
    let mut plan = fig1_plan();
    plan.uims[4].1.new_distance = 9;
    let diags = analyze(&plan, None);
    assert_eq!(diags.len(), 1);
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("error[P4U001]: f0: at v3:"),
        "{rendered}"
    );
}
