#[test]
fn recovery_relay_through_applied_node() {
    use p4update_core::P4UpdateLogic;
    use p4update_dataplane::{Endpoint, Switch};
    use p4update_des::{SimDuration, SimTime};
    use p4update_messages::*;
    use p4update_net::{FlowId, NodeId, TopologyBuilder, Version};
    let mut b = TopologyBuilder::new("l3");
    let v: Vec<_> = (0..3).map(|i| b.add_node(format!("n{i}"))).collect();
    b.add_link(v[0], v[1], SimDuration::from_millis(1), 10.0);
    b.add_link(v[1], v[2], SimDuration::from_millis(1), 10.0);
    let t = b.build();
    let mut s1 = Switch::new(NodeId(1), &t, Box::new(P4UpdateLogic::new()));
    // v1 already applied version 2 (distance 1, next 2, upstream 0).
    s1.state.uib.update(FlowId(0), |e| {
        e.uim_version = Version(2);
        e.uim_distance = 1;
        e.uim_kind = Some(UpdateKind::Single);
        e.staged_next_hop = Some(NodeId(2));
        e.staged_upstream = Some(NodeId(0));
        e.applied_version = Version(2);
        e.applied_distance = 1;
        e.active_next_hop = Some(NodeId(2));
        e.active_upstream = Some(NodeId(0));
        e.old_version = Version(2);
        e.old_distance = 1;
        e.last_update_type = Some(UpdateKind::Single);
        e.flow_size = 1.0;
    });
    // Regenerated UNM from the egress v2.
    let unm = Message::Unm(Unm {
        flow: FlowId(0),
        v_new: Version(2),
        v_old: Version(2),
        d_new: 0,
        d_old: 0,
        counter: 0,
        kind: UpdateKind::Single,
        layer: UnmLayer::Intra,
    });
    let effects = s1.handle_message(SimTime::ZERO, Endpoint::Switch(NodeId(2)), unm);
    println!("effects: {effects:?}");
    assert!(
        effects.iter().any(
            |e| matches!(e, p4update_dataplane::Effect::SendSwitch { to, .. } if *to == NodeId(0))
        ),
        "must relay upstream, got {effects:?}"
    );
}
