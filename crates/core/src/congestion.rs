//! The local, dynamic congestion scheduler (§7.4, §A.2).
//!
//! Congestion freedom has inter-flow dependencies: moving flow `f` onto
//! link `e` needs capacity that might only appear once some flow `g` moves
//! *off* `e`. Prior systems resolve this with a centrally computed
//! dependency graph; P4Update resolves it locally and dynamically:
//!
//! - a flow blocked from moving onto `e` parks at `e`'s wait queue, and all
//!   flows currently on `e` that want to move away are raised to high
//!   priority;
//! - a low-priority flow may move onto `e` (given capacity) only when no
//!   high-priority flow is waiting for `e`;
//! - high-priority flows move immediately when capacity suffices;
//! - whenever capacity on `e` is released, parked flows are retried, high
//!   priority first (FIFO within a class).
//!
//! The scheduler is a per-switch data structure; priorities live in the UIB
//! (`flow_priority` register) and are read through a callback so tests can
//! drive it without a full switch.

use p4update_dataplane::FlowPriority;
use p4update_net::{FlowId, NodeId};
use std::collections::BTreeMap;

/// Why a move was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// The link lacks remaining capacity for the flow's size.
    NoCapacity,
    /// Capacity suffices but a high-priority flow is waiting for the link
    /// and this flow is low priority.
    YieldToHighPriority,
}

/// Admission decision for a flow wanting to move onto a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Reserve and go.
    Go,
    /// Park at the link's wait queue.
    Blocked(BlockReason),
}

/// Per-switch wait queues: flows parked per outgoing link.
#[derive(Debug, Clone, Default)]
pub struct CongestionScheduler {
    waiting: BTreeMap<NodeId, Vec<FlowId>>,
}

impl CongestionScheduler {
    /// Empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decide whether `flow` (with `size` and `priority`) may move onto the
    /// link toward `to`, given `remaining` capacity there.
    pub fn admit(
        &self,
        flow: FlowId,
        to: NodeId,
        size: f64,
        remaining: f64,
        priority: FlowPriority,
        priority_of: impl Fn(FlowId) -> FlowPriority,
    ) -> Admission {
        if remaining + 1e-9 < size {
            return Admission::Blocked(BlockReason::NoCapacity);
        }
        if priority == FlowPriority::High {
            return Admission::Go;
        }
        let high_waiting = self
            .waiting
            .get(&to)
            .into_iter()
            .flatten()
            .any(|&f| f != flow && priority_of(f) == FlowPriority::High);
        if high_waiting {
            Admission::Blocked(BlockReason::YieldToHighPriority)
        } else {
            Admission::Go
        }
    }

    /// Park `flow` in the wait queue of the link toward `to` (idempotent).
    pub fn park(&mut self, to: NodeId, flow: FlowId) {
        let q = self.waiting.entry(to).or_default();
        if !q.contains(&flow) {
            q.push(flow);
        }
    }

    /// Remove and return the parked flows for `to`, high-priority first,
    /// FIFO within each class. Callers retry each and re-park the still
    /// blocked ones.
    pub fn drain(
        &mut self,
        to: NodeId,
        priority_of: impl Fn(FlowId) -> FlowPriority,
    ) -> Vec<FlowId> {
        let Some(q) = self.waiting.remove(&to) else {
            return Vec::new();
        };
        let (mut high, low): (Vec<FlowId>, Vec<FlowId>) = q
            .into_iter()
            .partition(|&f| priority_of(f) == FlowPriority::High);
        high.extend(low);
        high
    }

    /// Flows currently parked for `to`.
    pub fn parked(&self, to: NodeId) -> &[FlowId] {
        self.waiting.get(&to).map_or(&[], |q| q.as_slice())
    }

    /// Total parked flows across all links.
    pub fn total_parked(&self) -> usize {
        self.waiting.values().map(Vec::len).sum()
    }

    /// Links that have at least one waiter.
    pub fn contended_links(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.waiting
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&n, _)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lows(_: FlowId) -> FlowPriority {
        FlowPriority::Low
    }

    #[test]
    fn capacity_shortfall_blocks() {
        let s = CongestionScheduler::new();
        assert_eq!(
            s.admit(FlowId(1), NodeId(0), 5.0, 4.0, FlowPriority::Low, lows),
            Admission::Blocked(BlockReason::NoCapacity)
        );
        assert_eq!(
            s.admit(FlowId(1), NodeId(0), 5.0, 5.0, FlowPriority::Low, lows),
            Admission::Go
        );
    }

    #[test]
    fn low_priority_yields_to_waiting_high() {
        let mut s = CongestionScheduler::new();
        s.park(NodeId(0), FlowId(9));
        let prio = |f: FlowId| {
            if f == FlowId(9) {
                FlowPriority::High
            } else {
                FlowPriority::Low
            }
        };
        assert_eq!(
            s.admit(FlowId(1), NodeId(0), 1.0, 10.0, FlowPriority::Low, prio),
            Admission::Blocked(BlockReason::YieldToHighPriority)
        );
        // The high flow itself goes.
        assert_eq!(
            s.admit(FlowId(9), NodeId(0), 1.0, 10.0, FlowPriority::High, prio),
            Admission::Go
        );
        // A different link is unaffected.
        assert_eq!(
            s.admit(FlowId(1), NodeId(2), 1.0, 10.0, FlowPriority::Low, prio),
            Admission::Go
        );
    }

    #[test]
    fn high_priority_moves_immediately() {
        let mut s = CongestionScheduler::new();
        s.park(NodeId(0), FlowId(9));
        // Even with another high flow waiting, a high flow with capacity
        // goes (§7.4: "high priority flows can move immediately with
        // sufficient capacity").
        let prio = |_: FlowId| FlowPriority::High;
        assert_eq!(
            s.admit(FlowId(1), NodeId(0), 1.0, 10.0, FlowPriority::High, prio),
            Admission::Go
        );
    }

    #[test]
    fn own_waiting_entry_does_not_self_block() {
        let mut s = CongestionScheduler::new();
        s.park(NodeId(0), FlowId(1));
        let prio = |f: FlowId| {
            if f == FlowId(1) {
                FlowPriority::High
            } else {
                FlowPriority::Low
            }
        };
        // FlowId(1) is the only (high) waiter: a retry of FlowId(1) itself
        // as low would... it is high here, but the self-exclusion also
        // covers the low case:
        assert_eq!(
            s.admit(FlowId(1), NodeId(0), 1.0, 10.0, FlowPriority::Low, prio),
            Admission::Go
        );
    }

    #[test]
    fn park_is_idempotent() {
        let mut s = CongestionScheduler::new();
        s.park(NodeId(0), FlowId(1));
        s.park(NodeId(0), FlowId(1));
        assert_eq!(s.parked(NodeId(0)), &[FlowId(1)]);
        assert_eq!(s.total_parked(), 1);
    }

    #[test]
    fn drain_orders_high_first_fifo_within_class() {
        let mut s = CongestionScheduler::new();
        for f in [1u32, 2, 3, 4] {
            s.park(NodeId(0), FlowId(f));
        }
        let prio = |f: FlowId| {
            if f == FlowId(2) || f == FlowId(4) {
                FlowPriority::High
            } else {
                FlowPriority::Low
            }
        };
        let order = s.drain(NodeId(0), prio);
        assert_eq!(order, vec![FlowId(2), FlowId(4), FlowId(1), FlowId(3)]);
        assert_eq!(s.total_parked(), 0);
        assert!(s.drain(NodeId(0), lows).is_empty());
    }

    #[test]
    fn contended_links_lists_nonempty_queues() {
        let mut s = CongestionScheduler::new();
        s.park(NodeId(3), FlowId(1));
        s.park(NodeId(5), FlowId(2));
        let links: Vec<NodeId> = s.contended_links().collect();
        assert_eq!(links, vec![NodeId(3), NodeId(5)]);
    }
}
