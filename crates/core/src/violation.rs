//! Consistency violations: the paper's three safety properties (§5) as a
//! reportable data type, with a stable one-line text encoding.
//!
//! The type used to live inside the simulation harness's checker; it moved
//! here because *reporting* a violation is part of the framework's
//! vocabulary, shared by the runtime checker (`p4update-sim`), the schedule
//! explorer (`p4update-explore`, which stores expected violations in its
//! trace files), and any future verification tooling. The text encoding is
//! a compatibility contract: committed trace files must parse and compare
//! identically across refactors, so changes here require regenerating the
//! trace corpus.

use p4update_messages::RejectReason;
use p4update_net::{FlowId, NodeId};
use std::fmt;

/// A consistency violation at a point in time.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The flow's forwarding walk revisits a node: a forwarding loop.
    Loop {
        /// Affected flow.
        flow: FlowId,
        /// The nodes of the detected cycle, in walk order.
        cycle: Vec<NodeId>,
    },
    /// The flow's forwarding walk reaches a switch without a rule.
    Blackhole {
        /// Affected flow.
        flow: FlowId,
        /// The ruleless switch.
        at: NodeId,
    },
    /// A directed link carries more flow than its capacity.
    Congestion {
        /// Transmitting endpoint.
        from: NodeId,
        /// Receiving endpoint.
        to: NodeId,
        /// Total size routed over the link.
        load: f64,
        /// The link's capacity.
        capacity: f64,
    },
    /// A switch locally rejected forged update state: a byzantine-
    /// corrupted message failed the proof-labeling verification and was
    /// reported to the controller with an alarm. Unlike the other
    /// variants this records a *successful defense* — it exists so
    /// byzantine traces can pin exactly which lie was caught, where, and
    /// why.
    ForgedReject {
        /// Affected flow.
        flow: FlowId,
        /// The rejecting switch.
        at: NodeId,
        /// The verification failure the forgery tripped.
        reason: RejectReason,
    },
}

/// The stable text encoding, also used by `Display`:
///
/// ```text
/// loop flow=0 cycle=1>2>3
/// blackhole flow=0 at=4
/// congestion link=0>1 load=3 cap=2
/// forged-reject flow=0 at=3 reason=distance-mismatch
/// ```
///
/// Node and flow identifiers are raw numeric ids (not display names) so the
/// encoding is independent of topology naming.
impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Loop { flow, cycle } => {
                write!(f, "loop flow={} cycle=", flow.0)?;
                for (i, n) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, ">")?;
                    }
                    write!(f, "{}", n.0)?;
                }
                Ok(())
            }
            Violation::Blackhole { flow, at } => {
                write!(f, "blackhole flow={} at={}", flow.0, at.0)
            }
            Violation::Congestion {
                from,
                to,
                load,
                capacity,
            } => {
                write!(
                    f,
                    "congestion link={}>{} load={load} cap={capacity}",
                    from.0, to.0
                )
            }
            Violation::ForgedReject { flow, at, reason } => {
                write!(
                    f,
                    "forged-reject flow={} at={} reason={}",
                    flow.0,
                    at.0,
                    reason.token()
                )
            }
        }
    }
}

fn field<'a>(token: Option<&'a str>, key: &str) -> Option<&'a str> {
    token?.strip_prefix(key)?.strip_prefix('=')
}

impl Violation {
    /// Parse the [`Display`](fmt::Display) encoding back. Returns `None`
    /// on any malformed input.
    pub fn parse(s: &str) -> Option<Violation> {
        let mut tokens = s.split_whitespace();
        match tokens.next()? {
            "loop" => {
                let flow = FlowId(field(tokens.next(), "flow")?.parse().ok()?);
                let cycle = field(tokens.next(), "cycle")?
                    .split('>')
                    .map(|n| n.parse().ok().map(NodeId))
                    .collect::<Option<Vec<_>>>()?;
                if cycle.is_empty() || tokens.next().is_some() {
                    return None;
                }
                Some(Violation::Loop { flow, cycle })
            }
            "blackhole" => {
                let flow = FlowId(field(tokens.next(), "flow")?.parse().ok()?);
                let at = NodeId(field(tokens.next(), "at")?.parse().ok()?);
                if tokens.next().is_some() {
                    return None;
                }
                Some(Violation::Blackhole { flow, at })
            }
            "congestion" => {
                let (from, to) = field(tokens.next(), "link")?.split_once('>')?;
                let load = field(tokens.next(), "load")?.parse().ok()?;
                let capacity = field(tokens.next(), "cap")?.parse().ok()?;
                if tokens.next().is_some() {
                    return None;
                }
                Some(Violation::Congestion {
                    from: NodeId(from.parse().ok()?),
                    to: NodeId(to.parse().ok()?),
                    load,
                    capacity,
                })
            }
            "forged-reject" => {
                let flow = FlowId(field(tokens.next(), "flow")?.parse().ok()?);
                let at = NodeId(field(tokens.next(), "at")?.parse().ok()?);
                let reason = RejectReason::from_token(field(tokens.next(), "reason")?)?;
                if tokens.next().is_some() {
                    return None;
                }
                Some(Violation::ForgedReject { flow, at, reason })
            }
            _ => None,
        }
    }

    /// True for the [`Violation::ForgedReject`] class: a *defense* record
    /// (a lie was caught), not a consistency breach. Survival analysis —
    /// the explorer's "does P4Update stay safe" verdicts — filters on
    /// this: a run whose only violations are forgery rejections kept
    /// every safety property.
    pub fn is_forgery_rejection(&self) -> bool {
        matches!(self, Violation::ForgedReject { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_parse() {
        let cases = vec![
            Violation::Loop {
                flow: FlowId(3),
                cycle: vec![NodeId(1), NodeId(2), NodeId(3)],
            },
            Violation::Blackhole {
                flow: FlowId(0),
                at: NodeId(7),
            },
            Violation::Congestion {
                from: NodeId(0),
                to: NodeId(1),
                load: 3.5,
                capacity: 2.0,
            },
            Violation::ForgedReject {
                flow: FlowId(2),
                at: NodeId(5),
                reason: RejectReason::OutdatedVersion,
            },
        ];
        for v in cases {
            let line = v.to_string();
            assert_eq!(Violation::parse(&line), Some(v), "line: {line}");
        }
    }

    #[test]
    fn encoding_is_pinned() {
        // Committed trace files depend on these exact strings.
        assert_eq!(
            Violation::Loop {
                flow: FlowId(0),
                cycle: vec![NodeId(3), NodeId(1), NodeId(2)],
            }
            .to_string(),
            "loop flow=0 cycle=3>1>2"
        );
        assert_eq!(
            Violation::Blackhole {
                flow: FlowId(1),
                at: NodeId(4),
            }
            .to_string(),
            "blackhole flow=1 at=4"
        );
        assert_eq!(
            Violation::Congestion {
                from: NodeId(0),
                to: NodeId(1),
                load: 3.0,
                capacity: 2.0,
            }
            .to_string(),
            "congestion link=0>1 load=3 cap=2"
        );
        assert_eq!(
            Violation::ForgedReject {
                flow: FlowId(0),
                at: NodeId(3),
                reason: RejectReason::DistanceMismatch,
            }
            .to_string(),
            "forged-reject flow=0 at=3 reason=distance-mismatch"
        );
    }

    #[test]
    fn only_forged_rejects_are_forgery_rejections() {
        assert!(Violation::ForgedReject {
            flow: FlowId(0),
            at: NodeId(3),
            reason: RejectReason::DistanceMismatch,
        }
        .is_forgery_rejection());
        assert!(!Violation::Blackhole {
            flow: FlowId(0),
            at: NodeId(3),
        }
        .is_forgery_rejection());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for s in [
            "",
            "loop",
            "loop flow=x cycle=1>2",
            "loop flow=0 cycle=",
            "blackhole flow=0",
            "blackhole flow=0 at=1 extra",
            "congestion link=01 load=3 cap=2",
            "forged-reject flow=0 at=3",
            "forged-reject flow=0 at=3 reason=meltdown",
            "forged-reject flow=0 at=3 reason=distance-mismatch extra",
            "meltdown flow=0",
        ] {
            assert_eq!(Violation::parse(s), None, "accepted: {s:?}");
        }
    }
}
