//! Local verification: Algorithm 1 (single-layer) and Algorithm 2
//! (dual-layer) as pure functions over the node's UIB snapshot and the
//! incoming UNM.
//!
//! These functions are the heart of the paper: every switch decides
//! *entirely on its own state and the notification's contents* whether
//! applying an update preserves blackhole and loop freedom. The functions
//! are side-effect free; the switch logic interprets the verdict (install,
//! park, drop-and-alarm).

use p4update_dataplane::UibEntry;
use p4update_messages::{RejectReason, Unm, UpdateKind};
use p4update_net::Version;

/// Verdict of a verification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// `VS = 1` in Algorithm 1: apply the staged configuration (after the
    /// congestion check) and continue the chain upstream.
    Accept,
    /// Dual-layer interior acceptance (Alg. 2 lines 9–16): apply, inherit
    /// the UNM's old distance/version, increment the counter.
    AcceptInterior,
    /// Dual-layer gateway acceptance (Alg. 2 lines 17–23): apply, inherit
    /// the UNM's old distance/version.
    AcceptGateway,
    /// Already updated (Alg. 2 lines 24–28): inherit the smaller old
    /// distance and pass the notification upstream without reinstalling.
    PassAlong,
    /// The notification announces a version no UIM has arrived for yet:
    /// park it and resubmit when the UIM arrives (Alg. 1 line 10,
    /// Alg. 2 line 5).
    WaitForUim,
    /// Consistent but not actionable *yet*: dual-layer old-distance gating
    /// unsatisfied (a backward-segment gateway seeing its own segment's
    /// second-layer chain), or a pass-along with nothing new to inherit.
    /// The message is held/dropped without alarming the controller.
    Hold,
    /// Inconsistent: drop the notification and inform the controller
    /// (Alg. 1 lines 8/12, §7.1's design choice).
    Reject(RejectReason),
}

impl Verdict {
    /// True for any of the accepting verdicts.
    pub fn accepts(self) -> bool {
        matches!(
            self,
            Verdict::Accept | Verdict::AcceptInterior | Verdict::AcceptGateway
        )
    }
}

/// Algorithm 1: single-layer verification at a node with UIB snapshot
/// `entry`, for notification `unm`.
pub fn verify_sl(entry: &UibEntry, unm: &Unm) -> Verdict {
    // Lines 9–10: the notification is ahead of our UIM knowledge.
    if unm.v_new > entry.uim_version {
        return Verdict::WaitForUim;
    }
    // Lines 11–12: outdated update.
    if unm.v_new < entry.uim_version {
        return Verdict::Reject(RejectReason::OutdatedVersion);
    }
    // Version matches the highest UIM but the node already applied it: a
    // regenerated chain (§11 loss recovery) — relay it upstream so it can
    // reach the break point; otherwise hold the harmless duplicate.
    if entry.applied_version >= unm.v_new {
        return if entry.applied_version == unm.v_new
            && entry.applied_distance == unm.d_new.wrapping_add(1)
        {
            Verdict::PassAlong
        } else {
            Verdict::Hold
        };
    }
    // Line 5: the sender must be our parent on the new path — its distance
    // exactly one smaller (Fig. 6b: equal distances could loop).
    if entry.uim_distance == unm.d_new.wrapping_add(1) {
        Verdict::Accept
    } else {
        Verdict::Reject(RejectReason::DistanceMismatch)
    }
}

/// Algorithm 2: dual-layer verification.
///
/// Falls back to [`verify_sl`] when either the staged UIM or the UNM is not
/// dual-layer (Alg. 2 lines 2–3).
pub fn verify_dl(entry: &UibEntry, unm: &Unm) -> Verdict {
    if entry.uim_kind != Some(UpdateKind::Dual) || unm.kind != UpdateKind::Dual {
        return verify_sl(entry, unm);
    }
    // Lines 4–7: version alignment against the highest UIM.
    if unm.v_new > entry.uim_version {
        return Verdict::WaitForUim;
    }
    if unm.v_new < entry.uim_version {
        return Verdict::Reject(RejectReason::OutdatedVersion);
    }

    let applied = entry.applied_version;

    // Lines 9–16: nodes inside a segment — lagging more than one version
    // (fresh nodes, or fast-forwarding over skipped versions).
    if Version(applied.0 + 1) < unm.v_new {
        return if entry.uim_distance == unm.d_new.wrapping_add(1) {
            Verdict::AcceptInterior
        } else {
            Verdict::Reject(RejectReason::DistanceMismatch)
        };
    }

    // Lines 17–23: gateway nodes — at exactly the previous version, and the
    // sender reports the same previous version as its old one.
    if Version(applied.0 + 1) == unm.v_new && unm.v_new == Version(unm.v_old.0 + 1) {
        if entry.uim_distance != unm.d_new.wrapping_add(1) {
            return Verdict::Reject(RejectReason::DistanceMismatch);
        }
        if entry.last_update_type == Some(UpdateKind::Dual) {
            // A dual-layer update may not follow a dual-layer update
            // without an intervening single-layer (§7.3, §11).
            return Verdict::Reject(RejectReason::DualAfterDual);
        }
        // The old-distance gate: join only a segment with a smaller
        // segment ID (§3.2's invariant — packets can only get routed
        // closer to the destination).
        return if entry.old_distance > unm.d_old {
            Verdict::AcceptGateway
        } else {
            Verdict::Hold
        };
    }

    // Lines 24–28: already updated to this version — pass inherited old
    // distances upstream.
    if applied == unm.v_new && entry.old_version == unm.v_old {
        if entry.applied_distance != entry.uim_distance
            || entry.uim_distance != unm.d_new.wrapping_add(1)
        {
            return Verdict::Reject(RejectReason::DistanceMismatch);
        }
        return if entry.old_distance > unm.d_old
            || (entry.old_distance == unm.d_old && entry.counter > unm.counter)
        {
            Verdict::PassAlong
        } else {
            Verdict::Hold
        };
    }

    // Any other version relationship (e.g., we already applied something
    // newer) makes the notification outdated.
    Verdict::Reject(RejectReason::OutdatedVersion)
}

/// Dispatch between the two algorithms by message kind, as the data plane
/// does on UNM arrival.
pub fn verify(entry: &UibEntry, unm: &Unm) -> Verdict {
    match unm.kind {
        UpdateKind::Single => verify_sl(entry, unm),
        UpdateKind::Dual => verify_dl(entry, unm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4update_messages::UnmLayer;
    use p4update_net::FlowId;

    /// A node with UIM staged for version 1, distance `d`, nothing applied.
    fn fresh_with_uim(d: u32, kind: UpdateKind) -> UibEntry {
        UibEntry {
            uim_version: Version(1),
            uim_distance: d,
            uim_kind: Some(kind),
            ..UibEntry::default()
        }
    }

    fn unm(v_new: u32, v_old: u32, d_new: u32, d_old: u32, kind: UpdateKind) -> Unm {
        Unm {
            flow: FlowId(0),
            v_new: Version(v_new),
            v_old: Version(v_old),
            d_new,
            d_old,
            counter: 0,
            kind,
            layer: UnmLayer::Intra,
        }
    }

    // ---------- Algorithm 1 (Fig. 6 scenarios) ----------

    #[test]
    fn fig6a_consistent_chain_accepts() {
        // v1 with D_n = 2 receiving from v3 (D_n = 1), both at version 1.
        let entry = fresh_with_uim(2, UpdateKind::Single);
        let m = unm(1, 0, 1, 0, UpdateKind::Single);
        assert_eq!(verify_sl(&entry, &m), Verdict::Accept);
    }

    #[test]
    fn fig6b_distance_error_rejects() {
        // Parent claims the same distance as ours: identical distances can
        // cause a forwarding loop.
        let entry = fresh_with_uim(2, UpdateKind::Single);
        let m = unm(1, 0, 2, 0, UpdateKind::Single);
        assert_eq!(
            verify_sl(&entry, &m),
            Verdict::Reject(RejectReason::DistanceMismatch)
        );
    }

    #[test]
    fn fig6c_version_error_rejects() {
        // Node already has UIM for version 2; a version-1 notification is
        // outdated (falling back could induce loops).
        let entry = UibEntry {
            uim_version: Version(2),
            uim_distance: 2,
            uim_kind: Some(UpdateKind::Single),
            ..UibEntry::default()
        };
        let m = unm(1, 0, 1, 0, UpdateKind::Single);
        assert_eq!(
            verify_sl(&entry, &m),
            Verdict::Reject(RejectReason::OutdatedVersion)
        );
    }

    #[test]
    fn future_version_waits_for_uim() {
        let entry = fresh_with_uim(2, UpdateKind::Single);
        let m = unm(5, 4, 1, 0, UpdateKind::Single);
        assert_eq!(verify_sl(&entry, &m), Verdict::WaitForUim);
    }

    #[test]
    fn no_uim_at_all_waits() {
        let entry = UibEntry::default();
        let m = unm(1, 0, 1, 0, UpdateKind::Single);
        assert_eq!(verify_sl(&entry, &m), Verdict::WaitForUim);
    }

    #[test]
    fn duplicate_for_applied_version_relays_for_recovery() {
        // A regenerated chain (§11) relays through applied nodes...
        let mut entry = fresh_with_uim(2, UpdateKind::Single);
        entry.apply_single();
        let m = unm(1, 0, 1, 0, UpdateKind::Single);
        assert_eq!(verify_sl(&entry, &m), Verdict::PassAlong);
        // ...but a duplicate whose distance does not fit is held, and an
        // older-version duplicate is rejected upstream of this check.
        let misfit = unm(1, 0, 2, 0, UpdateKind::Single);
        assert_eq!(verify_sl(&entry, &misfit), Verdict::Hold);
    }

    #[test]
    fn fast_forward_skips_intermediate_version() {
        // §4.2: node at applied version 1 receives UIM v3 and then the v3
        // notification while v2 is still in flight — accept v3 directly.
        let entry = UibEntry {
            uim_version: Version(3),
            uim_distance: 4,
            uim_kind: Some(UpdateKind::Single),
            applied_version: Version(1),
            applied_distance: 2,
            old_version: Version(1),
            old_distance: 2,
            ..UibEntry::default()
        };
        let m3 = unm(3, 2, 3, 1, UpdateKind::Single);
        assert_eq!(verify_sl(&entry, &m3), Verdict::Accept);
        // The late v2 notification is rejected as outdated.
        let m2 = unm(2, 1, 3, 2, UpdateKind::Single);
        assert_eq!(
            verify_sl(&entry, &m2),
            Verdict::Reject(RejectReason::OutdatedVersion)
        );
    }

    // ---------- Algorithm 2 (Fig. 1 walkthrough) ----------

    /// Fig. 1, version 2 dual-layer update. Gateways hold version-1 state
    /// with their old-path distances as old distances.
    fn gateway(uim_distance: u32, old_distance: u32) -> UibEntry {
        UibEntry {
            uim_version: Version(2),
            uim_distance,
            uim_kind: Some(UpdateKind::Dual),
            applied_version: Version(1),
            applied_distance: old_distance,
            old_version: Version(1),
            old_distance,
            last_update_type: Some(UpdateKind::Single),
            ..UibEntry::default()
        }
    }

    fn dl_unm(v_old: u32, d_new: u32, d_old: u32) -> Unm {
        unm(2, v_old, d_new, d_old, UpdateKind::Dual)
    }

    #[test]
    fn interior_node_accepts_and_will_inherit() {
        // v6 (fresh, D_n = 1) receiving the second-layer UNM from v7
        // (D_n = 0, D_o = 0).
        let entry = UibEntry {
            uim_version: Version(2),
            uim_distance: 1,
            uim_kind: Some(UpdateKind::Dual),
            ..UibEntry::default()
        };
        assert_eq!(verify_dl(&entry, &dl_unm(1, 0, 0)), Verdict::AcceptInterior);
    }

    #[test]
    fn interior_distance_mismatch_rejects() {
        let entry = UibEntry {
            uim_version: Version(2),
            uim_distance: 3,
            uim_kind: Some(UpdateKind::Dual),
            ..UibEntry::default()
        };
        assert_eq!(
            verify_dl(&entry, &dl_unm(1, 0, 0)),
            Verdict::Reject(RejectReason::DistanceMismatch)
        );
    }

    #[test]
    fn forward_gateway_accepts_smaller_segment_id() {
        // v4: D_n = 3 on the new path, old distance 2. Second-layer UNM
        // from its segment (via v5) carries d_old = 0 (v7's). 2 > 0 → flip.
        let entry = gateway(3, 2);
        assert_eq!(verify_dl(&entry, &dl_unm(1, 2, 0)), Verdict::AcceptGateway);
    }

    #[test]
    fn backward_gateway_holds_on_larger_segment_id() {
        // v2: D_n = 5 on the new path, old distance 1. Its segment's
        // second-layer chain (started by v4 before inheriting) carries
        // d_old = 2. 1 > 2 is false → hold, wait for the first layer.
        let entry = gateway(5, 1);
        assert_eq!(verify_dl(&entry, &dl_unm(1, 4, 2)), Verdict::Hold);
    }

    #[test]
    fn backward_gateway_accepts_after_inheritance() {
        // Later the first-layer UNM arrives via v3 carrying the inherited
        // d_old = 0: 1 > 0 → flip.
        let entry = gateway(5, 1);
        assert_eq!(verify_dl(&entry, &dl_unm(1, 4, 0)), Verdict::AcceptGateway);
    }

    #[test]
    fn dual_after_dual_rejects() {
        let mut entry = gateway(3, 2);
        entry.last_update_type = Some(UpdateKind::Dual);
        assert_eq!(
            verify_dl(&entry, &dl_unm(1, 2, 0)),
            Verdict::Reject(RejectReason::DualAfterDual)
        );
    }

    #[test]
    fn updated_node_passes_smaller_old_distance_along() {
        // A node already flipped to version 2 with inherited old distance 2
        // sees the first-layer UNM carrying d_old = 0: inherit and forward.
        let entry = UibEntry {
            uim_version: Version(2),
            uim_distance: 4,
            uim_kind: Some(UpdateKind::Dual),
            applied_version: Version(2),
            applied_distance: 4,
            old_version: Version(1),
            old_distance: 2,
            last_update_type: Some(UpdateKind::Dual),
            counter: 1,
            ..UibEntry::default()
        };
        assert_eq!(verify_dl(&entry, &dl_unm(1, 3, 0)), Verdict::PassAlong);
        // Nothing new to inherit (same old distance, counter not smaller)
        // → hold.
        let mut dup = dl_unm(1, 3, 2);
        dup.counter = 1;
        assert_eq!(verify_dl(&entry, &dup), Verdict::Hold);
    }

    #[test]
    fn counter_breaks_equal_old_distance_ties() {
        let entry = UibEntry {
            uim_version: Version(2),
            uim_distance: 4,
            uim_kind: Some(UpdateKind::Dual),
            applied_version: Version(2),
            applied_distance: 4,
            old_version: Version(1),
            old_distance: 2,
            last_update_type: Some(UpdateKind::Dual),
            counter: 5,
            ..UibEntry::default()
        };
        let mut m = dl_unm(1, 3, 2);
        m.counter = 3; // same d_old, smaller counter → pass along
        assert_eq!(verify_dl(&entry, &m), Verdict::PassAlong);
        m.counter = 5; // not smaller → hold
        assert_eq!(verify_dl(&entry, &m), Verdict::Hold);
    }

    #[test]
    fn dl_falls_back_to_sl_for_single_layer_messages() {
        let entry = fresh_with_uim(2, UpdateKind::Single);
        let m = unm(1, 0, 1, 0, UpdateKind::Dual);
        // UIM is single-layer → Alg. 1 path (accepts: distance fits).
        assert_eq!(verify_dl(&entry, &m), Verdict::Accept);
    }

    #[test]
    fn dl_version_waiting_and_outdated() {
        let entry = gateway(3, 2);
        let future = unm(7, 6, 2, 0, UpdateKind::Dual);
        assert_eq!(verify_dl(&entry, &future), Verdict::WaitForUim);
        let mut stale_entry = gateway(3, 2);
        stale_entry.uim_version = Version(5);
        let stale = unm(2, 1, 2, 0, UpdateKind::Dual);
        assert_eq!(
            verify_dl(&stale_entry, &stale),
            Verdict::Reject(RejectReason::OutdatedVersion)
        );
    }

    #[test]
    fn dl_fast_forward_treats_lagging_gateway_as_interior() {
        // A node two versions behind receiving a consistent dual-layer
        // notification for the staged version updates interior-style.
        let entry = UibEntry {
            uim_version: Version(4),
            uim_distance: 2,
            uim_kind: Some(UpdateKind::Dual),
            applied_version: Version(1),
            applied_distance: 1,
            old_version: Version(1),
            old_distance: 1,
            last_update_type: Some(UpdateKind::Single),
            ..UibEntry::default()
        };
        let m = unm(4, 3, 1, 0, UpdateKind::Dual);
        assert_eq!(verify_dl(&entry, &m), Verdict::AcceptInterior);
    }

    #[test]
    fn verdict_accepts_helper() {
        assert!(Verdict::Accept.accepts());
        assert!(Verdict::AcceptInterior.accepts());
        assert!(Verdict::AcceptGateway.accepts());
        assert!(!Verdict::PassAlong.accepts());
        assert!(!Verdict::Hold.accepts());
        assert!(!Verdict::WaitForUim.accepts());
        assert!(!Verdict::Reject(RejectReason::DistanceMismatch).accepts());
    }

    #[test]
    fn dispatch_routes_by_kind() {
        let entry = fresh_with_uim(2, UpdateKind::Single);
        let m = unm(1, 0, 1, 0, UpdateKind::Single);
        assert_eq!(verify(&entry, &m), verify_sl(&entry, &m));
        let entry = gateway(3, 2);
        let m = dl_unm(1, 2, 0);
        assert_eq!(verify(&entry, &m), verify_dl(&entry, &m));
    }
}
