//! # p4update-core
//!
//! The P4Update framework (Zhou et al., CoNEXT '21): fast, locally
//! verifiable consistent network updates in the data plane.
//!
//! The crate is organized along the paper's structure:
//!
//! - [`label`] — distance/version label computation (§3): the distributed
//!   proof the controller attaches to each update.
//! - [`segment`] — gateway detection and forward/backward segment
//!   classification for the dual-layer mechanism (§3.2).
//! - [`verify`] — Algorithms 1 and 2 as pure functions: each switch
//!   locally decides whether applying an update preserves blackhole and
//!   loop freedom (§7.1).
//! - [`congestion`] — the local, dynamic inter-flow dependency scheduler
//!   (§7.4): per-link wait queues and priority raising, entirely in the
//!   data plane.
//! - [`switch_logic`] — the complete data-plane protocol (§7.2, §8,
//!   Appendix B), plugged into the `p4update-dataplane` chassis.
//! - [`controller`] — the control plane (§6): flow database, update
//!   preparation (the Fig. 8 measurement target), strategy choice (§7.5),
//!   feedback handling.
//! - [`violation`] — the three safety properties' violation reports, with
//!   the stable text encoding the explorer's trace corpus relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod congestion;
pub mod controller;
pub mod label;
pub mod segment;
pub mod switch_logic;
pub mod verify;
pub mod violation;

pub use congestion::{Admission, BlockReason, CongestionScheduler};
pub use controller::{
    prepare_batch, prepare_update, P4UpdateController, PreparedUpdate, Strategy, SL_NODE_THRESHOLD,
};
pub use label::{label_path, old_distances, uim_for, NodeLabel};
pub use segment::{segment_update, Segment, SegmentDir, Segmentation};
pub use switch_logic::{P4UpdateCounters, P4UpdateLogic};
pub use verify::{verify, verify_dl, verify_sl, Verdict};
pub use violation::Violation;
