//! Distance/version label computation (§3).
//!
//! For each node on the new flow path the control plane computes the
//! verification content of its UIM: the new version number, the node's
//! distance to the egress on the new path (`D_n`), the new next hop, and
//! the upstream neighbor for the UNM clone session. These labels form the
//! distributed proof the switches verify locally.

use p4update_messages::{Uim, UpdateKind};
use p4update_net::{FlowUpdate, NodeId, Version};

/// The labels of one node for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeLabel {
    /// The labeled node.
    pub node: NodeId,
    /// Hop distance to the egress on the new path (`D_n`).
    pub new_distance: u32,
    /// Next hop on the new path; `None` at the egress.
    pub next_hop: Option<NodeId>,
    /// Predecessor on the new path; `None` at the ingress.
    pub upstream: Option<NodeId>,
}

/// Compute the labels of every node on the update's new path, egress first.
///
/// Egress-first order matches the update direction (backward from egress to
/// ingress, §3.1) and makes `labels[0]` the node that starts the chain.
pub fn label_path(update: &FlowUpdate) -> Vec<NodeLabel> {
    let nodes = update.new_path.nodes();
    let mut labels: Vec<NodeLabel> = nodes
        .iter()
        .enumerate()
        .map(|(i, &node)| NodeLabel {
            node,
            new_distance: (nodes.len() - 1 - i) as u32,
            next_hop: nodes.get(i + 1).copied(),
            upstream: if i == 0 { None } else { Some(nodes[i - 1]) },
        })
        .collect();
    labels.reverse();
    labels
}

/// Build the UIM for one labeled node (§6: "the control plane ... decides
/// the update and verification contents, e.g., distance, for each flow and
/// encapsulates them into the UIM").
pub fn uim_for(update: &FlowUpdate, label: &NodeLabel, version: Version, kind: UpdateKind) -> Uim {
    Uim {
        flow: update.flow,
        version,
        new_distance: label.new_distance,
        flow_size: update.size,
        next_hop: label.next_hop,
        upstream: label.upstream,
        kind,
    }
}

/// Distances on the *old* path, used by tests and by the segmentation
/// module: hop distance to the old egress for each old-path node.
pub fn old_distances(update: &FlowUpdate) -> Vec<(NodeId, u32)> {
    match &update.old_path {
        None => Vec::new(),
        Some(old) => old
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, (old.nodes().len() - 1 - i) as u32))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4update_net::{FlowId, Path};

    fn path(ids: &[u32]) -> Path {
        Path::new(ids.iter().map(|&i| NodeId(i)).collect())
    }

    fn fig1_update() -> FlowUpdate {
        FlowUpdate::new(
            FlowId(0),
            Some(path(&[0, 4, 2, 7])),
            path(&[0, 1, 2, 3, 4, 5, 6, 7]),
            1.0,
        )
    }

    #[test]
    fn labels_match_fig1() {
        // Paper §3: D_n(v0) = 7, D_n(v1) = 6, ..., D_n(v7) = 0.
        let labels = label_path(&fig1_update());
        assert_eq!(labels.len(), 8);
        // Egress first.
        assert_eq!(labels[0].node, NodeId(7));
        assert_eq!(labels[0].new_distance, 0);
        assert_eq!(labels[0].next_hop, None);
        assert_eq!(labels[0].upstream, Some(NodeId(6)));
        // Ingress last.
        let ingress = labels.last().unwrap();
        assert_eq!(ingress.node, NodeId(0));
        assert_eq!(ingress.new_distance, 7);
        assert_eq!(ingress.next_hop, Some(NodeId(1)));
        assert_eq!(ingress.upstream, None);
        // Each hop's distance is one more than its parent's.
        for w in labels.windows(2) {
            assert_eq!(w[1].new_distance, w[0].new_distance + 1);
            assert_eq!(w[1].next_hop, Some(w[0].node));
            assert_eq!(w[0].upstream, Some(w[1].node));
        }
    }

    #[test]
    fn old_distances_match_fig1() {
        // Paper §3.2: segment IDs (old distances): v7 = 0, v2 = 1, v4 = 2,
        // v0 = 3.
        let d = old_distances(&fig1_update());
        assert_eq!(
            d,
            vec![
                (NodeId(0), 3),
                (NodeId(4), 2),
                (NodeId(2), 1),
                (NodeId(7), 0)
            ]
        );
    }

    #[test]
    fn old_distances_empty_for_fresh_flow() {
        let u = FlowUpdate::new(FlowId(0), None, path(&[0, 1]), 1.0);
        assert!(old_distances(&u).is_empty());
    }

    #[test]
    fn uim_carries_label_and_metadata() {
        let u = fig1_update();
        let labels = label_path(&u);
        let uim = uim_for(&u, &labels[1], Version(2), UpdateKind::Dual);
        assert_eq!(uim.flow, FlowId(0));
        assert_eq!(uim.version, Version(2));
        assert_eq!(uim.new_distance, 1);
        assert_eq!(uim.next_hop, Some(NodeId(7)));
        assert_eq!(uim.upstream, Some(NodeId(5)));
        assert_eq!(uim.kind, UpdateKind::Dual);
        assert_eq!(uim.flow_size, 1.0);
    }

    #[test]
    fn two_node_path_labels() {
        let u = FlowUpdate::new(FlowId(1), None, path(&[3, 9]), 0.5);
        let labels = label_path(&u);
        assert_eq!(labels.len(), 2);
        assert_eq!(labels[0].node, NodeId(9));
        assert_eq!(labels[0].upstream, Some(NodeId(3)));
        assert_eq!(labels[1].node, NodeId(3));
        assert_eq!(labels[1].next_hop, Some(NodeId(9)));
        assert_eq!(labels[1].upstream, None);
    }
}
