//! Path segmentation for the dual-layer mechanism (§3.2).
//!
//! Gateway nodes are the nodes shared between the old path `P_o` and the new
//! path `P_n`; they cut the new path into segments. A segment is *forward*
//! when it does not increase the distance to the egress w.r.t. the old
//! path's distances (its ingress gateway's old distance is larger than its
//! egress gateway's) and can update independently; a *backward* segment
//! increases that distance and must wait for downstream segments (gated by
//! the inherited old distances at runtime).

use p4update_net::{FlowUpdate, NodeId};

/// Direction class of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentDir {
    /// Cannot create a loop; updates independently.
    Forward,
    /// Potential loop; waits on downstream segments.
    Backward,
}

/// One segment of a dual-layer update: the new-path stretch between two
/// consecutive gateway nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Gateway closer to the global ingress (flips last in this segment).
    pub ingress_gateway: NodeId,
    /// Gateway closer to the global egress (initiates the segment's
    /// second-layer chain).
    pub egress_gateway: NodeId,
    /// Interior nodes between the gateways, in new-path order (may be
    /// empty when the gateways are adjacent on the new path).
    pub interior: Vec<NodeId>,
    /// Old distance of the ingress gateway (`D_o`, the "segment ID" of the
    /// paper's intuition).
    pub ingress_old_distance: u32,
    /// Old distance of the egress gateway.
    pub egress_old_distance: u32,
}

impl Segment {
    /// The segment's direction class: backward iff joining the egress
    /// gateway's segment would move the ingress gateway *away* from the
    /// egress in old-distance terms.
    pub fn direction(&self) -> SegmentDir {
        if self.ingress_old_distance > self.egress_old_distance {
            SegmentDir::Forward
        } else {
            SegmentDir::Backward
        }
    }

    /// All nodes of the segment in new-path order (ingress gateway first).
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v = vec![self.ingress_gateway];
        v.extend(&self.interior);
        v.push(self.egress_gateway);
        v
    }
}

/// The result of segmenting an update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segmentation {
    /// Gateway nodes in new-path order, ingress first (paper: the set `G`).
    pub gateways: Vec<NodeId>,
    /// Segments in new-path order, ingress-most first.
    pub segments: Vec<Segment>,
}

impl Segmentation {
    /// Number of backward segments.
    pub fn backward_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| s.direction() == SegmentDir::Backward)
            .count()
    }

    /// True when every segment is forward.
    pub fn forward_only(&self) -> bool {
        self.backward_count() == 0
    }

    /// Whether `node` is a gateway.
    pub fn is_gateway(&self, node: NodeId) -> bool {
        self.gateways.contains(&node)
    }
}

/// Segment an update: find the gateways (nodes on both paths, in new-path
/// order) and the segments between consecutive gateways.
///
/// For an initial deployment (no old path) the result has the whole new
/// path as a single segment between ingress and egress — which both count
/// as gateways by convention (they are shared by definition).
pub fn segment_update(update: &FlowUpdate) -> Segmentation {
    let new_nodes = update.new_path.nodes();
    let old_dist: Vec<(NodeId, u32)> = crate::label::old_distances(update);
    let on_old = |n: NodeId| old_dist.iter().find(|&&(m, _)| m == n).map(|&(_, d)| d);

    // Gateways: nodes of the new path that also lie on the old path.
    // Ingress and egress are always shared (the update model requires it).
    let mut gateways: Vec<(NodeId, u32)> = Vec::new();
    for &n in new_nodes {
        if let Some(d) = on_old(n) {
            gateways.push((n, d));
        } else if update.old_path.is_none()
            && (n == update.new_path.ingress() || n == update.new_path.egress())
        {
            // Fresh deployment: endpoints act as gateways with synthetic
            // old distances (ingress "far", egress 0).
            let d = if n == update.new_path.egress() {
                0
            } else {
                u32::MAX
            };
            gateways.push((n, d));
        }
    }

    let mut segments = Vec::new();
    for w in gateways.windows(2) {
        let (g_in, d_in) = w[0];
        let (g_out, d_out) = w[1];
        let i_in = update.new_path.position(g_in).expect("gateway on new path");
        let i_out = update
            .new_path
            .position(g_out)
            .expect("gateway on new path");
        let interior = new_nodes[i_in + 1..i_out].to_vec();
        segments.push(Segment {
            ingress_gateway: g_in,
            egress_gateway: g_out,
            interior,
            ingress_old_distance: d_in,
            egress_old_distance: d_out,
        });
    }

    Segmentation {
        gateways: gateways.into_iter().map(|(n, _)| n).collect(),
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4update_net::{FlowId, FlowUpdate, Path};

    fn path(ids: &[u32]) -> Path {
        Path::new(ids.iter().map(|&i| NodeId(i)).collect())
    }

    fn fig1_update() -> FlowUpdate {
        FlowUpdate::new(
            FlowId(0),
            Some(path(&[0, 4, 2, 7])),
            path(&[0, 1, 2, 3, 4, 5, 6, 7]),
            1.0,
        )
    }

    #[test]
    fn fig1_gateways_match_the_paper() {
        // §3.2: G = {v0, v2, v4, v7} (in new-path order).
        let seg = segment_update(&fig1_update());
        assert_eq!(
            seg.gateways,
            vec![NodeId(0), NodeId(2), NodeId(4), NodeId(7)]
        );
    }

    #[test]
    fn fig1_segments_match_the_paper() {
        // §3.2: {v0,v1,v2} forward, {v2,v3,v4} backward, {v4,v5,v6,v7}
        // forward.
        let seg = segment_update(&fig1_update());
        assert_eq!(seg.segments.len(), 3);

        let s0 = &seg.segments[0];
        assert_eq!(s0.nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(s0.direction(), SegmentDir::Forward);
        assert_eq!((s0.ingress_old_distance, s0.egress_old_distance), (3, 1));

        let s1 = &seg.segments[1];
        assert_eq!(s1.nodes(), vec![NodeId(2), NodeId(3), NodeId(4)]);
        assert_eq!(s1.direction(), SegmentDir::Backward);
        assert_eq!((s1.ingress_old_distance, s1.egress_old_distance), (1, 2));

        let s2 = &seg.segments[2];
        assert_eq!(s2.nodes(), vec![NodeId(4), NodeId(5), NodeId(6), NodeId(7)]);
        assert_eq!(s2.direction(), SegmentDir::Forward);

        assert_eq!(seg.backward_count(), 1);
        assert!(!seg.forward_only());
        assert!(seg.is_gateway(NodeId(2)));
        assert!(!seg.is_gateway(NodeId(3)));
    }

    #[test]
    fn identical_paths_are_all_gateways() {
        let u = FlowUpdate::new(FlowId(0), Some(path(&[0, 1, 2])), path(&[0, 1, 2]), 1.0);
        let seg = segment_update(&u);
        assert_eq!(seg.gateways.len(), 3);
        assert_eq!(seg.segments.len(), 2);
        assert!(seg.segments.iter().all(|s| s.interior.is_empty()));
        assert!(seg.forward_only());
    }

    #[test]
    fn disjoint_detour_is_one_forward_segment() {
        let u = FlowUpdate::new(FlowId(0), Some(path(&[0, 1, 5])), path(&[0, 2, 3, 5]), 1.0);
        let seg = segment_update(&u);
        assert_eq!(seg.gateways, vec![NodeId(0), NodeId(5)]);
        assert_eq!(seg.segments.len(), 1);
        let s = &seg.segments[0];
        assert_eq!(s.interior, vec![NodeId(2), NodeId(3)]);
        assert_eq!(s.direction(), SegmentDir::Forward);
    }

    #[test]
    fn fresh_deployment_is_a_single_segment() {
        let u = FlowUpdate::new(FlowId(0), None, path(&[0, 2, 3, 5]), 1.0);
        let seg = segment_update(&u);
        assert_eq!(seg.gateways, vec![NodeId(0), NodeId(5)]);
        assert_eq!(seg.segments.len(), 1);
        assert_eq!(seg.segments[0].direction(), SegmentDir::Forward);
    }

    #[test]
    fn reversal_creates_backward_segment() {
        // Old: 0 -> 1 -> 2 -> 3. New visits 2 before 1: 0 -> 2 -> 1 -> 3
        // would revisit old nodes in reversed order; use interior detours.
        let u = FlowUpdate::new(
            FlowId(0),
            Some(path(&[0, 1, 2, 3])),
            path(&[0, 4, 2, 5, 1, 6, 3]),
            1.0,
        );
        let seg = segment_update(&u);
        assert_eq!(
            seg.gateways,
            vec![NodeId(0), NodeId(2), NodeId(1), NodeId(3)]
        );
        let dirs: Vec<SegmentDir> = seg.segments.iter().map(super::Segment::direction).collect();
        // 0(d=3) -> 2(d=1): forward; 2(d=1) -> 1(d=2): backward;
        // 1(d=2) -> 3(d=0): forward.
        assert_eq!(
            dirs,
            vec![
                SegmentDir::Forward,
                SegmentDir::Backward,
                SegmentDir::Forward
            ]
        );
    }

    #[test]
    fn segment_nodes_cover_new_path_exactly() {
        let u = fig1_update();
        let seg = segment_update(&u);
        let mut covered = vec![seg.segments[0].ingress_gateway];
        for s in &seg.segments {
            covered.extend(&s.interior);
            covered.push(s.egress_gateway);
        }
        assert_eq!(covered, u.new_path.nodes());
    }
}
