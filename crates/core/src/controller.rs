//! The P4Update control plane (§6, §8): flow database, network information
//! base, update preparation (distance labeling + segmentation + mechanism
//! choice), UIM generation, and feedback handling.
//!
//! The preparation path is a pure function ([`prepare_update`] /
//! [`prepare_batch`]) so the Fig. 8 experiment can time exactly the work
//! the controller does per update — the paper's point being that P4Update
//! needs *no* congestion dependency computation here, unlike ez-Segway.

use crate::label::{label_path, uim_for};
use crate::segment::{segment_update, Segmentation};
use p4update_dataplane::{ControllerLogic, CtrlEffect};
use p4update_des::SimTime;
use p4update_messages::{Message, Ufm, UfmStatus, Uim, UpdateKind};
use p4update_net::{FlowId, FlowUpdate, NodeId, Version};
use std::collections::BTreeMap;

/// The §7.5 deployment strategy: single-layer for updates that install new
/// rules on few nodes in forward-only segmentations, dual-layer otherwise.
/// "Few" is the paper's threshold of five nodes to update.
pub const SL_NODE_THRESHOLD: usize = 5;

/// Which mechanism the controller picks for an update (§7.5), with an
/// override for experiments that force one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// The §7.5 rule: SL for forward-only updates touching at most
    /// [`SL_NODE_THRESHOLD`] nodes, DL otherwise.
    #[default]
    Auto,
    /// Always single-layer.
    ForceSingle,
    /// Always dual-layer.
    ForceDual,
}

impl Strategy {
    /// Resolve the mechanism for one update.
    pub fn choose(self, update: &FlowUpdate, seg: &Segmentation) -> UpdateKind {
        match self {
            Strategy::ForceSingle => UpdateKind::Single,
            Strategy::ForceDual => UpdateKind::Dual,
            Strategy::Auto => {
                let nodes_to_update = update.new_path.nodes().len();
                if seg.forward_only() && nodes_to_update <= SL_NODE_THRESHOLD {
                    UpdateKind::Single
                } else {
                    UpdateKind::Dual
                }
            }
        }
    }
}

/// The prepared configuration for one flow update: the per-switch UIMs plus
/// the metadata the controller records.
///
/// `PartialEq` (not `Eq`, because flow sizes are `f64`) lets incremental
/// analysis diff successive batches plan-by-plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedUpdate {
    /// Flow being updated.
    pub flow: FlowId,
    /// The update request this plan was prepared from (kept so static
    /// analysis can re-derive the expected labels and segmentation).
    pub update: FlowUpdate,
    /// Version assigned to the new configuration.
    pub version: Version,
    /// Chosen mechanism.
    pub kind: UpdateKind,
    /// The segmentation (computed for the mechanism choice; DL updates rely
    /// on it implicitly through the data plane's old distances).
    pub segmentation: Segmentation,
    /// `(switch, UIM)` pairs to push, egress first (the egress starts the
    /// chain, so its indication matters most under in-flight loss).
    pub uims: Vec<(NodeId, Uim)>,
}

/// Prepare one flow update: label the new path, segment it, choose the
/// mechanism, and build all UIMs. This is the complete control-plane
/// computation P4Update needs per update.
pub fn prepare_update(update: &FlowUpdate, version: Version, strategy: Strategy) -> PreparedUpdate {
    let seg = segment_update(update);
    let kind = strategy.choose(update, &seg);
    let labels = label_path(update);
    let uims = labels
        .iter()
        .map(|l| (l.node, uim_for(update, l, version, kind)))
        .collect();
    PreparedUpdate {
        flow: update.flow,
        update: update.clone(),
        version,
        kind,
        segmentation: seg,
        uims,
    }
}

/// Prepare a batch of updates (the Fig. 8 measurement unit). Versions are
/// provided per flow by the caller.
pub fn prepare_batch(updates: &[(FlowUpdate, Version)], strategy: Strategy) -> Vec<PreparedUpdate> {
    updates
        .iter()
        .map(|(u, v)| prepare_update(u, *v, strategy))
        .collect()
}

/// Per-flow record in the controller's flow database.
#[derive(Debug, Clone)]
struct FlowRecord {
    version: Version,
    /// Version awaiting a success UFM, if any.
    pending: Option<Version>,
}

/// Maximum recovery re-triggers per pending update (§11). Each retry only
/// needs to advance the chain past one more loss, so the budget is sized
/// for heavy loss rates on long paths.
pub const MAX_RETRIES: u32 = 25;

/// The P4Update controller.
pub struct P4UpdateController {
    strategy: Strategy,
    flows: BTreeMap<FlowId, FlowRecord>,
    /// The Network Information Base: the controller's topology view, used
    /// to set up paths for flows reported via FRM (§6). Optional — update
    /// scenarios that pre-install flows do not need it.
    nib: Option<p4update_net::Topology>,
    /// UIMs of in-flight updates, kept for loss recovery (§11).
    pending_uims: BTreeMap<FlowId, Vec<(NodeId, Message)>>,
    retries: BTreeMap<FlowId, u32>,
    /// Default size bound assigned to flows set up from FRMs.
    pub default_flow_size: f64,
    /// Completed `(flow, version)` updates, for the harness to inspect.
    pub completed: Vec<(FlowId, Version)>,
    /// Alarms received, for the harness to inspect.
    pub alarms: Vec<Ufm>,
}

impl P4UpdateController {
    /// Controller with the given mechanism strategy.
    pub fn new(strategy: Strategy) -> Self {
        P4UpdateController {
            strategy,
            flows: BTreeMap::new(),
            nib: None,
            pending_uims: BTreeMap::new(),
            retries: BTreeMap::new(),
            default_flow_size: 1.0,
            completed: Vec::new(),
            alarms: Vec::new(),
        }
    }

    /// Attach the Network Information Base, enabling path setup for flows
    /// reported through FRMs.
    pub fn with_nib(mut self, topo: p4update_net::Topology) -> Self {
        self.nib = Some(topo);
        self
    }

    /// Register a flow at an already-deployed version (scenario bootstrap:
    /// the old configuration is in place before the experiment starts).
    pub fn register_flow(&mut self, flow: FlowId, version: Version) {
        self.flows.insert(
            flow,
            FlowRecord {
                version,
                pending: None,
            },
        );
    }

    /// The next version number for a flow: one past the newest version
    /// ever issued, whether acknowledged or still in flight (a new
    /// configuration may be pushed while the previous update is ongoing —
    /// the fast-forward case of §4.2).
    pub fn next_version(&self, flow: FlowId) -> Version {
        self.flows.get(&flow).map_or(Version(1), |r| {
            r.version.max(r.pending.unwrap_or(Version::NONE)).next()
        })
    }

    /// Current version of a flow, if known.
    pub fn current_version(&self, flow: FlowId) -> Option<Version> {
        self.flows.get(&flow).map(|r| r.version)
    }

    /// Recovery retries spent for a flow (diagnostics).
    pub fn retries_of(&self, flow: FlowId) -> u32 {
        self.retries.get(&flow).copied().unwrap_or(0)
    }

    /// Whether any flow still has an unacknowledged update.
    pub fn has_pending(&self) -> bool {
        self.flows.values().any(|r| r.pending.is_some())
    }

    /// The mechanism strategy this controller prepares updates with.
    /// Exposed so a harness can re-prepare a plan outside the controller
    /// (e.g. the simulator's debug analysis gate).
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }
}

impl ControllerLogic for P4UpdateController {
    fn start_update(&mut self, _now: SimTime, updates: &[FlowUpdate], out: &mut Vec<CtrlEffect>) {
        for update in updates {
            let version = self.next_version(update.flow);
            let prepared = prepare_update(update, version, self.strategy);
            let rec = self.flows.entry(update.flow).or_insert(FlowRecord {
                version: Version::NONE,
                pending: None,
            });
            rec.pending = Some(version);
            let msgs: Vec<(NodeId, Message)> = prepared
                .uims
                .into_iter()
                .map(|(node, uim)| (node, Message::Uim(uim)))
                .collect();
            self.pending_uims.insert(update.flow, msgs.clone());
            self.retries.insert(update.flow, 0);
            for (node, msg) in msgs {
                out.push(CtrlEffect::Send { to: node, msg });
            }
        }
    }

    fn on_message(
        &mut self,
        _now: SimTime,
        _from: NodeId,
        msg: Message,
        out: &mut Vec<CtrlEffect>,
    ) {
        match msg {
            Message::Ufm(ufm) => match ufm.status {
                UfmStatus::Success => {
                    if let Some(rec) = self.flows.get_mut(&ufm.flow) {
                        if rec.pending == Some(ufm.version) {
                            rec.pending = None;
                            self.pending_uims.remove(&ufm.flow);
                            self.retries.remove(&ufm.flow);
                        }
                        if ufm.version > rec.version {
                            rec.version = ufm.version;
                        }
                    }
                    self.completed.push((ufm.flow, ufm.version));
                    out.push(CtrlEffect::UpdateComplete {
                        flow: ufm.flow,
                        version: ufm.version,
                    });
                }
                UfmStatus::Alarm(reason) => {
                    self.alarms.push(ufm);
                    out.push(CtrlEffect::AlarmRaised {
                        flow: ufm.flow,
                        reason,
                    });
                }
            },
            Message::Frm(frm) => {
                // A new flow emerged in the data plane (§6): compute its
                // initial route from the NIB and deploy it as a fresh
                // single-layer update, from scratch (blackhole-free:
                // rules install from the egress upstream).
                if self.flows.contains_key(&frm.flow) {
                    return; // already known (duplicate report)
                }
                let Some(topo) = &self.nib else {
                    return; // no topology view: ignore reports
                };
                let Some(path) = p4update_net::shortest_path(topo, frm.ingress, frm.egress) else {
                    return;
                };
                let update = FlowUpdate::new(frm.flow, None, path, self.default_flow_size);
                self.start_update(_now, &[update], out);
            }
            _ => {}
        }
    }

    /// Loss recovery (§11): while an update's feedback is outstanding,
    /// re-push its indications; the egress regenerates the notification
    /// chain on the duplicate. Gives up after [`MAX_RETRIES`].
    fn on_timer(&mut self, _now: SimTime, out: &mut Vec<CtrlEffect>) -> bool {
        let mut any_pending = false;
        let flows: Vec<FlowId> = self.pending_uims.keys().copied().collect();
        for flow in flows {
            let retries = self.retries.entry(flow).or_insert(0);
            if *retries >= MAX_RETRIES {
                continue;
            }
            *retries += 1;
            any_pending = true;
            for (node, msg) in self.pending_uims.get(&flow).into_iter().flatten() {
                out.push(CtrlEffect::Send {
                    to: *node,
                    msg: msg.clone(),
                });
            }
        }
        any_pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4update_net::Path;

    fn path(ids: &[u32]) -> Path {
        Path::new(ids.iter().map(|&i| NodeId(i)).collect())
    }

    fn fig1_update() -> FlowUpdate {
        FlowUpdate::new(
            FlowId(0),
            Some(path(&[0, 4, 2, 7])),
            path(&[0, 1, 2, 3, 4, 5, 6, 7]),
            1.0,
        )
    }

    #[test]
    fn auto_strategy_picks_dl_for_fig1() {
        // Backward segment present → dual-layer.
        let u = fig1_update();
        let seg = segment_update(&u);
        assert_eq!(Strategy::Auto.choose(&u, &seg), UpdateKind::Dual);
    }

    #[test]
    fn auto_strategy_picks_sl_for_small_forward_detour() {
        let u = FlowUpdate::new(FlowId(0), Some(path(&[0, 1, 5])), path(&[0, 2, 3, 5]), 1.0);
        let seg = segment_update(&u);
        assert_eq!(Strategy::Auto.choose(&u, &seg), UpdateKind::Single);
    }

    #[test]
    fn auto_strategy_picks_dl_for_long_forward_path() {
        // Forward-only but more than five nodes to update.
        let u = FlowUpdate::new(
            FlowId(0),
            Some(path(&[0, 9, 7])),
            path(&[0, 1, 2, 3, 4, 5, 7]),
            1.0,
        );
        let seg = segment_update(&u);
        assert!(seg.forward_only());
        assert_eq!(Strategy::Auto.choose(&u, &seg), UpdateKind::Dual);
    }

    #[test]
    fn forced_strategies_override() {
        let u = fig1_update();
        let seg = segment_update(&u);
        assert_eq!(Strategy::ForceSingle.choose(&u, &seg), UpdateKind::Single);
        assert_eq!(Strategy::ForceDual.choose(&u, &seg), UpdateKind::Dual);
    }

    #[test]
    fn prepare_builds_uims_egress_first() {
        let prepared = prepare_update(&fig1_update(), Version(2), Strategy::Auto);
        assert_eq!(prepared.uims.len(), 8);
        assert_eq!(prepared.uims[0].0, NodeId(7));
        assert_eq!(prepared.uims[0].1.new_distance, 0);
        assert_eq!(prepared.uims.last().unwrap().0, NodeId(0));
        assert_eq!(prepared.uims.last().unwrap().1.new_distance, 7);
        assert!(prepared
            .uims
            .iter()
            .all(|(_, u)| u.version == Version(2) && u.kind == UpdateKind::Dual));
    }

    #[test]
    fn controller_versions_increment_per_flow() {
        let mut c = P4UpdateController::new(Strategy::Auto);
        assert_eq!(c.next_version(FlowId(0)), Version(1));
        c.register_flow(FlowId(0), Version(3));
        assert_eq!(c.next_version(FlowId(0)), Version(4));
        assert_eq!(c.current_version(FlowId(0)), Some(Version(3)));
        assert_eq!(c.current_version(FlowId(9)), None);
    }

    #[test]
    fn start_update_emits_one_uim_per_path_node() {
        let mut c = P4UpdateController::new(Strategy::Auto);
        c.register_flow(FlowId(0), Version(1));
        let mut out = Vec::new();
        c.start_update(SimTime::ZERO, &[fig1_update()], &mut out);
        assert_eq!(out.len(), 8);
        assert!(c.has_pending());
        assert!(out.iter().all(|e| matches!(
            e,
            CtrlEffect::Send {
                msg: Message::Uim(u),
                ..
            } if u.version == Version(2)
        )));
    }

    #[test]
    fn success_ufm_completes_the_update() {
        let mut c = P4UpdateController::new(Strategy::Auto);
        c.register_flow(FlowId(0), Version(1));
        let mut out = Vec::new();
        c.start_update(SimTime::ZERO, &[fig1_update()], &mut out);
        out.clear();
        c.on_message(
            SimTime::ZERO,
            NodeId(0),
            Message::Ufm(Ufm {
                flow: FlowId(0),
                version: Version(2),
                status: UfmStatus::Success,
                reporter: NodeId(0),
            }),
            &mut out,
        );
        assert!(!c.has_pending());
        assert_eq!(c.current_version(FlowId(0)), Some(Version(2)));
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            CtrlEffect::UpdateComplete {
                flow: FlowId(0),
                version: Version(2)
            }
        ));
    }

    #[test]
    fn alarm_ufm_is_recorded() {
        use p4update_messages::RejectReason;
        let mut c = P4UpdateController::new(Strategy::Auto);
        let mut out = Vec::new();
        c.on_message(
            SimTime::ZERO,
            NodeId(3),
            Message::Ufm(Ufm {
                flow: FlowId(0),
                version: Version(2),
                status: UfmStatus::Alarm(RejectReason::DistanceMismatch),
                reporter: NodeId(3),
            }),
            &mut out,
        );
        assert_eq!(c.alarms.len(), 1);
        assert!(matches!(
            out[0],
            CtrlEffect::AlarmRaised {
                flow: FlowId(0),
                reason: RejectReason::DistanceMismatch
            }
        ));
    }
}
