//! The P4Update switch logic: the data-plane side of the framework (§7, §8,
//! Appendix B), plugged into the shared switch chassis.
//!
//! Responsibilities:
//!
//! - **UIM processing**: stage the labels into the UIB; at the egress,
//!   apply directly and start the notification chain(s); at dual-layer
//!   segment-egress gateways, start the segment's second-layer chain.
//! - **UNM processing**: run Algorithm 1/2 ([`crate::verify`]), then act on
//!   the verdict — install & continue the chain, park until the UIM arrives
//!   (packet resubmission, Appendix B), hold for a better notification, or
//!   drop-and-alarm.
//! - **Congestion gating** (§7.4): before installing, check the new
//!   outgoing link's remaining capacity; defer blocked moves in per-link
//!   wait queues and raise the priority of flows that could free the
//!   contended link.

use crate::congestion::{Admission, CongestionScheduler};
use crate::verify::{verify, Verdict};
use p4update_dataplane::{Effect, Endpoint, FlowPriority, SwitchLogic, SwitchState, UibEntry};
use p4update_des::SimTime;
use p4update_messages::{Message, RejectReason, Ufm, UfmStatus, Uim, Unm, UnmLayer, UpdateKind};
use p4update_net::{FlowId, NodeId, Version};
use p4update_pipeline::ResubmitQueue;
use std::collections::{BTreeMap, BTreeSet};

/// How an accepted update is applied at installation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ApplyKind {
    /// [`UibEntry::apply_single`].
    Single,
    /// [`UibEntry::apply_dual`] with the inherited values.
    Dual {
        old_version: Version,
        old_distance: u32,
        counter: u32,
    },
}

/// A verified update waiting for its rule write to complete.
#[derive(Debug, Clone)]
struct PendingInstall {
    flow: FlowId,
    version: Version,
    apply: ApplyKind,
    /// Layer of the triggering UNM: decides whether the chain continues
    /// upstream after the flip (second-layer chains die at gateways, §8).
    layer: UnmLayer,
    /// True when the flip happened at a gateway via the gateway rule —
    /// second-layer notifications stop here.
    via_gateway: bool,
    /// Capacity reserved on the new outgoing link, to release on abort.
    reserved: Option<(NodeId, f64)>,
}

/// A verified update deferred by the congestion scheduler.
#[derive(Debug, Clone)]
struct BlockedMove {
    /// Wire sender of the accepted notification, preserved so the retried
    /// move re-passes the §7 sender binding.
    from: Endpoint,
    unm: Unm,
}

/// Counters exposed for the overhead ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct P4UpdateCounters {
    /// UNMs generated (clones).
    pub unms_sent: u64,
    /// UNMs parked waiting for their UIM (each is ≥ 1 BMv2 resubmission).
    pub waits_for_uim: u64,
    /// Notifications dropped after failed verification.
    pub rejects: u64,
    /// Moves deferred by the congestion gate.
    pub capacity_deferrals: u64,
}

/// The P4Update data-plane logic for one switch.
pub struct P4UpdateLogic {
    /// UNMs waiting for their version's UIM (packet resubmission model).
    waiting_for_uim: ResubmitQueue<FlowId, (Endpoint, Unm)>,
    /// First-layer UNMs held at unsatisfied dual-layer gates; retried on
    /// every state change of the flow (with the wire sender preserved, so
    /// re-verification keeps the §7 sender binding).
    held: Vec<(FlowId, Endpoint, Unm)>,
    pending: BTreeMap<u64, PendingInstall>,
    next_token: u64,
    /// Flows with a rule write in flight: further notifications for them
    /// are deferred and re-verified once the write completes (one table
    /// write at a time per flow, as on the real switch).
    installing: BTreeSet<FlowId>,
    deferred: Vec<(FlowId, Endpoint, Unm)>,
    scheduler: CongestionScheduler,
    blocked: BTreeMap<FlowId, BlockedMove>,
    ufm_sent: BTreeMap<FlowId, Version>,
    /// Overhead counters.
    pub counters: P4UpdateCounters,
}

impl Default for P4UpdateLogic {
    fn default() -> Self {
        Self::new()
    }
}

impl P4UpdateLogic {
    /// Fresh logic (buffer capacity mirrors a software switch's queue).
    pub fn new() -> Self {
        P4UpdateLogic {
            waiting_for_uim: ResubmitQueue::new(4096),
            held: Vec::new(),
            pending: BTreeMap::new(),
            next_token: 0,
            installing: BTreeSet::new(),
            deferred: Vec::new(),
            scheduler: CongestionScheduler::new(),
            blocked: BTreeMap::new(),
            ufm_sent: BTreeMap::new(),
            counters: P4UpdateCounters::default(),
        }
    }

    /// Flows currently deferred by the congestion gate (diagnostics).
    pub fn blocked_flows(&self) -> Vec<FlowId> {
        self.blocked.keys().copied().collect()
    }

    fn unm_from_entry(entry: &UibEntry, flow: FlowId, kind: UpdateKind, layer: UnmLayer) -> Unm {
        Unm {
            flow,
            v_new: entry.applied_version,
            v_old: entry.old_version,
            d_new: entry.applied_distance,
            d_old: entry.old_distance,
            counter: entry.counter,
            kind,
            layer,
        }
    }

    fn send_unm(&mut self, to: NodeId, unm: Unm, out: &mut Vec<Effect>) {
        self.counters.unms_sent += 1;
        out.push(Effect::SendSwitch {
            to,
            msg: Message::Unm(unm),
        });
    }

    fn send_ufm(
        &mut self,
        state: &SwitchState,
        flow: FlowId,
        version: Version,
        status: UfmStatus,
        out: &mut Vec<Effect>,
    ) {
        if status == UfmStatus::Success {
            if self.ufm_sent.get(&flow) >= Some(&version) {
                return;
            }
            self.ufm_sent.insert(flow, version);
        }
        out.push(Effect::SendController {
            msg: Message::Ufm(Ufm {
                flow,
                version,
                status,
                reporter: state.id,
            }),
        });
    }

    /// Stage a UIM into the UIB. Returns `true` when it staged a new
    /// configuration (as opposed to a stale duplicate).
    fn process_uim(
        &mut self,
        now: SimTime,
        state: &mut SwitchState,
        uim: Uim,
        out: &mut Vec<Effect>,
    ) {
        let entry = state.uib.read(uim.flow);

        // Flow-size immutability (§A.2): a different size is an
        // inconsistency; discard and alarm.
        if entry.has_active_rule() && entry.flow_size > 0.0 && uim.flow_size != entry.flow_size {
            self.counters.rejects += 1;
            self.send_ufm(
                state,
                uim.flow,
                uim.version,
                UfmStatus::Alarm(RejectReason::FlowSizeChanged),
                out,
            );
            return;
        }

        // Stale or duplicate indications. A duplicate at the egress
        // regenerates the notification chain (the controller's loss
        // recovery re-triggers updates through the egress, §11).
        if uim.version < entry.uim_version || uim.version <= entry.applied_version {
            if uim.version == entry.applied_version && entry.is_egress() {
                self.start_chains(state, &uim, out);
            }
            return;
        }
        let duplicate = uim.version == entry.uim_version;

        // Stage the labels (Table 1's new_* registers).
        state.uib.update(uim.flow, |e| {
            e.uim_version = uim.version;
            e.uim_distance = uim.new_distance;
            e.staged_next_hop = uim.next_hop;
            e.staged_upstream = uim.upstream;
            e.uim_kind = Some(uim.kind);
            if e.flow_size == 0.0 {
                e.flow_size = uim.flow_size;
            }
        });

        if uim.next_hop.is_none() {
            // Egress role: apply directly (§7.1 — "the egress node in the
            // new path can apply the new configuration directly"), then
            // trigger the update process of the child nodes.
            let prev = state.uib.read(uim.flow);
            state.uib.update(uim.flow, |e| match uim.kind {
                UpdateKind::Single => e.apply_single(),
                UpdateKind::Dual => {
                    // Keep the inheritance layer at the previous
                    // configuration: the chain's old distances gate the
                    // backward segments.
                    e.apply_dual(
                        prev.applied_version,
                        prev.applied_distance.min(prev.old_distance),
                        0,
                    );
                }
            });
            self.start_chains(state, &uim, out);
        } else if !duplicate {
            // Dual-layer segment-egress gateways start their segment's
            // second-layer chain at indication time (§8: "the
            // intra-segment UNM is generated at the egress node of each
            // segment") — they are on both paths, so interior nodes can
            // safely point at their old rule.
            let e = state.uib.read(uim.flow);
            if let Some(upstream) = uim.upstream {
                if uim.kind == UpdateKind::Dual && e.applied_version.next() == uim.version {
                    let unm = Unm {
                        flow: uim.flow,
                        v_new: uim.version,
                        v_old: e.applied_version,
                        d_new: uim.new_distance,
                        d_old: e.old_distance,
                        counter: e.counter,
                        kind: UpdateKind::Dual,
                        layer: UnmLayer::Intra,
                    };
                    self.send_unm(upstream, unm, out);
                }
            }
        }

        // The indication may unblock notifications that arrived early
        // (data-plane waiting via resubmission, Appendix B).
        for (from, unm) in self.waiting_for_uim.release(&uim.flow) {
            self.process_unm(now, state, from, unm, out);
        }
        self.retry_held(now, state, uim.flow, out);
    }

    /// Start the notification chain(s) from the egress: the single chain
    /// for SL, both layers for DL (§8).
    fn start_chains(&mut self, state: &mut SwitchState, uim: &Uim, out: &mut Vec<Effect>) {
        let Some(upstream) = uim.upstream else {
            return; // single-node path cannot exist; defensive
        };
        let entry = state.uib.read(uim.flow);
        match uim.kind {
            UpdateKind::Single => {
                let unm =
                    Self::unm_from_entry(&entry, uim.flow, UpdateKind::Single, UnmLayer::Intra);
                self.send_unm(upstream, unm, out);
            }
            UpdateKind::Dual => {
                let intra =
                    Self::unm_from_entry(&entry, uim.flow, UpdateKind::Dual, UnmLayer::Intra);
                let inter = Unm {
                    layer: UnmLayer::Inter,
                    ..intra
                };
                self.send_unm(upstream, intra, out);
                self.send_unm(upstream, inter, out);
            }
        }
    }

    /// Verify a notification and act on the verdict.
    fn process_unm(
        &mut self,
        now: SimTime,
        state: &mut SwitchState,
        from: Endpoint,
        unm: Unm,
        out: &mut Vec<Effect>,
    ) {
        // One rule write at a time per flow: notifications arriving while
        // a write is in flight resubmit after it completes (they usually
        // become pass-alongs then).
        if self.installing.contains(&unm.flow) {
            self.deferred.push((unm.flow, from, unm));
            return;
        }
        let entry = state.uib.read(unm.flow);
        let mut verdict = verify(&entry, &unm);
        // Sender binding (§7): an accepting notification must have arrived
        // from this node's staged child on the new path. The verification
        // labels alone can be satisfied by an equivocating neighbor's
        // forged notification (it just claims a distance one further out);
        // the arrival port cannot be forged.
        if verdict.accepts() && Some(from) != entry.staged_next_hop.map(Endpoint::Switch) {
            verdict = Verdict::Reject(RejectReason::UnexpectedSender);
        }
        match verdict {
            Verdict::WaitForUim => {
                self.counters.waits_for_uim += 1;
                if !self.waiting_for_uim.park(unm.flow, (from, unm)) {
                    // Buffer overflow: the notification is lost; the
                    // controller's loss recovery will re-trigger.
                    self.counters.rejects += 1;
                }
            }
            Verdict::Hold => {
                // Keep only first-layer notifications that may still become
                // actionable; second-layer holds are dropped (the first
                // layer will carry better information).
                if unm.layer == UnmLayer::Inter && unm.v_new > entry.applied_version {
                    self.held.push((unm.flow, from, unm));
                }
            }
            Verdict::Reject(reason) => {
                self.counters.rejects += 1;
                self.send_ufm(state, unm.flow, unm.v_new, UfmStatus::Alarm(reason), out);
            }
            Verdict::PassAlong => {
                // Dual layer: inherit the smaller old distance (Alg. 2
                // lines 24–28). Single layer: a regenerated recovery chain
                // relays through without touching the inheritance layer.
                if unm.kind == UpdateKind::Dual {
                    state.uib.update(unm.flow, |e| {
                        e.old_distance = unm.d_old;
                        e.old_version = unm.v_old;
                        e.counter = unm.counter + 1;
                    });
                }
                let e = state.uib.read(unm.flow);
                match e.active_upstream {
                    Some(up) => {
                        let fwd = Self::unm_from_entry(&e, unm.flow, unm.kind, unm.layer);
                        self.send_unm(up, fwd, out);
                    }
                    None => {
                        // The chain reached the (already updated) ingress:
                        // report completion (deduplicated per version).
                        if unm.layer == UnmLayer::Inter || unm.kind == UpdateKind::Single {
                            self.send_ufm(
                                state,
                                unm.flow,
                                e.applied_version,
                                UfmStatus::Success,
                                out,
                            );
                        }
                    }
                }
                self.retry_held(now, state, unm.flow, out);
            }
            Verdict::Accept => {
                self.gate_and_install(now, state, from, unm, ApplyKind::Single, false, out);
            }
            Verdict::AcceptInterior => {
                let apply = ApplyKind::Dual {
                    old_version: Version(unm.v_new.0 - 1),
                    old_distance: unm.d_old,
                    counter: unm.counter + 1,
                };
                self.gate_and_install(now, state, from, unm, apply, false, out);
            }
            Verdict::AcceptGateway => {
                let apply = ApplyKind::Dual {
                    old_version: unm.v_old,
                    old_distance: unm.d_old,
                    counter: unm.counter + 1,
                };
                self.gate_and_install(now, state, from, unm, apply, true, out);
            }
        }
    }

    /// The congestion gate (§7.4) followed by the rule write.
    #[allow(clippy::too_many_arguments)]
    fn gate_and_install(
        &mut self,
        _now: SimTime,
        state: &mut SwitchState,
        from: Endpoint,
        unm: Unm,
        apply: ApplyKind,
        via_gateway: bool,
        out: &mut Vec<Effect>,
    ) {
        let entry = state.uib.read(unm.flow);
        let new_hop = entry
            .staged_next_hop
            .expect("non-egress acceptance always has a staged next hop");

        // Capacity is already allocated when the flow keeps its link
        // (§A.2: "if the flow was routed on e under the prior forwarding
        // rules ... capacity is already allocated").
        let needs_capacity = entry.active_next_hop != Some(new_hop);
        let mut reserved = None;
        if needs_capacity {
            let remaining = state.remaining_capacity(new_hop).unwrap_or(0.0);
            let uib_priority = |uib: &p4update_dataplane::Uib, f: FlowId| uib.read(f).priority;
            let admission = self.scheduler.admit(
                unm.flow,
                new_hop,
                entry.flow_size,
                remaining,
                entry.priority,
                |f| uib_priority(&state.uib, f),
            );
            match admission {
                Admission::Go => {
                    let ok = state.reserve_capacity(new_hop, entry.flow_size);
                    debug_assert!(ok, "admission implies capacity");
                    reserved = Some((new_hop, entry.flow_size));
                }
                Admission::Blocked(_) => {
                    self.counters.capacity_deferrals += 1;
                    self.scheduler.park(new_hop, unm.flow);
                    self.blocked.insert(unm.flow, BlockedMove { from, unm });
                    // Raise the priority of flows that could free the
                    // contended link: active on it, staged to leave it.
                    let mut raised = Vec::new();
                    for g in state.uib.flows() {
                        let ge = state.uib.read(g);
                        if g != unm.flow
                            && ge.active_next_hop == Some(new_hop)
                            && ge.uim_version > ge.applied_version
                            && ge.staged_next_hop != Some(new_hop)
                        {
                            state.uib.update(g, |e| e.priority = FlowPriority::High);
                            raised.push(g);
                        }
                    }
                    // A raised flow blocked only by priority yielding can
                    // now pass: retry its move.
                    for g in raised {
                        if let Some(bm) = self.blocked.remove(&g) {
                            self.process_unm(_now, state, bm.from, bm.unm, out);
                        }
                    }
                    return;
                }
            }
        }

        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(
            token,
            PendingInstall {
                flow: unm.flow,
                version: unm.v_new,
                apply,
                layer: unm.layer,
                via_gateway,
                reserved,
            },
        );
        self.installing.insert(unm.flow);
        out.push(Effect::BeginInstall {
            flow: unm.flow,
            token,
        });
    }

    /// Re-verify notifications deferred while `flow`'s rule write was in
    /// flight.
    fn drain_deferred(
        &mut self,
        now: SimTime,
        state: &mut SwitchState,
        flow: FlowId,
        out: &mut Vec<Effect>,
    ) {
        let mut i = 0;
        let mut to_retry = Vec::new();
        while i < self.deferred.len() {
            if self.deferred[i].0 == flow {
                let (_, from, unm) = self.deferred.remove(i);
                to_retry.push((from, unm));
            } else {
                i += 1;
            }
        }
        for (from, unm) in to_retry {
            self.process_unm(now, state, from, unm, out);
        }
    }

    /// Rule cleanup (§11): a cleanup packet walking the abandoned old
    /// path. A node still carrying the flow in the version that triggered
    /// the cleanup (or newer) stops the walk; any other node releases its
    /// capacity, clears its rule, and passes the packet downstream.
    fn process_cleanup(
        &mut self,
        now: SimTime,
        state: &mut SwitchState,
        c: p4update_messages::Cleanup,
        out: &mut Vec<Effect>,
    ) {
        let entry = state.uib.read(c.flow);
        if entry.uim_version >= c.version || !entry.has_active_rule() {
            return; // still on the flow's path (or nothing to clean)
        }
        if let Some(next) = entry.active_next_hop {
            state.release_capacity(next, entry.flow_size);
            out.push(Effect::SendSwitch {
                to: next,
                msg: Message::Cleanup(c),
            });
            state.uib.update(c.flow, |e| {
                *e = p4update_dataplane::UibEntry::default();
            });
            self.retry_parked(now, state, next, out);
        } else {
            state.uib.update(c.flow, |e| {
                *e = p4update_dataplane::UibEntry::default();
            });
        }
    }

    /// Retry notifications held at this flow's dual-layer gates after a
    /// state change, purging ones that can never fire anymore.
    fn retry_held(
        &mut self,
        now: SimTime,
        state: &mut SwitchState,
        flow: FlowId,
        out: &mut Vec<Effect>,
    ) {
        let mut i = 0;
        let mut to_retry = Vec::new();
        while i < self.held.len() {
            if self.held[i].0 == flow {
                let (_, from, unm) = self.held.remove(i);
                to_retry.push((from, unm));
            } else {
                i += 1;
            }
        }
        for (from, unm) in to_retry {
            self.process_unm(now, state, from, unm, out);
        }
    }
}

impl SwitchLogic for P4UpdateLogic {
    fn on_control(
        &mut self,
        now: SimTime,
        state: &mut SwitchState,
        from: Endpoint,
        msg: Message,
        out: &mut Vec<Effect>,
    ) {
        match msg {
            Message::Uim(uim) => self.process_uim(now, state, uim, out),
            Message::Unm(unm) => self.process_unm(now, state, from, unm, out),
            Message::Cleanup(c) => self.process_cleanup(now, state, c, out),
            // FRM/UFM terminate at the controller; other systems' messages
            // are not ours to handle.
            _ => {}
        }
    }

    fn parked_messages(&self) -> usize {
        self.waiting_for_uim.parked() + self.held.len() + self.deferred.len()
    }

    fn debug_summary(&self) -> String {
        format!(
            "unms_sent={} waits={} rejects={} deferrals={} parked_wait={} held={} deferred={} installing={} pending={} blocked={}",
            self.counters.unms_sent,
            self.counters.waits_for_uim,
            self.counters.rejects,
            self.counters.capacity_deferrals,
            self.waiting_for_uim.parked(),
            self.held.len(),
            self.deferred.len(),
            self.installing.len(),
            self.pending.len(),
            self.blocked.len(),
        )
    }

    fn on_installed(
        &mut self,
        now: SimTime,
        state: &mut SwitchState,
        flow: FlowId,
        token: u64,
        out: &mut Vec<Effect>,
    ) {
        let Some(p) = self.pending.remove(&token) else {
            return;
        };
        debug_assert_eq!(p.flow, flow);
        self.installing.remove(&flow);
        let entry = state.uib.read(flow);

        // A newer indication superseded this install while the rule write
        // was in flight (fast-forward, §4.2): abort; the newer chain will
        // re-update. Also abort if someone already applied this or newer.
        if entry.uim_version != p.version || entry.applied_version >= p.version {
            if let Some((link, size)) = p.reserved {
                state.release_capacity(link, size);
                self.retry_parked(now, state, link, out);
            }
            self.drain_deferred(now, state, flow, out);
            return;
        }

        // Release capacity on the link the flow moves away from.
        let old_link = entry.active_next_hop;
        let moves_off =
            entry.has_active_rule() && old_link.is_some() && old_link != entry.staged_next_hop;
        if moves_off {
            state.release_capacity(old_link.expect("checked"), entry.flow_size);
        }

        // The flip: egress_port_updated becomes egress_port (Appendix B).
        state.uib.update(flow, |e| match p.apply {
            ApplyKind::Single => e.apply_single(),
            ApplyKind::Dual {
                old_version,
                old_distance,
                counter,
            } => e.apply_dual(old_version, old_distance, counter),
        });
        state.uib.update(flow, |e| e.priority = FlowPriority::Low);
        self.blocked.remove(&flow);
        let e = state.uib.read(flow);

        // Continue the chain upstream — except second-layer notifications
        // at gateways, which die here (§8).
        let continues = !(p.via_gateway && p.layer == UnmLayer::Intra);
        match e.active_upstream {
            Some(up) if continues => {
                let kind = if p.apply == ApplyKind::Single {
                    UpdateKind::Single
                } else {
                    UpdateKind::Dual
                };
                let fwd = Self::unm_from_entry(&e, flow, kind, p.layer);
                self.send_unm(up, fwd, out);
            }
            // The ingress completed the path: report success for the
            // single layer or the first layer (§8: "if the first-layer
            // UNM arrives at the ingress node, it is transformed to UFM").
            None if p.layer == UnmLayer::Inter || p.apply == ApplyKind::Single => {
                self.send_ufm(state, flow, e.applied_version, UfmStatus::Success, out);
            }
            _ => {}
        }

        // Rule cleanup (§11): tell the abandoned old parent no further
        // packets will come, so it can release rules and capacity
        // downstream.
        if moves_off {
            out.push(Effect::SendSwitch {
                to: old_link.expect("checked"),
                msg: Message::Cleanup(p4update_messages::Cleanup {
                    flow,
                    version: e.applied_version,
                }),
            });
        }

        // Freed capacity may unblock deferred moves.
        if moves_off {
            self.retry_parked(now, state, old_link.expect("checked"), out);
        }
        self.retry_held(now, state, flow, out);
        self.drain_deferred(now, state, flow, out);
    }
}

impl P4UpdateLogic {
    /// Retry every move parked for `link`, high-priority first.
    fn retry_parked(
        &mut self,
        now: SimTime,
        state: &mut SwitchState,
        link: NodeId,
        out: &mut Vec<Effect>,
    ) {
        let candidates = self.scheduler.drain(link, |f| state.uib.read(f).priority);
        for f in candidates {
            if let Some(bm) = self.blocked.remove(&f) {
                self.process_unm(now, state, bm.from, bm.unm, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4update_dataplane::Switch;
    use p4update_des::SimDuration;
    use p4update_net::{Topology, TopologyBuilder};

    fn line(n: usize, capacity: f64) -> Topology {
        let mut b = TopologyBuilder::new("line");
        let v: Vec<_> = (0..n).map(|i| b.add_node(format!("n{i}"))).collect();
        for w in v.windows(2) {
            b.add_link(w[0], w[1], SimDuration::from_millis(1), capacity);
        }
        b.build()
    }

    fn uim(flow: u32, version: u32, d: u32, next: Option<u32>, up: Option<u32>) -> Message {
        Message::Uim(Uim {
            flow: FlowId(flow),
            version: Version(version),
            new_distance: d,
            flow_size: 1.0,
            next_hop: next.map(NodeId),
            upstream: up.map(NodeId),
            kind: UpdateKind::Single,
        })
    }

    fn p4switch(topo: &Topology, id: u32) -> Switch {
        Switch::new(NodeId(id), topo, Box::new(P4UpdateLogic::new()))
    }

    #[test]
    fn egress_applies_uim_directly_and_notifies_child() {
        let t = line(3, 10.0);
        let mut egress = p4switch(&t, 2);
        let effects = egress.handle_message(
            SimTime::ZERO,
            Endpoint::Controller,
            uim(0, 1, 0, None, Some(1)),
        );
        // Applied without install delay.
        let e = egress.state.uib.read(FlowId(0));
        assert_eq!(e.applied_version, Version(1));
        assert!(e.is_egress());
        // UNM sent to the child v1.
        assert_eq!(effects.len(), 1);
        match &effects[0] {
            Effect::SendSwitch {
                to,
                msg: Message::Unm(u),
            } => {
                assert_eq!(*to, NodeId(1));
                assert_eq!(u.v_new, Version(1));
                assert_eq!(u.d_new, 0);
                assert_eq!(u.kind, UpdateKind::Single);
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn non_egress_node_verifies_then_installs_then_forwards() {
        let t = line(3, 10.0);
        let mut v1 = p4switch(&t, 1);
        // UIM first.
        let effects = v1.handle_message(
            SimTime::ZERO,
            Endpoint::Controller,
            uim(0, 1, 1, Some(2), Some(0)),
        );
        assert!(effects.is_empty(), "no action before the notification");
        // UNM from the egress.
        let unm = Message::Unm(Unm {
            flow: FlowId(0),
            v_new: Version(1),
            v_old: Version(0),
            d_new: 0,
            d_old: 0,
            counter: 0,
            kind: UpdateKind::Single,
            layer: UnmLayer::Intra,
        });
        let effects = v1.handle_message(SimTime::ZERO, Endpoint::Switch(NodeId(2)), unm);
        assert_eq!(effects.len(), 1);
        let token = match effects[0] {
            Effect::BeginInstall { flow, token } => {
                assert_eq!(flow, FlowId(0));
                token
            }
            ref other => panic!("unexpected effect {other:?}"),
        };
        // Not yet applied during the install.
        assert_eq!(v1.state.uib.read(FlowId(0)).applied_version, Version::NONE);
        // Completion flips and forwards upstream.
        let effects = v1.handle_installed(SimTime::ZERO, FlowId(0), token);
        let e = v1.state.uib.read(FlowId(0));
        assert_eq!(e.applied_version, Version(1));
        assert_eq!(e.active_next_hop, Some(NodeId(2)));
        assert_eq!(effects.len(), 1);
        assert!(matches!(
            &effects[0],
            Effect::SendSwitch { to, msg: Message::Unm(u) } if *to == NodeId(0) && u.d_new == 1
        ));
    }

    #[test]
    fn unm_before_uim_waits_then_fires() {
        let t = line(3, 10.0);
        let mut v1 = p4switch(&t, 1);
        let unm = Message::Unm(Unm {
            flow: FlowId(0),
            v_new: Version(1),
            v_old: Version(0),
            d_new: 0,
            d_old: 0,
            counter: 0,
            kind: UpdateKind::Single,
            layer: UnmLayer::Intra,
        });
        let effects = v1.handle_message(SimTime::ZERO, Endpoint::Switch(NodeId(2)), unm);
        assert!(effects.is_empty(), "parked waiting for the UIM");
        // The UIM releases it.
        let effects = v1.handle_message(
            SimTime::ZERO,
            Endpoint::Controller,
            uim(0, 1, 1, Some(2), Some(0)),
        );
        assert!(matches!(effects[0], Effect::BeginInstall { .. }));
    }

    #[test]
    fn ingress_flip_reports_success() {
        let t = line(2, 10.0);
        let mut v0 = p4switch(&t, 0);
        v0.handle_message(
            SimTime::ZERO,
            Endpoint::Controller,
            uim(0, 1, 1, Some(1), None),
        );
        let unm = Message::Unm(Unm {
            flow: FlowId(0),
            v_new: Version(1),
            v_old: Version(0),
            d_new: 0,
            d_old: 0,
            counter: 0,
            kind: UpdateKind::Single,
            layer: UnmLayer::Intra,
        });
        let effects = v0.handle_message(SimTime::ZERO, Endpoint::Switch(NodeId(1)), unm);
        let token = match effects[0] {
            Effect::BeginInstall { token, .. } => token,
            ref o => panic!("unexpected {o:?}"),
        };
        let effects = v0.handle_installed(SimTime::ZERO, FlowId(0), token);
        assert_eq!(effects.len(), 1);
        match &effects[0] {
            Effect::SendController {
                msg: Message::Ufm(u),
            } => {
                assert_eq!(u.status, UfmStatus::Success);
                assert_eq!(u.version, Version(1));
                assert_eq!(u.reporter, NodeId(0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inconsistent_distance_is_alarmed() {
        let t = line(3, 10.0);
        let mut v1 = p4switch(&t, 1);
        v1.handle_message(
            SimTime::ZERO,
            Endpoint::Controller,
            uim(0, 1, 1, Some(2), Some(0)),
        );
        // Parent claims distance 1 == ours → loop potential (Fig. 6b).
        let unm = Message::Unm(Unm {
            flow: FlowId(0),
            v_new: Version(1),
            v_old: Version(0),
            d_new: 1,
            d_old: 0,
            counter: 0,
            kind: UpdateKind::Single,
            layer: UnmLayer::Intra,
        });
        let effects = v1.handle_message(SimTime::ZERO, Endpoint::Switch(NodeId(2)), unm);
        assert_eq!(effects.len(), 1);
        assert!(matches!(
            &effects[0],
            Effect::SendController { msg: Message::Ufm(u) }
                if u.status == UfmStatus::Alarm(RejectReason::DistanceMismatch)
        ));
        assert_eq!(v1.state.uib.read(FlowId(0)).applied_version, Version::NONE);
    }

    /// Sender binding (§7): a notification whose distance arithmetic is
    /// perfectly consistent is still rejected when it does not arrive
    /// from the staged child on the new path — an equivocating third
    /// party cannot vouch for a hop it does not own.
    #[test]
    fn accepting_unm_from_wrong_sender_is_alarmed() {
        let t = line(4, 10.0);
        let mut v1 = p4switch(&t, 1);
        v1.handle_message(
            SimTime::ZERO,
            Endpoint::Controller,
            uim(0, 1, 2, Some(2), Some(0)),
        );
        // d_new = 1 satisfies `uim_distance == d_new + 1` exactly, but
        // the claim comes from node 3, not the staged child (node 2).
        let unm = Message::Unm(Unm {
            flow: FlowId(0),
            v_new: Version(1),
            v_old: Version(0),
            d_new: 1,
            d_old: 0,
            counter: 0,
            kind: UpdateKind::Single,
            layer: UnmLayer::Intra,
        });
        let effects = v1.handle_message(SimTime::ZERO, Endpoint::Switch(NodeId(3)), unm);
        assert_eq!(effects.len(), 1);
        assert!(matches!(
            &effects[0],
            Effect::SendController { msg: Message::Ufm(u) }
                if u.status == UfmStatus::Alarm(RejectReason::UnexpectedSender)
        ));
        assert_eq!(v1.state.uib.read(FlowId(0)).applied_version, Version::NONE);
    }

    #[test]
    fn capacity_shortfall_defers_the_move() {
        // v1 with two flows: flow 0 active on link to 2 with size 6; flow 1
        // wants to move onto the same link (capacity 10) with size 6 → must
        // wait until flow 0 leaves.
        let mut b = TopologyBuilder::new("y");
        let v: Vec<_> = (0..4).map(|i| b.add_node(format!("n{i}"))).collect();
        b.add_link(v[0], v[1], SimDuration::from_millis(1), 10.0);
        b.add_link(v[1], v[2], SimDuration::from_millis(1), 10.0);
        b.add_link(v[1], v[3], SimDuration::from_millis(1), 10.0);
        let t = b.build();
        let mut v1 = p4switch(&t, 1);

        // Flow 0 active toward v2, consuming 6 of 10.
        v1.state.uib.update(FlowId(0), |e| {
            e.applied_version = Version(1);
            e.applied_distance = 1;
            e.old_version = Version(1);
            e.old_distance = 1;
            e.active_next_hop = Some(NodeId(2));
            e.flow_size = 6.0;
        });
        assert!(v1.state.reserve_capacity(NodeId(2), 6.0));

        // Flow 1 stages an update onto the v1→v2 link (size 6 > remaining 4).
        let u = Message::Uim(Uim {
            flow: FlowId(1),
            version: Version(2),
            new_distance: 1,
            flow_size: 6.0,
            next_hop: Some(NodeId(2)),
            upstream: Some(NodeId(0)),
            kind: UpdateKind::Single,
        });
        v1.handle_message(SimTime::ZERO, Endpoint::Controller, u);
        let unm = Message::Unm(Unm {
            flow: FlowId(1),
            v_new: Version(2),
            v_old: Version(1),
            d_new: 0,
            d_old: 0,
            counter: 0,
            kind: UpdateKind::Single,
            layer: UnmLayer::Intra,
        });
        let effects = v1.handle_message(SimTime::ZERO, Endpoint::Switch(NodeId(2)), unm);
        assert!(effects.is_empty(), "deferred, not installed: {effects:?}");
        assert_eq!(v1.state.uib.read(FlowId(1)).applied_version, Version::NONE);
    }

    #[test]
    fn blocked_flow_retries_when_capacity_frees() {
        // Same as above, then flow 0 moves off the link → flow 1 proceeds.
        let mut b = TopologyBuilder::new("y");
        let v: Vec<_> = (0..4).map(|i| b.add_node(format!("n{i}"))).collect();
        b.add_link(v[0], v[1], SimDuration::from_millis(1), 10.0);
        b.add_link(v[1], v[2], SimDuration::from_millis(1), 10.0);
        b.add_link(v[1], v[3], SimDuration::from_millis(1), 10.0);
        let t = b.build();
        let mut v1 = p4switch(&t, 1);

        v1.state.uib.update(FlowId(0), |e| {
            e.applied_version = Version(1);
            e.applied_distance = 1;
            e.old_version = Version(1);
            e.old_distance = 1;
            e.active_next_hop = Some(NodeId(2));
            e.flow_size = 6.0;
        });
        assert!(v1.state.reserve_capacity(NodeId(2), 6.0));

        // Flow 1: blocked move onto v1→v2.
        v1.handle_message(
            SimTime::ZERO,
            Endpoint::Controller,
            Message::Uim(Uim {
                flow: FlowId(1),
                version: Version(2),
                new_distance: 1,
                flow_size: 6.0,
                next_hop: Some(NodeId(2)),
                upstream: Some(NodeId(0)),
                kind: UpdateKind::Single,
            }),
        );
        v1.handle_message(
            SimTime::ZERO,
            Endpoint::Switch(NodeId(2)),
            Message::Unm(Unm {
                flow: FlowId(1),
                v_new: Version(2),
                v_old: Version(1),
                d_new: 0,
                d_old: 0,
                counter: 0,
                kind: UpdateKind::Single,
                layer: UnmLayer::Intra,
            }),
        );

        // Flow 0 moves to v3 (update to version 2): UIM + UNM + install.
        v1.handle_message(
            SimTime::ZERO,
            Endpoint::Controller,
            Message::Uim(Uim {
                flow: FlowId(0),
                version: Version(2),
                new_distance: 1,
                flow_size: 6.0,
                next_hop: Some(NodeId(3)),
                upstream: Some(NodeId(0)),
                kind: UpdateKind::Single,
            }),
        );
        let effects = v1.handle_message(
            SimTime::ZERO,
            Endpoint::Switch(NodeId(3)),
            Message::Unm(Unm {
                flow: FlowId(0),
                v_new: Version(2),
                v_old: Version(1),
                d_new: 0,
                d_old: 0,
                counter: 0,
                kind: UpdateKind::Single,
                layer: UnmLayer::Intra,
            }),
        );
        let token = match effects[0] {
            Effect::BeginInstall { token, .. } => token,
            ref o => panic!("unexpected {o:?}"),
        };
        let effects = v1.handle_installed(SimTime::ZERO, FlowId(0), token);
        // Flow 0 flipped to v3, releasing 6 units on v1→v2; the parked
        // flow 1 move restarts (a BeginInstall among the effects).
        assert!(effects
            .iter()
            .any(|e| matches!(e, Effect::BeginInstall { flow, .. } if *flow == FlowId(1))));
        assert_eq!(
            v1.state.uib.read(FlowId(0)).active_next_hop,
            Some(NodeId(3))
        );
    }

    #[test]
    fn fast_forward_aborts_superseded_install() {
        let t = line(3, 10.0);
        let mut v1 = p4switch(&t, 1);
        v1.handle_message(
            SimTime::ZERO,
            Endpoint::Controller,
            uim(0, 1, 1, Some(2), Some(0)),
        );
        let effects = v1.handle_message(
            SimTime::ZERO,
            Endpoint::Switch(NodeId(2)),
            Message::Unm(Unm {
                flow: FlowId(0),
                v_new: Version(1),
                v_old: Version(0),
                d_new: 0,
                d_old: 0,
                counter: 0,
                kind: UpdateKind::Single,
                layer: UnmLayer::Intra,
            }),
        );
        let token = match effects[0] {
            Effect::BeginInstall { token, .. } => token,
            ref o => panic!("unexpected {o:?}"),
        };
        // Version 2's UIM lands while version 1's install is in flight.
        v1.handle_message(
            SimTime::ZERO,
            Endpoint::Controller,
            uim(0, 2, 1, Some(2), Some(0)),
        );
        // The version-1 flip aborts: the staged labels belong to version 2.
        let effects = v1.handle_installed(SimTime::ZERO, FlowId(0), token);
        assert!(effects.is_empty());
        assert_eq!(v1.state.uib.read(FlowId(0)).applied_version, Version::NONE);
        // Version 2's notification updates normally.
        let effects = v1.handle_message(
            SimTime::ZERO,
            Endpoint::Switch(NodeId(2)),
            Message::Unm(Unm {
                flow: FlowId(0),
                v_new: Version(2),
                v_old: Version(1),
                d_new: 0,
                d_old: 0,
                counter: 0,
                kind: UpdateKind::Single,
                layer: UnmLayer::Intra,
            }),
        );
        let token = match effects[0] {
            Effect::BeginInstall { token, .. } => token,
            ref o => panic!("unexpected {o:?}"),
        };
        v1.handle_installed(SimTime::ZERO, FlowId(0), token);
        assert_eq!(v1.state.uib.read(FlowId(0)).applied_version, Version(2));
    }

    #[test]
    fn stale_uim_is_ignored() {
        let t = line(3, 10.0);
        let mut v1 = p4switch(&t, 1);
        v1.handle_message(
            SimTime::ZERO,
            Endpoint::Controller,
            uim(0, 5, 1, Some(2), Some(0)),
        );
        let effects = v1.handle_message(
            SimTime::ZERO,
            Endpoint::Controller,
            uim(0, 3, 1, Some(2), Some(0)),
        );
        assert!(effects.is_empty());
        assert_eq!(v1.state.uib.read(FlowId(0)).uim_version, Version(5));
    }

    #[test]
    fn flow_size_change_is_alarmed() {
        let t = line(3, 10.0);
        let mut v1 = p4switch(&t, 1);
        v1.state.uib.update(FlowId(0), |e| {
            e.applied_version = Version(1);
            e.active_next_hop = Some(NodeId(2));
            e.flow_size = 2.0;
        });
        let effects = v1.handle_message(
            SimTime::ZERO,
            Endpoint::Controller,
            Message::Uim(Uim {
                flow: FlowId(0),
                version: Version(2),
                new_distance: 1,
                flow_size: 99.0,
                next_hop: Some(NodeId(2)),
                upstream: Some(NodeId(0)),
                kind: UpdateKind::Single,
            }),
        );
        assert!(matches!(
            &effects[0],
            Effect::SendController { msg: Message::Ufm(u) }
                if u.status == UfmStatus::Alarm(RejectReason::FlowSizeChanged)
        ));
    }
}
