//! Dense per-switch storage for the hot forwarding path.
//!
//! The harness used to key switches with a `BTreeMap<NodeId, Switch>`;
//! every packet hop then paid an `O(log n)` tree walk. [`NodeId`]s are
//! dense indices assigned in creation order, so a `Vec` indexed by
//! `NodeId::index()` serves the same lookups in `O(1)` while iterating in
//! exactly the same (ascending `NodeId`) order — the replacement is
//! behavior-identical for every deterministic trace the corpus pins.

use p4update_dataplane::Switch;
use p4update_net::{NodeId, Topology};
use std::ops::{Index, IndexMut};

/// All switches of a simulated network, indexed by [`NodeId`].
pub struct SwitchTable {
    switches: Vec<Switch>,
}

impl SwitchTable {
    /// Build one switch per topology node via `make`, in `NodeId` order.
    pub fn build(topo: &Topology, mut make: impl FnMut(NodeId) -> Switch) -> Self {
        let switches: Vec<Switch> = topo
            .node_ids()
            .enumerate()
            .map(|(i, id)| {
                assert_eq!(i, id.index(), "topology node ids must be dense");
                make(id)
            })
            .collect();
        SwitchTable { switches }
    }

    /// Number of switches.
    pub fn len(&self) -> usize {
        self.switches.len()
    }

    /// True when the table holds no switches.
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty()
    }

    /// The switch at `id`, if `id` is in range.
    pub fn get(&self, id: NodeId) -> Option<&Switch> {
        self.switches.get(id.index())
    }

    /// Mutable access to the switch at `id`, if `id` is in range.
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut Switch> {
        self.switches.get_mut(id.index())
    }

    /// All switches in ascending `NodeId` order.
    pub fn values(&self) -> impl Iterator<Item = &Switch> {
        self.switches.iter()
    }

    /// Mutable iteration in ascending `NodeId` order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut Switch> {
        self.switches.iter_mut()
    }

    /// `(id, switch)` pairs in ascending `NodeId` order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Switch)> {
        self.switches
            .iter()
            .enumerate()
            .map(|(i, sw)| (NodeId(i as u32), sw))
    }

    /// Dismantle the table into its switches (ascending `NodeId` order).
    /// The partitioned engine distributes these across shard-local tables
    /// and reassembles with [`SwitchTable::from_switches`] afterwards.
    pub(crate) fn into_switches(self) -> Vec<Switch> {
        self.switches
    }

    /// Reassemble a table from switches in ascending `NodeId` order.
    pub(crate) fn from_switches(switches: Vec<Switch>) -> Self {
        SwitchTable { switches }
    }
}

impl Index<NodeId> for SwitchTable {
    type Output = Switch;
    fn index(&self, id: NodeId) -> &Switch {
        &self.switches[id.index()]
    }
}

impl IndexMut<NodeId> for SwitchTable {
    fn index_mut(&mut self, id: NodeId) -> &mut Switch {
        &mut self.switches[id.index()]
    }
}

// `map[&node]` was the `BTreeMap` indexing syntax; keeping it valid makes
// the dense swap a drop-in for existing scenario and test code.
impl Index<&NodeId> for SwitchTable {
    type Output = Switch;
    fn index(&self, id: &NodeId) -> &Switch {
        &self.switches[id.index()]
    }
}

impl IndexMut<&NodeId> for SwitchTable {
    fn index_mut(&mut self, id: &NodeId) -> &mut Switch {
        &mut self.switches[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4update_core::P4UpdateLogic;
    use p4update_net::topologies;

    fn table() -> SwitchTable {
        let topo = topologies::fig1();
        SwitchTable::build(&topo, |id| {
            Switch::new(id, &topo, Box::new(P4UpdateLogic::new()))
        })
    }

    #[test]
    fn lookup_and_iteration_follow_node_id_order() {
        let t = table();
        assert_eq!(t.len(), 8);
        assert!(!t.is_empty());
        assert!(t.get(NodeId(7)).is_some());
        assert!(t.get(NodeId(8)).is_none());
        let ids: Vec<NodeId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, (0u32..8).map(NodeId).collect::<Vec<_>>());
        assert_eq!(t.values().count(), 8);
    }

    #[test]
    fn both_index_syntaxes_reach_the_same_switch() {
        let mut t = table();
        let id = NodeId(3);
        assert_eq!(t[id].id(), t[&id].id());
        t[&id].state.uib.update(p4update_net::FlowId(0), |e| {
            e.flow_size = 2.5;
        });
        assert_eq!(t[id].state.uib.read(p4update_net::FlowId(0)).flow_size, 2.5);
    }
}
