//! # p4update-sim
//!
//! The experiment harness: assembles switches (with any system's update
//! logic), the controller, and the timing model of §9.1 into a
//! deterministic discrete-event world; injects faults; checks the paper's
//! three consistency properties after every event; and collects the
//! measurements every figure is built from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod config;
pub mod metrics;
pub mod network;
pub mod partition;
pub mod table;

pub use checker::{check, FlowSpec, Violation};
pub use config::{
    ByzantineConfig, ControlLatency, FaultChoiceConfig, FaultConfig, InstallDelay,
    ReplicationConfig, SimConfig, TimingConfig,
};
pub use metrics::{Metrics, MetricsCounts, MetricsSink, NullMetrics, StreamingMetrics};
pub use network::{
    simulation, ByzDisposition, ByzOutcome, ControllerImpl, Event, GateStats, NetworkSim,
    PathTables, System,
};
pub use p4update_messages::ByzVector;
pub use partition::{event_router, LookaheadViolation, PartitionedSim};
pub use table::SwitchTable;
