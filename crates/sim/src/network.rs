//! The simulated network: switches, the controller, links, and the timing
//! model, assembled into a [`p4update_des::World`].
//!
//! Every system under test (P4Update, ez-Segway, Central) runs on this
//! exact substrate — same link latencies, same per-switch serial
//! processing, same controller queueing — so measured differences come
//! from protocol structure alone.

use crate::checker::{check, FlowSpec, Violation};
use crate::config::{ms, ControlLatency, InstallDelay, SimConfig};
use crate::metrics::{Metrics, MetricsSink};
use crate::table::SwitchTable;
use p4update_analysis::{AnalysisContext, BatchAnalysis, BatchAnalyzer, Diagnostic, PlanDelta};
use p4update_baselines::{CentralController, CentralSwitchLogic, EzController, EzSwitchLogic};
use p4update_core::{prepare_update, P4UpdateController, P4UpdateLogic, PreparedUpdate, Strategy};
use p4update_dataplane::{ControllerLogic, CtrlEffect, Effect, Endpoint, Switch, SwitchLogic};
use p4update_des::{ChoiceKind, Scheduler, SimDuration, SimRng, SimTime, Simulation, World};
use p4update_messages::{ByzDelivery, ByzVector, DataPacket, Message, RejectReason, UfmStatus};
use p4update_net::{latency_distances_from, FlowId, FlowUpdate, NodeId, Path, Topology, Version};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// All-pairs shortest-path tables (latency and hop count) for a topology.
///
/// Computing these is O(n² log n) and was the dominant *setup* cost of a
/// large-scale run (at ft4096 the tables hold 2 × 4096² entries); they
/// depend only on the topology, so the scale harness computes them once
/// per topology and shares them (`Arc`) across every run — and across the
/// parallel runner's worker threads. The numbers are bit-identical to a
/// per-run computation, so sharing cannot perturb determinism.
///
/// Two storage strategies exist behind one query interface:
///
/// - [`PathTables::compute`]: dense all-pairs matrices. Exact and O(1) per
///   query, but O(n²) memory — at 32768 nodes that is ~16 GiB, which is
///   what makes the hyper-scale topology infeasible with dense tables.
/// - [`PathTables::lazy`]: rows are computed on first use and memoized.
///   DC-style timing barely consults the tables (data forwarding is
///   link-local and `ControlLatency::NormalMs` never reads them), so the
///   working set stays tiny even at 32768 switches. Row values are the
///   same Dijkstra/BFS results the dense path produces, so queries are
///   bit-identical between the two strategies.
pub struct PathTables {
    inner: TablesInner,
}

/// One memoized row: per-destination latencies and hop counts from a
/// single source node.
type PathRow = Arc<(Vec<f64>, Vec<u32>)>;

enum TablesInner {
    Dense {
        /// Latency (ms) of the shortest path between every node pair.
        sp_latency_ms: Vec<Vec<f64>>,
        /// Hop count of the latency-shortest path between every node pair.
        sp_hops: Vec<Vec<u32>>,
    },
    Lazy {
        topo: Topology,
        /// Memoized rows by source node (interior mutability so shared
        /// `Arc<PathTables>` handles can fill the cache; a poisoned lock
        /// can only come from a panic mid-row, which aborts the run
        /// anyway).
        rows: Mutex<BTreeMap<u32, PathRow>>,
    },
}

fn path_row(topo: &Topology, v: NodeId) -> (Vec<f64>, Vec<u32>) {
    let n = topo.node_count();
    let lat = latency_distances_from(topo, v);
    // Hop counts via BFS (good enough for relay cost estimation).
    let mut hops = vec![u32::MAX; n];
    hops[v.index()] = 0;
    let mut queue = std::collections::VecDeque::from([v]);
    while let Some(x) = queue.pop_front() {
        for &(y, _) in topo.neighbors(x) {
            if hops[y.index()] == u32::MAX {
                hops[y.index()] = hops[x.index()] + 1;
                queue.push_back(y);
            }
        }
    }
    (lat, hops)
}

impl PathTables {
    /// Compute dense tables for `topo` (Dijkstra per node for latencies,
    /// BFS per node for hop counts).
    pub fn compute(topo: &Topology) -> Self {
        let n = topo.node_count();
        let mut sp_latency_ms = Vec::with_capacity(n);
        let mut sp_hops = Vec::with_capacity(n);
        for v in topo.node_ids() {
            let (lat, hops) = path_row(topo, v);
            sp_latency_ms.push(lat);
            sp_hops.push(hops);
        }
        PathTables {
            inner: TablesInner::Dense {
                sp_latency_ms,
                sp_hops,
            },
        }
    }

    /// Lazily-computed tables over `topo`: rows materialize on first query
    /// and are memoized. This is what makes `synthetic_fat_tree_32768`
    /// runnable at all — see the type-level docs.
    pub fn lazy(topo: Topology) -> Self {
        PathTables {
            inner: TablesInner::Lazy {
                topo,
                rows: Mutex::new(BTreeMap::new()),
            },
        }
    }

    fn row(topo: &Topology, rows: &Mutex<BTreeMap<u32, PathRow>>, from: NodeId) -> PathRow {
        let mut cache = rows.lock().expect("path-table cache lock");
        cache
            .entry(from.index() as u32)
            .or_insert_with(|| Arc::new(path_row(topo, from)))
            .clone()
    }

    /// Shortest-path latency (ms) from `from` to `to`.
    pub fn latency_ms(&self, from: NodeId, to: NodeId) -> f64 {
        match &self.inner {
            TablesInner::Dense { sp_latency_ms, .. } => sp_latency_ms[from.index()][to.index()],
            TablesInner::Lazy { topo, rows } => Self::row(topo, rows, from).0[to.index()],
        }
    }

    /// Hop count of the latency-shortest path from `from` to `to`.
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        match &self.inner {
            TablesInner::Dense { sp_hops, .. } => sp_hops[from.index()][to.index()],
            TablesInner::Lazy { topo, rows } => Self::row(topo, rows, from).1[to.index()],
        }
    }

    /// Number of rows materialized so far (= node count for dense tables).
    /// The hyper-scale smoke test asserts this stays far below the node
    /// count, i.e. that lazy tables actually avoid the O(n²) bill.
    pub fn rows_materialized(&self) -> usize {
        match &self.inner {
            TablesInner::Dense { sp_latency_ms, .. } => sp_latency_ms.len(),
            TablesInner::Lazy { rows, .. } => rows.lock().expect("path-table cache lock").len(),
        }
    }

    /// Number of nodes the tables were computed for.
    pub fn node_count(&self) -> usize {
        match &self.inner {
            TablesInner::Dense { sp_latency_ms, .. } => sp_latency_ms.len(),
            TablesInner::Lazy { topo, .. } => topo.node_count(),
        }
    }
}

/// Which system drives the updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// P4Update with the given mechanism strategy (§7.5).
    P4Update(Strategy),
    /// ez-Segway; `congestion` enables its centralized priority
    /// computation.
    EzSegway {
        /// Compute the global congestion dependency graph in the control
        /// plane (Fig. 8b's expensive path).
        congestion: bool,
    },
    /// Central; `congestion` makes rounds capacity-aware.
    Central {
        /// Enforce capacity feasibility when scheduling rounds.
        congestion: bool,
    },
}

/// The controller implementations, kept as an enum so scenario code can
/// reach system-specific state (e.g., flow registration).
pub enum ControllerImpl {
    /// P4Update's controller.
    P4(P4UpdateController),
    /// ez-Segway's controller.
    Ez(EzController),
    /// Central's controller.
    Central(CentralController),
}

impl ControllerImpl {
    pub(crate) fn as_logic(&mut self) -> &mut dyn ControllerLogic {
        match self {
            ControllerImpl::P4(c) => c,
            ControllerImpl::Ez(c) => c,
            ControllerImpl::Central(c) => c,
        }
    }
}

/// One in-flight byzantine-corrupted message: recorded when the lie is
/// scheduled, consumed (and classified into a [`ByzOutcome`]) when the
/// receiver processes it.
pub(crate) struct ByzTaint {
    /// Where the corrupted copy is headed.
    pub(crate) dest: Endpoint,
    /// The corrupted payload (matched by equality at delivery).
    pub(crate) msg: Message,
    /// Which catalog vector produced it.
    pub(crate) vector: ByzVector,
    /// The lying switch.
    pub(crate) liar: NodeId,
}

/// What a byzantine-corrupted message did at its receiver — the raw
/// material of the detector-completeness suite: every lie a run injects
/// must land in exactly one of these buckets; none may vanish silently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ByzDisposition {
    /// The receiver's local verification caught the lie and raised an
    /// alarm UFM; a [`Violation::ForgedReject`] with the same reason is
    /// recorded alongside.
    Rejected(RejectReason),
    /// The receiver acted on the lie — state changed, a rule install
    /// began, or follow-on messages were sent. For a system without
    /// local verification (ez-Segway) this is the expected bucket.
    Accepted,
    /// The receiver neither rejected nor acted (e.g. the lie parked
    /// waiting for a UIM that never names it, or deduplicated away).
    Ignored,
    /// The lie went to the controller, which has no label to verify it
    /// against — undetectable *locally* by construction (forged UFMs).
    Undetectable,
}

/// Classification record for one delivered lie (see [`ByzDisposition`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ByzOutcome {
    /// When the lie was processed.
    pub at: SimTime,
    /// The lying switch.
    pub liar: NodeId,
    /// Who received it.
    pub receiver: Endpoint,
    /// Which catalog vector it was.
    pub vector: ByzVector,
    /// What happened.
    pub disposition: ByzDisposition,
}

/// Outcome of a per-message fault choice point (see
/// [`crate::config::FaultChoiceConfig`]).
enum FaultDecision {
    /// Deliver untouched (the default alternative).
    Deliver,
    /// Lose the message.
    Drop,
    /// Deliver after the configured extra delay.
    Delay(SimDuration),
    /// Deliver, plus a second copy after the configured delay.
    Duplicate(SimDuration),
}

/// Events of the simulated network.
#[derive(Debug, Clone)]
pub enum Event {
    /// A message reaches a switch.
    DeliverToSwitch {
        /// Destination switch.
        node: NodeId,
        /// Sender.
        from: Endpoint,
        /// Payload.
        msg: Message,
    },
    /// A message reaches the controller's input queue.
    DeliverToController {
        /// Sending switch.
        from: NodeId,
        /// Payload.
        msg: Message,
    },
    /// A switch→controller message crosses into the controller's ingress
    /// domain (only under [`ControlLatency::NormalMs`]): it left `from` at
    /// `sent_at` and this event fires at `sent_at + floor_ms`, where the
    /// *controller side* draws the actual latency and schedules the
    /// [`Event::DeliverToController`]. Relocating the draw makes all RNG
    /// consumption controller-local, which is what lets the partitioned
    /// engine reproduce the sequential stream exactly.
    CtrlIngress {
        /// Sending switch.
        from: NodeId,
        /// Payload.
        msg: Message,
        /// When the message left the switch.
        sent_at: SimTime,
        /// Extra adversarial delay (fault-choice `Delay`/`Duplicate`).
        extra: SimDuration,
    },
    /// The controller finishes processing one queued message.
    ControllerExec {
        /// Sending switch.
        from: NodeId,
        /// Payload.
        msg: Message,
    },
    /// A rule write completes at a switch.
    InstallComplete {
        /// The switch.
        node: NodeId,
        /// Flow whose rule was written.
        flow: FlowId,
        /// Continuation token.
        token: u64,
    },
    /// A data packet enters the network at its ingress.
    InjectPacket {
        /// Ingress switch.
        node: NodeId,
        /// The packet.
        pkt: DataPacket,
        /// Destination hint for flow reports.
        egress_hint: NodeId,
    },
    /// The controller is asked to start a batch of updates.
    Trigger {
        /// Index into the scheduled batches.
        batch: usize,
    },
    /// Resubmission poll round at a switch: every parked message spins
    /// through the pipeline once, consuming forwarding capacity.
    PollTick {
        /// The polling switch.
        node: NodeId,
    },
    /// The controller's loss-recovery timer fires (§11).
    ControllerTimer,
    /// The primary controller fails; the first standby replica takes over
    /// (see [`crate::config::ReplicationConfig`]). Scheduled once by
    /// [`simulation`] when replication is configured with a failover time.
    ControllerFailover,
}

/// The simulated network world.
///
/// Fields the partitioned engine (`crate::partition`) splits across shards
/// are `pub(crate)`: it dismantles a `NetworkSim` into per-partition state,
/// runs the window loop, and reassembles an equivalent world.
pub struct NetworkSim {
    pub(crate) topo: Topology,
    /// Per-switch chassis, densely indexed by [`NodeId`].
    pub switches: SwitchTable,
    /// The controller.
    pub controller: ControllerImpl,
    pub(crate) config: SimConfig,
    pub(crate) rng: SimRng,
    /// Shared all-pairs shortest-path tables (see [`PathTables`]).
    pub(crate) tables: Arc<PathTables>,
    /// Serial-processing horizon per switch, indexed by `NodeId::index`.
    pub(crate) switch_busy: Vec<SimTime>,
    /// Whether each switch has an armed resubmission poll loop.
    pub(crate) polling: Vec<bool>,
    /// Serial-processing horizon of the controller.
    pub(crate) ctrl_busy: SimTime,
    /// Update batches by trigger index.
    pub(crate) batches: Vec<Vec<FlowUpdate>>,
    /// Flow specs for the checker and metrics.
    pub flows: BTreeMap<FlowId, FlowSpec>,
    /// Where measurements go; defaults to the full-recording [`Metrics`].
    pub(crate) sink: Box<dyn MetricsSink>,
    /// Reusable effect buffer: taken at the top of each hot event arm and
    /// put back cleared, so the event loop allocates nothing per event.
    pub(crate) scratch: Vec<Effect>,
    /// Violations found by per-event checking (paranoid mode).
    pub violations: Vec<(SimTime, Violation)>,
    /// Findings of the static analysis gate (`SimConfig::analysis_gate`):
    /// every diagnostic the plan linter raised for triggered P4Update
    /// batches, warnings included.
    pub analysis_findings: Vec<Diagnostic>,
    /// The previous gate pass, kept so the next triggered batch is
    /// revalidated incrementally ([`BatchAnalyzer::reanalyze`]) instead of
    /// re-linted from scratch.
    pub(crate) gate_cache: Option<BatchAnalysis>,
    /// Work counters of the incremental analysis gate.
    pub gate_stats: GateStats,
    /// Switches that have taken a lying alternative at a byzantine choice
    /// point, in first-lie order (bounds enforcement for
    /// `ByzantineConfig::max_liars`).
    pub(crate) liars: Vec<NodeId>,
    /// In-flight corrupted messages awaiting delivery classification.
    pub(crate) byz_taints: Vec<ByzTaint>,
    /// Per-lie classification log (see [`ByzOutcome`]).
    pub byz_outcomes: Vec<ByzOutcome>,
    /// Standby controller replicas (shadow state machines; see
    /// [`crate::config::ReplicationConfig`]).
    pub(crate) standbys: Vec<ControllerImpl>,
    /// Whether [`Event::ControllerFailover`] has fired.
    pub failed_over: bool,
}

/// Work counters of the sim's incremental analysis gate: how much linting
/// the gate was asked for versus how much it actually performed.
#[derive(Debug, Default, Clone, Copy)]
pub struct GateStats {
    /// Triggered batches the gate linted.
    pub batches: usize,
    /// Plans that crossed the gate (sum of batch sizes).
    pub plans: usize,
    /// Plans the gate actually re-linted; the difference to `plans` was
    /// revalidated from the previous batch's cached analysis.
    pub relinted: usize,
}

impl NetworkSim {
    /// Assemble a network for `system` on `topo`. `free_capacity` seeds the
    /// congestion-aware baselines' controller view (from
    /// `p4update_traffic::Workload::free_capacity`).
    pub fn new(
        topo: Topology,
        system: System,
        config: SimConfig,
        free_capacity: Option<BTreeMap<(NodeId, NodeId), f64>>,
    ) -> Self {
        let tables = Arc::new(PathTables::compute(&topo));
        Self::with_path_tables(topo, system, config, free_capacity, tables)
    }

    /// Like [`Self::new`], but reusing precomputed [`PathTables`] — the
    /// scale harness shares one table set across all runs on a topology.
    pub fn with_path_tables(
        topo: Topology,
        system: System,
        config: SimConfig,
        free_capacity: Option<BTreeMap<(NodeId, NodeId), f64>>,
        tables: Arc<PathTables>,
    ) -> Self {
        assert_eq!(
            tables.node_count(),
            topo.node_count(),
            "path tables were computed for a different topology"
        );
        let mut rng = SimRng::new(config.seed);
        let switches = SwitchTable::build(&topo, |id| {
            let logic: Box<dyn SwitchLogic + Send> = match system {
                System::P4Update(_) => Box::new(P4UpdateLogic::new()),
                System::EzSegway { .. } => Box::new(EzSwitchLogic::new()),
                System::Central { .. } => Box::new(CentralSwitchLogic::new()),
            };
            Switch::new(id, &topo, logic)
        });
        let make_controller = || match system {
            System::P4Update(strategy) => {
                // The NIB lets the controller set up paths for flows the
                // data plane reports via FRMs (§6).
                ControllerImpl::P4(P4UpdateController::new(strategy).with_nib(topo.clone()))
            }
            System::EzSegway { congestion } => ControllerImpl::Ez(if congestion {
                EzController::with_congestion(free_capacity.clone().unwrap_or_default())
            } else {
                EzController::new()
            }),
            System::Central { congestion } => ControllerImpl::Central(if congestion {
                CentralController::with_congestion(free_capacity.clone().unwrap_or_default())
            } else {
                CentralController::new()
            }),
        };
        let controller = make_controller();
        // Replicas beyond the primary are identically-constructed shadow
        // state machines (capped at 3 total, per the model).
        let standbys = (1..config.replication.replicas.min(3))
            .map(|_| make_controller())
            .collect();
        let n = topo.node_count();
        let _ = rng.fork(0); // reserve a stream for future model components
        NetworkSim {
            switch_busy: vec![SimTime::ZERO; n],
            polling: vec![false; n],
            topo,
            switches,
            controller,
            config,
            rng,
            tables,
            ctrl_busy: SimTime::ZERO,
            batches: Vec::new(),
            flows: BTreeMap::new(),
            sink: Box::new(Metrics::default()),
            violations: Vec::new(),
            analysis_findings: Vec::new(),
            gate_cache: None,
            gate_stats: GateStats::default(),
            scratch: Vec::new(),
            liars: Vec::new(),
            byz_taints: Vec::new(),
            byz_outcomes: Vec::new(),
            standbys,
            failed_over: false,
        }
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The scheduled update batches, in trigger order (what the analysis
    /// gate will lint; exposed so differential test harnesses can prepare
    /// and analyze the same batches out-of-band).
    pub fn batches(&self) -> &[Vec<FlowUpdate>] {
        &self.batches
    }

    /// The configuration this world was assembled with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Replace the metrics sink (builder form). The default is the
    /// full-recording [`Metrics`]; scale runs install
    /// [`crate::StreamingMetrics`] or [`crate::NullMetrics`] instead.
    /// Swap sinks *before* running: sinks are observation-only, so the
    /// simulation itself is unaffected, but a fresh sink obviously does
    /// not know about events recorded into its predecessor.
    pub fn with_metrics_sink(mut self, sink: Box<dyn MetricsSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Replace the metrics sink in place (see [`Self::with_metrics_sink`]).
    pub fn set_metrics_sink(&mut self, sink: Box<dyn MetricsSink>) {
        self.sink = sink;
    }

    /// The installed metrics sink, for fidelity-agnostic queries
    /// (counters, completions, alarms).
    pub fn sink(&self) -> &dyn MetricsSink {
        &*self.sink
    }

    /// End-of-run accounting: record every flow whose scheduled updates
    /// outnumber its completions as *stranded* in the metrics sink, and
    /// return those flows (ascending). Call once after the run; a
    /// non-empty result on a fault-free run is a liveness gap in the
    /// system under test (ez-Segway's circular capacity waits at ft512
    /// are the motivating case — see `tests/fault_injection.rs`).
    pub fn record_stranded_flows(&mut self) -> Vec<FlowId> {
        let mut expected: BTreeMap<FlowId, u64> = BTreeMap::new();
        for batch in &self.batches {
            for u in batch {
                *expected.entry(u.flow).or_insert(0) += 1;
            }
        }
        let mut stranded = Vec::new();
        for (&flow, &want) in &expected {
            let got = self
                .sink
                .completions()
                .iter()
                .filter(|&&(_, f, _)| f == flow)
                .count() as u64;
            if got < want {
                stranded.push(flow);
                self.sink.record_stranded(flow);
            }
        }
        stranded
    }

    /// The full-recording metrics, when the full sink is installed (the
    /// default). Tests and figure regeneration read event series through
    /// this accessor.
    ///
    /// # Panics
    /// If a streaming or null sink is installed — those runs must query
    /// through [`Self::sink`] instead.
    pub fn metrics(&self) -> &Metrics {
        self.sink
            .as_full()
            .expect("metrics(): a non-full MetricsSink is installed; query via sink() instead")
    }

    /// Install a flow's initial path directly (scenario bootstrap: the old
    /// configuration pre-exists the experiment), reserving capacities and
    /// registering the flow with the controller.
    pub fn install_initial_path(&mut self, flow: FlowId, path: &Path, size: f64) {
        assert!(path.validate(&self.topo), "initial path must be routable");
        for (i, &node) in path.nodes().iter().enumerate() {
            let next = path.nodes().get(i + 1).copied();
            let prev = i.checked_sub(1).map(|j| path.nodes()[j]);
            let dist = (path.nodes().len() - 1 - i) as u32;
            let sw = self.switches.get_mut(node).expect("node exists");
            sw.state.uib.update(flow, |e| {
                e.applied_version = Version(1);
                e.applied_distance = dist;
                e.active_next_hop = next;
                e.active_upstream = prev;
                e.old_version = Version(1);
                e.old_distance = dist;
                e.flow_size = size;
                e.last_update_type = Some(p4update_messages::UpdateKind::Single);
            });
            if let Some(next) = next {
                let ok = sw.state.reserve_capacity(next, size);
                assert!(ok, "initial allocation exceeds capacity at {node}");
            }
        }
        if let ControllerImpl::P4(c) = &mut self.controller {
            c.register_flow(flow, Version(1));
        }
        // Standby replicas mirror the primary's flow registry so a
        // post-failover controller assigns the same versions.
        for s in &mut self.standbys {
            if let ControllerImpl::P4(c) = s {
                c.register_flow(flow, Version(1));
            }
        }
        self.flows.insert(
            flow,
            FlowSpec {
                ingress: path.ingress(),
                egress: path.egress(),
                size,
            },
        );
    }

    /// Enable the §11 two-phase-commit mode on every switch: ingresses
    /// stamp packets with their applied version, and forwarding honors the
    /// stamps (per-packet path consistency).
    pub fn enable_two_phase_commit(&mut self) {
        for sw in self.switches.values_mut() {
            sw.enable_two_phase_commit();
        }
    }

    /// Register an update batch; returns the batch index for
    /// [`Event::Trigger`].
    pub fn add_batch(&mut self, updates: Vec<FlowUpdate>) -> usize {
        self.batches.push(updates);
        self.batches.len() - 1
    }

    /// Control latency between the controller and `node` (one way).
    fn control_latency(&mut self, node: NodeId) -> SimDuration {
        match self.config.timing.control {
            ControlLatency::ShortestPathFrom(ctrl) => ms(self.tables.latency_ms(ctrl, node)),
            ControlLatency::NormalMs {
                mean,
                std_dev,
                floor_ms,
            } => ms(self.rng.normal_clamped(mean, std_dev, floor_ms)),
        }
    }

    /// Transit time of a switch-to-switch message: one link hop when
    /// adjacent, otherwise the shortest path plus per-hop relay cost.
    fn transit(&self, from: NodeId, to: NodeId) -> SimDuration {
        if let Some(lat) = self.topo.latency_between(from, to) {
            return lat;
        }
        let lat = ms(self.tables.latency_ms(from, to));
        let hops = self.tables.hops(from, to).max(1);
        lat + ms(self.config.timing.relay_hop_ms).saturating_mul(hops as u64)
    }

    fn install_delay(&mut self) -> SimDuration {
        match self.config.timing.install {
            InstallDelay::None => SimDuration::ZERO,
            InstallDelay::ExponentialMs(mean) => ms(self.rng.exponential(mean)),
        }
    }

    fn fault_drop(&mut self, prob: f64) -> bool {
        prob > 0.0 && self.rng.chance(prob)
    }

    /// Resolve one control message's adversarial fault decision through
    /// the choice-point seam (when `SimConfig::fault_choices` is enabled).
    /// Alternative 0 is always "deliver untouched", so a default chooser
    /// keeps the run fault-free.
    fn fault_choice(&mut self, sched: &mut Scheduler<Event>) -> FaultDecision {
        let Some(fc) = self.config.fault_choices else {
            return FaultDecision::Deliver;
        };
        match sched.choose(ChoiceKind::Fault, 4) {
            0 => FaultDecision::Deliver,
            1 => FaultDecision::Drop,
            2 => FaultDecision::Delay(ms(fc.delay_ms)),
            _ => FaultDecision::Duplicate(ms(fc.delay_ms)),
        }
    }

    /// Resolve one outbound control message's byzantine decision through
    /// the choice-point seam (when `SimConfig::byzantine` is installed).
    /// Emits a `ChoiceKind::Byzantine` choice point only when some catalog
    /// vector applies to `msg` *and* the sender is allowed to lie (it
    /// already lied, or the liar budget has room). Alternative 0 — the
    /// default — means "send honestly" and has zero side effects: no RNG
    /// draw, no state change, no extra event, which is what keeps
    /// byzantine-enabled-but-honest runs identical to the plain engine.
    fn byz_choice(
        &mut self,
        node: NodeId,
        msg: &Message,
        sched: &mut Scheduler<Event>,
    ) -> Option<ByzVector> {
        let bc = self.config.byzantine?;
        let is_liar = self.liars.contains(&node);
        if !is_liar && self.liars.len() >= bc.max_liars as usize {
            return None;
        }
        let applicable = ByzVector::applicable(bc.vector, msg);
        if applicable.is_empty() {
            return None;
        }
        let pick = sched.choose(ChoiceKind::Byzantine, applicable.len() + 1);
        if pick == 0 || pick > applicable.len() {
            return None;
        }
        if !is_liar {
            self.liars.push(node);
        }
        Some(applicable[pick - 1])
    }

    /// Ship a lying switch's corrupted switch-to-switch message according
    /// to the vector's delivery mode, recording the taint so the delivery
    /// can be classified (see [`ByzOutcome`]).
    fn send_byz_switch(
        &mut self,
        liar: NodeId,
        to: NodeId,
        msg: Message,
        vector: ByzVector,
        base: SimTime,
        sched: &mut Scheduler<Event>,
    ) {
        let lie = vector.corrupt(&msg).expect("vector was applicable");
        let delay = ms(self.config.byzantine.expect("byz config present").delay_ms);
        let at = base + self.transit(liar, to) + self.fault_jitter();
        let deliver = |msg| Event::DeliverToSwitch {
            node: to,
            from: Endpoint::Switch(liar),
            msg,
        };
        match vector.delivery() {
            ByzDelivery::Replace => {
                self.byz_taints.push(ByzTaint {
                    dest: Endpoint::Switch(to),
                    msg: lie.clone(),
                    vector,
                    liar,
                });
                sched.schedule_at(at, deliver(lie));
            }
            ByzDelivery::ExtraDelayed => {
                sched.schedule_at(at, deliver(msg));
                self.byz_taints.push(ByzTaint {
                    dest: Endpoint::Switch(to),
                    msg: lie.clone(),
                    vector,
                    liar,
                });
                sched.schedule_at(at + delay, deliver(lie));
            }
            ByzDelivery::ExtraToOtherNeighbor => {
                sched.schedule_at(at, deliver(msg));
                // Equivocate toward the lowest-id *other* neighbor; a
                // degree-1 liar has nobody else to lie to.
                let other = self
                    .topo
                    .neighbors(liar)
                    .iter()
                    .map(|&(n, _)| n)
                    .filter(|&n| n != to)
                    .min();
                if let Some(other) = other {
                    let at2 = base + self.transit(liar, other) + self.fault_jitter();
                    self.byz_taints.push(ByzTaint {
                        dest: Endpoint::Switch(other),
                        msg: lie.clone(),
                        vector,
                        liar,
                    });
                    sched.schedule_at(
                        at2,
                        Event::DeliverToSwitch {
                            node: other,
                            from: Endpoint::Switch(liar),
                            msg: lie,
                        },
                    );
                }
            }
        }
    }

    /// Classify what a just-delivered lie did at switch `node`, from the
    /// effects its processing produced and the before/after UIB state.
    /// A raised alarm is a local rejection — the defense the paper's
    /// verification promises — and is additionally recorded as a
    /// [`Violation::ForgedReject`] so traces can pin it.
    fn classify_taint(
        &mut self,
        now: SimTime,
        node: NodeId,
        taint: ByzTaint,
        before: Option<p4update_dataplane::UibEntry>,
        effects: &[Effect],
    ) {
        let mut disposition = ByzDisposition::Ignored;
        for e in effects {
            if let Effect::SendController {
                msg: Message::Ufm(ufm),
            } = e
            {
                if let UfmStatus::Alarm(reason) = ufm.status {
                    disposition = ByzDisposition::Rejected(reason);
                    let v = Violation::ForgedReject {
                        flow: ufm.flow,
                        at: node,
                        reason,
                    };
                    if !self.violations.iter().any(|(_, existing)| *existing == v) {
                        self.violations.push((now, v));
                    }
                    break;
                }
            }
        }
        if disposition == ByzDisposition::Ignored {
            let after = taint
                .msg
                .flow()
                .map(|f| self.switches[node].state.uib.read(f));
            let acted = effects.iter().any(|e| {
                matches!(
                    e,
                    Effect::BeginInstall { .. }
                        | Effect::SendSwitch { .. }
                        | Effect::SendController { .. }
                )
            });
            if before != after || acted {
                disposition = ByzDisposition::Accepted;
            }
        }
        self.byz_outcomes.push(ByzOutcome {
            at: now,
            liar: taint.liar,
            receiver: Endpoint::Switch(node),
            vector: taint.vector,
            disposition,
        });
    }

    /// Mirror a delivered controller message into the standby replicas
    /// (outputs discarded — shadows don't talk), unless it falls inside
    /// the replication-lag window just before a pending failover, in
    /// which case the standbys never learn of it.
    fn feed_standbys_msg(&mut self, now: SimTime, from: NodeId, msg: &Message) {
        if self.standbys.is_empty() {
            return;
        }
        let r = self.config.replication;
        if !self.failed_over
            && r.failover_at_ms > 0.0
            && now.as_millis_f64() >= r.failover_at_ms - r.lag_ms
        {
            return; // lost in the dead primary's replication pipeline
        }
        let mut discard = Vec::new();
        for s in &mut self.standbys {
            s.as_logic()
                .on_message(now, from, msg.clone(), &mut discard);
            discard.clear();
        }
    }

    fn fault_jitter(&mut self) -> SimDuration {
        let j = self.config.faults.jitter_ms;
        if j <= 0.0 {
            SimDuration::ZERO
        } else {
            ms(self.rng.uniform_range(0.0, j))
        }
    }

    /// Apply a switch's effects, all anchored at `base` (the time its
    /// pipeline pass finished).
    fn apply_switch_effects(
        &mut self,
        node: NodeId,
        base: SimTime,
        effects: &mut Vec<Effect>,
        sched: &mut Scheduler<Event>,
    ) {
        for effect in effects.drain(..) {
            match effect {
                Effect::SendSwitch { to, msg } => {
                    if self.fault_drop(self.config.faults.drop_switch_to_switch) {
                        self.sink.record_control_drop();
                        continue;
                    }
                    if let Some(vector) = self.byz_choice(node, &msg, sched) {
                        // A lying send replaces the whole honest delivery
                        // path (no separate fault choice: the lie is the
                        // fault).
                        self.send_byz_switch(node, to, msg, vector, base, sched);
                        continue;
                    }
                    let decision = if matches!(msg, Message::Data(_)) {
                        FaultDecision::Deliver // data is never fault-injected
                    } else {
                        self.fault_choice(sched)
                    };
                    let at = base + self.transit(node, to) + self.fault_jitter();
                    let event = Event::DeliverToSwitch {
                        node: to,
                        from: Endpoint::Switch(node),
                        msg,
                    };
                    match decision {
                        FaultDecision::Drop => self.sink.record_control_drop(),
                        FaultDecision::Deliver => sched.schedule_at(at, event),
                        FaultDecision::Delay(d) => sched.schedule_at(at + d, event),
                        FaultDecision::Duplicate(d) => {
                            sched.schedule_at(at, event.clone());
                            sched.schedule_at(at + d, event);
                        }
                    }
                }
                Effect::SendController { mut msg } => {
                    if let Some(vector) = self.byz_choice(node, &msg, sched) {
                        // Controller-bound lies (forged UFMs) replace the
                        // honest message and ride the normal delivery
                        // path below; the controller has no label to
                        // check them against, so the taint classifies as
                        // locally undetectable on arrival.
                        let lie = vector.corrupt(&msg).expect("vector was applicable");
                        self.byz_taints.push(ByzTaint {
                            dest: Endpoint::Controller,
                            msg: lie.clone(),
                            vector,
                            liar: node,
                        });
                        msg = lie;
                    }
                    if let ControlLatency::NormalMs { floor_ms, .. } = self.config.timing.control {
                        // The latency draw happens controller-side (see
                        // [`Event::CtrlIngress`]); the switch only knows the
                        // message cannot arrive before the floor. A
                        // duplicate becomes two ingresses and therefore two
                        // independent latency draws.
                        let at = base + ms(floor_ms);
                        let ingress = |extra| Event::CtrlIngress {
                            from: node,
                            msg: msg.clone(),
                            sent_at: base,
                            extra,
                        };
                        match self.fault_choice(sched) {
                            FaultDecision::Drop => self.sink.record_control_drop(),
                            FaultDecision::Deliver => {
                                sched.schedule_at(at, ingress(SimDuration::ZERO));
                            }
                            FaultDecision::Delay(d) => sched.schedule_at(at, ingress(d)),
                            FaultDecision::Duplicate(d) => {
                                sched.schedule_at(at, ingress(SimDuration::ZERO));
                                sched.schedule_at(at, ingress(d));
                            }
                        }
                        continue;
                    }
                    let at = base + self.control_latency(node);
                    let event = Event::DeliverToController { from: node, msg };
                    match self.fault_choice(sched) {
                        FaultDecision::Drop => self.sink.record_control_drop(),
                        FaultDecision::Deliver => sched.schedule_at(at, event),
                        FaultDecision::Delay(d) => sched.schedule_at(at + d, event),
                        FaultDecision::Duplicate(d) => {
                            sched.schedule_at(at, event.clone());
                            sched.schedule_at(at + d, event);
                        }
                    }
                }
                Effect::BeginInstall { flow, token } => {
                    let at = base + self.install_delay();
                    sched.schedule_at(at, Event::InstallComplete { node, flow, token });
                }
                Effect::ForwardData { to, pkt } => {
                    let at = base
                        + self
                            .topo
                            .latency_between(node, to)
                            .unwrap_or_else(|| self.transit(node, to));
                    sched.schedule_at(
                        at,
                        Event::DeliverToSwitch {
                            node: to,
                            from: Endpoint::Switch(node),
                            msg: Message::Data(pkt),
                        },
                    );
                }
                Effect::PacketDelivered { pkt } => {
                    self.sink.record_delivery(base, node, pkt);
                }
                Effect::PacketDropped { pkt, reason } => {
                    self.sink.record_drop(base, node, pkt, reason);
                }
            }
        }
    }

    /// Apply controller effects: outbound messages serialize on the
    /// controller's transmit path.
    fn apply_ctrl_effects(
        &mut self,
        base: SimTime,
        effects: Vec<CtrlEffect>,
        sched: &mut Scheduler<Event>,
    ) {
        let tx = ms(self.config.timing.ctrl_tx_ms);
        let mut send_time = base;
        for effect in effects {
            match effect {
                CtrlEffect::Send { to, msg } => {
                    send_time += tx;
                    if self.fault_drop(self.config.faults.drop_ctrl_to_switch) {
                        self.sink.record_control_drop();
                        continue;
                    }
                    let mut at = send_time + self.control_latency(to) + self.fault_jitter();
                    if let Some((held, release)) = self.config.faults.hold_ctrl_to {
                        if held == to {
                            at = at.max(SimTime::ZERO + release);
                        }
                    }
                    let event = Event::DeliverToSwitch {
                        node: to,
                        from: Endpoint::Controller,
                        msg,
                    };
                    match self.fault_choice(sched) {
                        FaultDecision::Drop => self.sink.record_control_drop(),
                        FaultDecision::Deliver => sched.schedule_at(at, event),
                        FaultDecision::Delay(d) => sched.schedule_at(at + d, event),
                        FaultDecision::Duplicate(d) => {
                            sched.schedule_at(at, event.clone());
                            sched.schedule_at(at + d, event);
                        }
                    }
                }
                CtrlEffect::UpdateComplete { flow, version } => {
                    self.sink.record_completion(base, flow, version);
                }
                CtrlEffect::AlarmRaised { flow, reason } => {
                    self.sink.record_alarm(base, flow, reason);
                }
            }
        }
        self.ctrl_busy = self.ctrl_busy.max(send_time);
    }

    /// Arm the resubmission poll loop at a switch that has parked
    /// messages (Appendix B's data-plane waiting): each poll round charges
    /// one pipeline pass per parked message.
    fn arm_poll(&mut self, node: NodeId, sched: &mut Scheduler<Event>) {
        let interval = self.config.timing.resubmit_poll_ms;
        if interval <= 0.0 || self.polling[node.index()] {
            return;
        }
        if self.switches[node].parked_messages() == 0 {
            return;
        }
        self.polling[node.index()] = true;
        sched.schedule_in(ms(interval), Event::PollTick { node });
    }

    /// The static analysis gate: before a P4Update batch ships, re-prepare
    /// each plan exactly as the controller is about to (same strategy, same
    /// version assignment) and lint it against the proof-labeling
    /// invariants. Findings are recorded for the harness; error-severity
    /// findings additionally trip a debug assertion — a plan the analyzer
    /// rejects must never reach the switches in a test build.
    fn run_analysis_gate(&mut self, updates: &[FlowUpdate]) {
        let ControllerImpl::P4(c) = &self.controller else {
            return; // the baselines carry no proof labels to lint
        };
        // Replicate the controller's per-batch version assignment: each
        // entry gets one past the newest version of its flow, including
        // versions assigned earlier in this very batch.
        let mut assigned: BTreeMap<FlowId, Version> = BTreeMap::new();
        let plans: Vec<PreparedUpdate> = updates
            .iter()
            .map(|u| {
                let v = assigned
                    .get(&u.flow)
                    .map_or_else(|| c.next_version(u.flow), |v| v.next());
                assigned.insert(u.flow, v);
                prepare_update(u, v, c.strategy())
            })
            .collect();
        let ctx = AnalysisContext::with_installed(
            Some(&self.topo),
            updates
                .iter()
                .filter_map(|u| c.current_version(u.flow).map(|v| (u.flow, v))),
        );
        // One worker keeps the gate free of threads inside the event loop;
        // the engine is byte-identical at any worker count, so this is
        // purely a scheduling choice. The previous pass's cache makes
        // steady-state batches (unchanged plans, unchanged installed
        // versions) revalidate instead of re-lint.
        let engine = BatchAnalyzer::new(1);
        let analysis = match self.gate_cache.take() {
            Some(prev) => {
                let delta = PlanDelta::diff(prev.plans(), &plans);
                engine.reanalyze(&prev, &delta, &ctx)
            }
            None => engine.analyze(&plans, &ctx),
        };
        self.gate_stats.batches += 1;
        self.gate_stats.plans += analysis.plan_count();
        self.gate_stats.relinted += analysis.revalidated();
        debug_assert!(
            !analysis.diagnostics().iter().any(Diagnostic::is_error),
            "analysis gate rejected a plan: {:?}",
            analysis
                .diagnostics()
                .iter()
                .filter(|d| d.is_error())
                .collect::<Vec<_>>()
        );
        self.analysis_findings
            .extend(analysis.diagnostics().iter().cloned());
        self.gate_cache = Some(analysis);
    }

    fn run_checker(&mut self, now: SimTime) {
        if !self.config.paranoid {
            return;
        }
        for v in check(&self.topo, &self.switches, &self.flows) {
            // Deduplicate persistent violations: record state transitions
            // only.
            let already = self.violations.iter().any(|(_, existing)| *existing == v);
            if !already {
                self.violations.push((now, v));
            }
        }
    }
}

impl World for NetworkSim {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, sched: &mut Scheduler<Event>) {
        match event {
            Event::DeliverToSwitch { node, from, msg } => {
                // Serial pipeline: requeue while the switch is busy.
                let busy = self.switch_busy[node.index()];
                if busy > now {
                    sched.schedule_at(busy, Event::DeliverToSwitch { node, from, msg });
                    return;
                }
                let done = now + ms(self.config.timing.switch_proc_ms);
                self.switch_busy[node.index()] = done;
                if let Message::Data(pkt) = &msg {
                    self.sink.record_arrival(now, node, *pkt);
                }
                if matches!(msg, Message::Unm(_)) {
                    self.sink.record_unm_delivery(now, node);
                }
                // Pull a matching taint *before* processing so the
                // pre-delivery UIB entry can anchor the classification.
                let taint = self
                    .byz_taints
                    .iter()
                    .position(|t| {
                        t.dest == Endpoint::Switch(node)
                            && Endpoint::Switch(t.liar) == from
                            && t.msg == msg
                    })
                    .map(|i| self.byz_taints.remove(i));
                let before = taint
                    .as_ref()
                    .and_then(|t| t.msg.flow())
                    .map(|f| self.switches[node].state.uib.read(f));
                let mut effects = std::mem::take(&mut self.scratch);
                self.switches
                    .get_mut(node)
                    .expect("switch exists")
                    .handle_message_into(now, from, msg, &mut effects);
                if let Some(t) = taint {
                    self.classify_taint(now, node, t, before, &effects);
                }
                self.apply_switch_effects(node, done, &mut effects, sched);
                self.scratch = effects;
                self.arm_poll(node, sched);
            }
            Event::InstallComplete { node, flow, token } => {
                let busy = self.switch_busy[node.index()];
                if busy > now {
                    sched.schedule_at(busy, Event::InstallComplete { node, flow, token });
                    return;
                }
                let done = now + ms(self.config.timing.switch_proc_ms);
                self.switch_busy[node.index()] = done;
                let mut effects = std::mem::take(&mut self.scratch);
                self.switches
                    .get_mut(node)
                    .expect("switch exists")
                    .handle_installed_into(now, flow, token, &mut effects);
                self.apply_switch_effects(node, done, &mut effects, sched);
                self.scratch = effects;
                self.arm_poll(node, sched);
            }
            Event::InjectPacket {
                node,
                pkt,
                egress_hint,
            } => {
                let busy = self.switch_busy[node.index()];
                if busy > now {
                    sched.schedule_at(
                        busy,
                        Event::InjectPacket {
                            node,
                            pkt,
                            egress_hint,
                        },
                    );
                    return;
                }
                let done = now + ms(self.config.timing.switch_proc_ms);
                self.switch_busy[node.index()] = done;
                self.sink.record_arrival(now, node, pkt);
                let mut effects = std::mem::take(&mut self.scratch);
                self.switches
                    .get_mut(node)
                    .expect("switch exists")
                    .inject_packet_into(now, pkt, egress_hint, &mut effects);
                self.apply_switch_effects(node, done, &mut effects, sched);
                self.scratch = effects;
            }
            Event::DeliverToController { from, msg } => {
                // FIFO single-threaded controller: queue behind the busy
                // horizon, then serve with an exponential service time.
                let start = now.max(self.ctrl_busy);
                let svc = ms(self
                    .rng
                    .exponential(self.config.timing.ctrl_service_mean_ms));
                let done = start + svc;
                self.ctrl_busy = done;
                sched.schedule_at(done, Event::ControllerExec { from, msg });
            }
            Event::CtrlIngress {
                from,
                msg,
                sent_at,
                extra,
            } => {
                // Controller-side latency draw: the message left `from` at
                // `sent_at`; now (= sent_at + floor) the actual normal-
                // distributed latency is drawn and the delivery lands at
                // `sent_at + latency (+ adversarial extra)`. The clamp in
                // `schedule_at` is unreachable (latency ≥ floor), so the
                // delivery time distribution matches the switch-side draw
                // this replaces.
                let lat = self.control_latency(from);
                sched.schedule_at(
                    sent_at + lat + extra,
                    Event::DeliverToController { from, msg },
                );
            }
            Event::ControllerExec { from, msg } => {
                if let Some(i) = self
                    .byz_taints
                    .iter()
                    .position(|t| t.dest == Endpoint::Controller && t.liar == from && t.msg == msg)
                {
                    let t = self.byz_taints.remove(i);
                    self.byz_outcomes.push(ByzOutcome {
                        at: now,
                        liar: t.liar,
                        receiver: Endpoint::Controller,
                        vector: t.vector,
                        disposition: ByzDisposition::Undetectable,
                    });
                }
                self.feed_standbys_msg(now, from, &msg);
                let mut out = Vec::new();
                self.controller
                    .as_logic()
                    .on_message(now, from, msg, &mut out);
                self.apply_ctrl_effects(now, out, sched);
            }
            Event::PollTick { node } => {
                let parked = self.switches[node].parked_messages();
                let interval = self.config.timing.resubmit_poll_ms;
                if parked == 0 || interval <= 0.0 {
                    self.polling[node.index()] = false;
                } else {
                    // Each parked message makes one pipeline pass.
                    let start = now.max(self.switch_busy[node.index()]);
                    let spin = ms(self.config.timing.switch_proc_ms).saturating_mul(parked as u64);
                    let done = start + spin;
                    self.switch_busy[node.index()] = done;
                    sched.schedule_at(done + ms(interval), Event::PollTick { node });
                }
            }
            Event::Trigger { batch } => {
                let updates = self.batches.get(batch).cloned().unwrap_or_default();
                self.sink.record_trigger(now, batch);
                if self.config.analysis_gate {
                    self.run_analysis_gate(&updates);
                }
                let mut out = Vec::new();
                let base = now.max(self.ctrl_busy);
                self.controller
                    .as_logic()
                    .start_update(now, &updates, &mut out);
                // Shadow replicas see the same trigger (outputs dropped)
                // so a post-failover primary holds the same pending state.
                let mut discard = Vec::new();
                for s in &mut self.standbys {
                    s.as_logic().start_update(now, &updates, &mut discard);
                    discard.clear();
                }
                self.apply_ctrl_effects(base, out, sched);
                if self.config.retry_ms > 0.0 {
                    sched.schedule_in(ms(self.config.retry_ms), Event::ControllerTimer);
                }
            }
            Event::ControllerTimer => {
                let mut out = Vec::new();
                let keep_going = self.controller.as_logic().on_timer(now, &mut out);
                let base = now.max(self.ctrl_busy);
                self.apply_ctrl_effects(base, out, sched);
                if keep_going && self.config.retry_ms > 0.0 {
                    sched.schedule_in(ms(self.config.retry_ms), Event::ControllerTimer);
                }
            }
            Event::ControllerFailover => {
                if !self.failed_over && !self.standbys.is_empty() {
                    self.failed_over = true;
                    self.controller = self.standbys.remove(0);
                    // The new primary's view may be stale (replication
                    // lag); the §11 recovery timer is what reconciles
                    // in-flight updates, so re-arm it immediately.
                    if self.config.retry_ms > 0.0 {
                        sched.schedule_in(ms(self.config.retry_ms), Event::ControllerTimer);
                    }
                }
            }
        }
        self.run_checker(now);
    }
}

/// Convenience: wrap a [`NetworkSim`] into a ready-to-run simulation with
/// a livelock guard sized for the evaluation scenarios.
pub fn simulation(world: NetworkSim) -> Simulation<NetworkSim> {
    // Pre-size the event queue: in-flight events scale with the switch
    // count (serial pipelines bound per-switch fan-out), so a small
    // multiple of it avoids every steady-state reallocation.
    let capacity = world.topology().node_count() * 8 + 1024;
    let backend = world.config().queue_backend;
    let replication = world.config().replication;
    let mut sim = Simulation::new(world)
        .with_event_budget(20_000_000)
        .with_queue_backend(backend)
        .with_queue_capacity(capacity);
    if replication.enabled() && replication.failover_at_ms > 0.0 {
        sim.schedule_at(
            SimTime::ZERO + ms(replication.failover_at_ms),
            Event::ControllerFailover,
        );
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TimingConfig;
    use p4update_net::topologies;

    fn basic_sim(system: System) -> NetworkSim {
        let topo = topologies::fig1();
        let config = SimConfig::new(TimingConfig::wan_multi_flow(topo.centroid()), 1);
        NetworkSim::new(topo, system, config, None)
    }

    #[test]
    fn initial_path_installs_rules_and_reserves_capacity() {
        let mut sim = basic_sim(System::P4Update(Strategy::Auto));
        let path = Path::new(topologies::fig1_old_path());
        sim.install_initial_path(FlowId(0), &path, 2.0);
        let e = sim.switches[&NodeId(0)].state.uib.read(FlowId(0));
        assert_eq!(e.active_next_hop, Some(NodeId(4)));
        assert_eq!(e.applied_distance, 3);
        let remaining = sim.switches[&NodeId(0)]
            .state
            .remaining_capacity(NodeId(4))
            .unwrap();
        assert_eq!(remaining, topologies::DEFAULT_CAPACITY - 2.0);
        // Egress terminates.
        assert!(sim.switches[&NodeId(7)]
            .state
            .uib
            .read(FlowId(0))
            .is_egress());
        // Checker is clean.
        assert!(check(&sim.topo, &sim.switches, &sim.flows).is_empty());
    }

    #[test]
    fn data_packet_traverses_initial_path() {
        let mut world = basic_sim(System::P4Update(Strategy::Auto));
        let path = Path::new(topologies::fig1_old_path());
        world.install_initial_path(FlowId(0), &path, 1.0);
        let mut sim = simulation(world);
        sim.schedule_at(
            SimTime::ZERO,
            Event::InjectPacket {
                node: NodeId(0),
                pkt: DataPacket {
                    flow: FlowId(0),
                    seq: 7,
                    ttl: 64,
                    tag: None,
                },
                egress_hint: NodeId(7),
            },
        );
        assert!(sim.run().drained());
        let world = sim.into_world();
        assert_eq!(world.metrics().deliveries.len(), 1);
        let (t, node, pkt) = &world.metrics().deliveries[0];
        assert_eq!(*node, NodeId(7));
        assert_eq!(pkt.seq, 7);
        // 3 hops of 20 ms plus processing.
        assert!(t.as_millis_f64() > 60.0 && t.as_millis_f64() < 70.0, "{t}");
    }

    #[test]
    fn all_three_systems_assemble() {
        for system in [
            System::P4Update(Strategy::Auto),
            System::EzSegway { congestion: false },
            System::Central { congestion: false },
        ] {
            let sim = basic_sim(system);
            assert_eq!(sim.switches.len(), 8);
        }
    }

    #[test]
    fn analysis_gate_runs_clean_on_fig1_migration() {
        let topo = topologies::fig1();
        let config = SimConfig::new(TimingConfig::wan_multi_flow(topo.centroid()), 1)
            .with_analysis_gate(true);
        let mut world = NetworkSim::new(topo, System::P4Update(Strategy::Auto), config, None);
        let old = Path::new(topologies::fig1_old_path());
        let new = Path::new(topologies::fig1_new_path());
        world.install_initial_path(FlowId(0), &old, 1.0);
        let batch = world.add_batch(vec![FlowUpdate::new(FlowId(0), Some(old), new, 1.0)]);
        let mut sim = simulation(world);
        sim.schedule_at(SimTime::ZERO, Event::Trigger { batch });
        assert!(sim.run().drained());
        // A well-prepared plan produces no findings at all.
        assert!(sim.into_world().analysis_findings.is_empty());
    }

    #[test]
    fn analysis_gate_records_mechanism_advisories() {
        let topo = topologies::fig1();
        let config = SimConfig::new(TimingConfig::wan_multi_flow(topo.centroid()), 1)
            .with_analysis_gate(true);
        // ForceSingle on Fig. 1 violates the §7.5 rule (backward segment,
        // 8 nodes): the gate warns but does not trip.
        let mut world =
            NetworkSim::new(topo, System::P4Update(Strategy::ForceSingle), config, None);
        let old = Path::new(topologies::fig1_old_path());
        let new = Path::new(topologies::fig1_new_path());
        world.install_initial_path(FlowId(0), &old, 1.0);
        let batch = world.add_batch(vec![FlowUpdate::new(FlowId(0), Some(old), new, 1.0)]);
        let mut sim = simulation(world);
        sim.schedule_at(SimTime::ZERO, Event::Trigger { batch });
        assert!(sim.run().drained());
        let world = sim.into_world();
        assert!(!world.analysis_findings.is_empty());
        assert!(world.analysis_findings.iter().all(|d| !d.is_error()));
    }

    /// Fault choice points with the default chooser alter nothing: every
    /// decision resolves to "deliver", so the run is byte-identical to one
    /// without choice points.
    #[test]
    fn fault_choice_points_with_default_chooser_change_nothing() {
        let run = |fault_choices: bool| {
            let topo = topologies::fig1();
            let mut config =
                SimConfig::new(TimingConfig::wan_multi_flow(topo.centroid()), 1).paranoid();
            if fault_choices {
                config = config.with_fault_choices(crate::config::FaultChoiceConfig::default());
            }
            let mut world = NetworkSim::new(topo, System::P4Update(Strategy::Auto), config, None);
            let old = Path::new(topologies::fig1_old_path());
            let new = Path::new(topologies::fig1_new_path());
            world.install_initial_path(FlowId(0), &old, 1.0);
            let batch = world.add_batch(vec![FlowUpdate::new(FlowId(0), Some(old), new, 1.0)]);
            let mut sim = simulation(world);
            sim.schedule_at(SimTime::ZERO, Event::Trigger { batch });
            assert!(sim.run().drained());
            let events = sim.events_delivered();
            let world = sim.into_world();
            (
                events,
                world.metrics().completions.clone(),
                world.violations,
            )
        };
        assert_eq!(run(false), run(true));
    }

    /// A chooser that drops every control message stalls the update (no
    /// completion) without ever breaking consistency.
    #[test]
    fn drop_all_chooser_stalls_but_stays_consistent() {
        struct DropAll;
        impl p4update_des::Chooser for DropAll {
            fn choose(&mut self, kind: ChoiceKind, _arity: usize) -> usize {
                match kind {
                    ChoiceKind::TieBreak => 0,
                    ChoiceKind::Fault => 1,     // drop
                    ChoiceKind::Byzantine => 0, // honest
                }
            }
        }
        let topo = topologies::fig1();
        let config = SimConfig::new(TimingConfig::wan_multi_flow(topo.centroid()), 1)
            .paranoid()
            .with_fault_choices(crate::config::FaultChoiceConfig::default());
        let mut world = NetworkSim::new(topo, System::P4Update(Strategy::Auto), config, None);
        let old = Path::new(topologies::fig1_old_path());
        let new = Path::new(topologies::fig1_new_path());
        world.install_initial_path(FlowId(0), &old, 1.0);
        let batch = world.add_batch(vec![FlowUpdate::new(FlowId(0), Some(old), new, 1.0)]);
        let mut sim = simulation(world).with_chooser(Box::new(DropAll));
        sim.schedule_at(SimTime::ZERO, Event::Trigger { batch });
        assert!(sim.run().drained());
        let world = sim.into_world();
        assert!(world.metrics().completions.is_empty());
        assert!(world.violations.is_empty(), "{:?}", world.violations);
        assert!(world.metrics().control_drops > 0);
    }

    /// Installing the byzantine catalog without ever taking a lying
    /// alternative changes nothing: alternative 0 draws no randomness and
    /// schedules nothing, so the run is byte-identical to the plain
    /// engine.
    #[test]
    fn byzantine_catalog_with_default_chooser_changes_nothing() {
        let run = |byz: bool| {
            let topo = topologies::fig1();
            let mut config =
                SimConfig::new(TimingConfig::wan_multi_flow(topo.centroid()), 1).paranoid();
            if byz {
                config = config.with_byzantine(crate::config::ByzantineConfig::default());
            }
            let mut world = NetworkSim::new(topo, System::P4Update(Strategy::Auto), config, None);
            let old = Path::new(topologies::fig1_old_path());
            let new = Path::new(topologies::fig1_new_path());
            world.install_initial_path(FlowId(0), &old, 1.0);
            let batch = world.add_batch(vec![FlowUpdate::new(FlowId(0), Some(old), new, 1.0)]);
            let mut sim = simulation(world);
            sim.schedule_at(SimTime::ZERO, Event::Trigger { batch });
            assert!(sim.run().drained());
            let events = sim.events_delivered();
            let world = sim.into_world();
            assert!(world.byz_outcomes.is_empty());
            (
                events,
                world.metrics().completions.clone(),
                world.violations,
            )
        };
        assert_eq!(run(false), run(true));
    }

    /// A switch that always lies about its dependency labels is caught by
    /// its upstream neighbor's local verification: the lie is rejected
    /// with an alarm, recorded as a `ForgedReject`, and no real
    /// consistency breach occurs.
    #[test]
    fn p4update_rejects_a_dependency_lie_locally() {
        struct AlwaysLie;
        impl p4update_des::Chooser for AlwaysLie {
            fn choose(&mut self, kind: ChoiceKind, _arity: usize) -> usize {
                match kind {
                    ChoiceKind::Byzantine => 1,
                    _ => 0,
                }
            }
        }
        let topo = topologies::fig1();
        let config = SimConfig::new(TimingConfig::wan_multi_flow(topo.centroid()), 1)
            .paranoid()
            .with_byzantine(crate::config::ByzantineConfig {
                vector: Some(ByzVector::DependencyLie),
                ..Default::default()
            });
        let mut world = NetworkSim::new(topo, System::P4Update(Strategy::Auto), config, None);
        let old = Path::new(topologies::fig1_old_path());
        let new = Path::new(topologies::fig1_new_path());
        world.install_initial_path(FlowId(0), &old, 1.0);
        let batch = world.add_batch(vec![FlowUpdate::new(FlowId(0), Some(old), new, 1.0)]);
        let mut sim = simulation(world).with_chooser(Box::new(AlwaysLie));
        sim.schedule_at(SimTime::ZERO, Event::Trigger { batch });
        assert!(sim.run().drained());
        let world = sim.into_world();
        assert!(
            world
                .byz_outcomes
                .iter()
                .any(|o| matches!(o.disposition, ByzDisposition::Rejected(_))),
            "no lie was rejected: {:?}",
            world.byz_outcomes
        );
        assert!(world
            .violations
            .iter()
            .any(|(_, v)| v.is_forgery_rejection()));
        // Defense records only — no actual safety breach.
        assert!(world
            .violations
            .iter()
            .all(|(_, v)| v.is_forgery_rejection()));
        assert_eq!(world.liars.len(), 1);
    }

    /// Deterministic mid-update failover: the standby replica takes over
    /// and the §11 recovery timer finishes the update, despite the
    /// replication-lag window having swallowed part of the primary's
    /// feedback.
    #[test]
    fn controller_failover_mid_update_still_completes() {
        let topo = topologies::fig1();
        let config = SimConfig::new(TimingConfig::wan_multi_flow(topo.centroid()), 1)
            .paranoid()
            .with_retry_ms(40.0)
            .with_replication(crate::config::ReplicationConfig {
                replicas: 2,
                failover_at_ms: 50.0,
                lag_ms: 25.0,
            });
        let mut world = NetworkSim::new(topo, System::P4Update(Strategy::Auto), config, None);
        let old = Path::new(topologies::fig1_old_path());
        let new = Path::new(topologies::fig1_new_path());
        world.install_initial_path(FlowId(0), &old, 1.0);
        let batch = world.add_batch(vec![FlowUpdate::new(FlowId(0), Some(old), new, 1.0)]);
        let mut sim = simulation(world);
        sim.schedule_at(SimTime::ZERO, Event::Trigger { batch });
        assert!(sim.run().drained());
        let world = sim.into_world();
        assert!(world.failed_over);
        assert!(world.standbys.is_empty());
        assert!(
            world
                .metrics()
                .completions
                .iter()
                .any(|&(_, f, _)| f == FlowId(0)),
            "update did not complete after failover"
        );
        assert!(world.violations.is_empty(), "{:?}", world.violations);
    }

    #[test]
    fn transit_uses_link_latency_for_neighbors() {
        let sim = basic_sim(System::P4Update(Strategy::Auto));
        assert_eq!(
            sim.transit(NodeId(0), NodeId(1)),
            SimDuration::from_millis(20)
        );
        // Non-adjacent: 0 to 7 over >= 3 links at 20ms plus relay cost.
        let t = sim.transit(NodeId(0), NodeId(7));
        assert!(t >= SimDuration::from_millis(60));
    }
}
