//! Measurement collection: packet traces (Fig. 2's sequence plots), flow
//! update completion times (Fig. 4 / Fig. 7), alarms, and drop accounting.
//!
//! Collection goes through the [`MetricsSink`] seam so callers choose
//! fidelity per run:
//!
//! - [`Metrics`] — the full-recording sink: every packet arrival,
//!   delivery, and drop is kept as an event series. Tests and figure
//!   regeneration depend on these series; memory grows with traffic.
//! - [`StreamingMetrics`] — O(1)-memory sink for scale runs: per-packet
//!   series become counters plus a fixed-size [`Reservoir`], while
//!   completions and alarms (bounded by the number of flow updates, not
//!   by traffic) stay exact.
//! - [`NullMetrics`] — records nothing; pure-throughput measurements.
//!
//! Sinks are observation-only: no simulation decision reads a sink, so
//! swapping sinks can never perturb event order (the equivalence test in
//! `tests/sink_equivalence.rs` pins this).

use p4update_dataplane::DropReason;
use p4update_des::{Reservoir, SimTime};
use p4update_messages::{DataPacket, RejectReason};
use p4update_net::{FlowId, NodeId, Version};

/// Aggregate counters every sink can report cheaply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsCounts {
    /// Data-packet arrivals at switches.
    pub arrivals: u64,
    /// Data-packet deliveries at egress switches.
    pub deliveries: u64,
    /// Data-packet drops (all reasons).
    pub drops: u64,
    /// Drops due to TTL expiry (loop deaths).
    pub ttl_deaths: u64,
    /// Flow update completions.
    pub completions: u64,
    /// Alarms received by the controller.
    pub alarms: u64,
    /// Batch triggers.
    pub triggers: u64,
    /// Control messages lost to fault injection.
    pub control_drops: u64,
    /// Update-notification deliveries at switches.
    pub unm_deliveries: u64,
    /// Flows whose triggered update never completed within the run
    /// (recorded by `NetworkSim::record_stranded_flows` at end of run —
    /// e.g. ez-Segway's capacity-wait deadlocks).
    pub stranded_flows: u64,
}

/// Where the simulated network reports its measurements.
///
/// The `record_*` half is called by `sim::network` on the hot path; the
/// query half is what experiment harnesses read afterwards. Completions
/// and alarms are `O(#updates)`, so every sink (except the null sink)
/// keeps them exact — the multi-flow completion-time metric must not
/// depend on which fidelity was chosen.
pub trait MetricsSink: Send {
    /// A data packet arrived at a switch.
    fn record_arrival(&mut self, t: SimTime, node: NodeId, pkt: DataPacket);
    /// A data packet was delivered at its egress.
    fn record_delivery(&mut self, t: SimTime, node: NodeId, pkt: DataPacket);
    /// A data packet was dropped.
    fn record_drop(&mut self, t: SimTime, node: NodeId, pkt: DataPacket, reason: DropReason);
    /// The controller learned a flow update completed.
    fn record_completion(&mut self, t: SimTime, flow: FlowId, version: Version);
    /// The controller received an alarm.
    fn record_alarm(&mut self, t: SimTime, flow: FlowId, reason: RejectReason);
    /// A batch trigger fired.
    fn record_trigger(&mut self, t: SimTime, batch: usize);
    /// A control message was lost to fault injection.
    fn record_control_drop(&mut self);
    /// An update notification (UNM) was delivered at a switch.
    fn record_unm_delivery(&mut self, t: SimTime, node: NodeId);
    /// A flow's triggered update never completed within the run (end-of-
    /// run accounting; see `NetworkSim::record_stranded_flows`).
    fn record_stranded(&mut self, flow: FlowId);

    /// Aggregate counters.
    fn counts(&self) -> MetricsCounts;
    /// Completion events `(time, flow, version)`; empty for the null sink.
    fn completions(&self) -> &[(SimTime, FlowId, Version)];
    /// Alarm events `(time, flow, reason)`; empty for the null sink.
    fn alarms(&self) -> &[(SimTime, FlowId, RejectReason)];
    /// Flows recorded as stranded; empty for the null sink.
    fn stranded(&self) -> &[FlowId];

    /// Downcast to the full-recording sink, when this is one. The
    /// harness's `NetworkSim::metrics()` convenience goes through here.
    fn as_full(&self) -> Option<&Metrics> {
        None
    }

    /// Completion time of `flow` at `version`, if it completed.
    fn completion_of(&self, flow: FlowId, version: Version) -> Option<SimTime> {
        self.completions()
            .iter()
            .find(|&&(_, f, v)| f == flow && v == version)
            .map(|&(t, _, _)| t)
    }

    /// Completion time of the *last* flow among `flows` (the multi-flow
    /// metric), if all completed.
    fn last_completion(&self, flows: &[FlowId]) -> Option<SimTime> {
        let mut last = SimTime::ZERO;
        for &f in flows {
            let t = self
                .completions()
                .iter()
                .filter(|&&(_, g, _)| g == f)
                .map(|&(t, _, _)| t)
                .max()?;
            last = last.max(t);
        }
        Some(last)
    }
}

/// All measurements of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Every data-packet arrival at a switch: `(time, switch, packet)`.
    /// Fig. 2b plots these for one switch.
    pub arrivals: Vec<(SimTime, NodeId, DataPacket)>,
    /// Deliveries at egress switches (Fig. 2c).
    pub deliveries: Vec<(SimTime, NodeId, DataPacket)>,
    /// Dropped packets with reasons (TTL deaths in the Fig. 2 loop).
    pub drops: Vec<(SimTime, NodeId, DataPacket, DropReason)>,
    /// Flow update completions as learned by the controller.
    pub completions: Vec<(SimTime, FlowId, Version)>,
    /// Alarms the controller received.
    pub alarms: Vec<(SimTime, FlowId, RejectReason)>,
    /// Trigger times per batch index.
    pub triggers: Vec<(SimTime, usize)>,
    /// Control messages lost to fault injection.
    pub control_drops: u64,
    /// Update-notification deliveries per switch (diagnostics for loss
    /// recovery analysis).
    pub unm_deliveries: Vec<(SimTime, NodeId)>,
    /// Flows whose triggered update never completed within the run.
    pub stranded: Vec<FlowId>,
}

impl MetricsSink for Metrics {
    fn record_arrival(&mut self, t: SimTime, node: NodeId, pkt: DataPacket) {
        self.arrivals.push((t, node, pkt));
    }

    fn record_delivery(&mut self, t: SimTime, node: NodeId, pkt: DataPacket) {
        self.deliveries.push((t, node, pkt));
    }

    fn record_drop(&mut self, t: SimTime, node: NodeId, pkt: DataPacket, reason: DropReason) {
        self.drops.push((t, node, pkt, reason));
    }

    fn record_completion(&mut self, t: SimTime, flow: FlowId, version: Version) {
        self.completions.push((t, flow, version));
    }

    fn record_alarm(&mut self, t: SimTime, flow: FlowId, reason: RejectReason) {
        self.alarms.push((t, flow, reason));
    }

    fn record_trigger(&mut self, t: SimTime, batch: usize) {
        self.triggers.push((t, batch));
    }

    fn record_control_drop(&mut self) {
        self.control_drops += 1;
    }

    fn record_unm_delivery(&mut self, t: SimTime, node: NodeId) {
        self.unm_deliveries.push((t, node));
    }

    fn record_stranded(&mut self, flow: FlowId) {
        self.stranded.push(flow);
    }

    fn counts(&self) -> MetricsCounts {
        MetricsCounts {
            arrivals: self.arrivals.len() as u64,
            deliveries: self.deliveries.len() as u64,
            drops: self.drops.len() as u64,
            ttl_deaths: self.ttl_deaths() as u64,
            completions: self.completions.len() as u64,
            alarms: self.alarms.len() as u64,
            triggers: self.triggers.len() as u64,
            control_drops: self.control_drops,
            unm_deliveries: self.unm_deliveries.len() as u64,
            stranded_flows: self.stranded.len() as u64,
        }
    }

    fn completions(&self) -> &[(SimTime, FlowId, Version)] {
        &self.completions
    }

    fn alarms(&self) -> &[(SimTime, FlowId, RejectReason)] {
        &self.alarms
    }

    fn stranded(&self) -> &[FlowId] {
        &self.stranded
    }

    fn as_full(&self) -> Option<&Metrics> {
        Some(self)
    }
}

impl Metrics {
    /// Completion time of `flow` at `version`, if it completed.
    pub fn completion_of(&self, flow: FlowId, version: Version) -> Option<SimTime> {
        self.completions
            .iter()
            .find(|&&(_, f, v)| f == flow && v == version)
            .map(|&(t, _, _)| t)
    }

    /// Completion time of the *last* flow among `flows` (the multi-flow
    /// metric), if all completed.
    pub fn last_completion(&self, flows: &[FlowId]) -> Option<SimTime> {
        let mut last = SimTime::ZERO;
        for &f in flows {
            let t = self
                .completions
                .iter()
                .filter(|&&(_, g, _)| g == f)
                .map(|&(t, _, _)| t)
                .max()?;
            last = last.max(t);
        }
        Some(last)
    }

    /// Arrival times and sequence numbers at one switch (a Fig. 2b series).
    pub fn arrivals_at(&self, node: NodeId) -> Vec<(SimTime, u32)> {
        self.arrivals
            .iter()
            .filter(|&&(_, n, _)| n == node)
            .map(|&(t, _, p)| (t, p.seq))
            .collect()
    }

    /// Count of packets seen more than once at a switch (looped packets).
    pub fn duplicate_arrivals_at(&self, node: NodeId) -> usize {
        let mut seen = std::collections::BTreeMap::new();
        for &(_, n, p) in &self.arrivals {
            if n == node {
                *seen.entry((p.flow, p.seq)).or_insert(0usize) += 1;
            }
        }
        seen.values().filter(|&&c| c > 1).count()
    }

    /// Sequence numbers delivered at a switch, ordered by time.
    pub fn delivered_seqs_at(&self, node: NodeId) -> Vec<u32> {
        let mut v: Vec<(SimTime, u32)> = self
            .deliveries
            .iter()
            .filter(|&&(_, n, _)| n == node)
            .map(|&(t, _, p)| (t, p.seq))
            .collect();
        v.sort();
        v.into_iter().map(|(_, s)| s).collect()
    }

    /// Number of TTL-expiry drops (loop deaths).
    pub fn ttl_deaths(&self) -> usize {
        self.drops
            .iter()
            .filter(|&&(_, _, _, r)| r == DropReason::TtlExpired)
            .count()
    }
}

/// O(1)-memory sink for scale runs: per-packet series become counters
/// plus one bounded [`Reservoir`] of data-plane delivery latencies
/// (delivery time minus the batch trigger time, in milliseconds), while
/// completions and alarms stay exact event lists (bounded by the number
/// of flow updates).
#[derive(Debug, Clone)]
pub struct StreamingMetrics {
    counts: MetricsCounts,
    completions: Vec<(SimTime, FlowId, Version)>,
    alarms: Vec<(SimTime, FlowId, RejectReason)>,
    stranded: Vec<FlowId>,
    delivery_times: Reservoir,
    first_trigger: Option<SimTime>,
}

impl Default for StreamingMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingMetrics {
    /// Default reservoir: 1024 retained samples, fixed seed (the sink is
    /// deterministic and independent of the simulation's RNG streams).
    pub fn new() -> Self {
        Self::with_reservoir(1024, 0x9e37_79b9_7f4a_7c15)
    }

    /// Choose the reservoir size and seed explicitly.
    pub fn with_reservoir(capacity: usize, seed: u64) -> Self {
        StreamingMetrics {
            counts: MetricsCounts::default(),
            completions: Vec::new(),
            alarms: Vec::new(),
            stranded: Vec::new(),
            delivery_times: Reservoir::new(capacity, seed),
            first_trigger: None,
        }
    }

    /// The bounded sample of delivery latencies (ms since first trigger).
    pub fn delivery_times(&self) -> &Reservoir {
        &self.delivery_times
    }
}

impl MetricsSink for StreamingMetrics {
    fn record_arrival(&mut self, _t: SimTime, _node: NodeId, _pkt: DataPacket) {
        self.counts.arrivals += 1;
    }

    fn record_delivery(&mut self, t: SimTime, _node: NodeId, _pkt: DataPacket) {
        self.counts.deliveries += 1;
        let base = self.first_trigger.unwrap_or(SimTime::ZERO);
        self.delivery_times
            .push(t.saturating_since(base).as_millis_f64());
    }

    fn record_drop(&mut self, _t: SimTime, _node: NodeId, _pkt: DataPacket, reason: DropReason) {
        self.counts.drops += 1;
        if reason == DropReason::TtlExpired {
            self.counts.ttl_deaths += 1;
        }
    }

    fn record_completion(&mut self, t: SimTime, flow: FlowId, version: Version) {
        self.counts.completions += 1;
        self.completions.push((t, flow, version));
    }

    fn record_alarm(&mut self, t: SimTime, flow: FlowId, reason: RejectReason) {
        self.counts.alarms += 1;
        self.alarms.push((t, flow, reason));
    }

    fn record_trigger(&mut self, t: SimTime, _batch: usize) {
        self.counts.triggers += 1;
        self.first_trigger.get_or_insert(t);
    }

    fn record_control_drop(&mut self) {
        self.counts.control_drops += 1;
    }

    fn record_unm_delivery(&mut self, _t: SimTime, _node: NodeId) {
        self.counts.unm_deliveries += 1;
    }

    fn record_stranded(&mut self, flow: FlowId) {
        self.counts.stranded_flows += 1;
        self.stranded.push(flow);
    }

    fn counts(&self) -> MetricsCounts {
        self.counts
    }

    fn completions(&self) -> &[(SimTime, FlowId, Version)] {
        &self.completions
    }

    fn alarms(&self) -> &[(SimTime, FlowId, RejectReason)] {
        &self.alarms
    }

    fn stranded(&self) -> &[FlowId] {
        &self.stranded
    }
}

/// Records nothing; for pure-throughput measurements.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMetrics;

impl MetricsSink for NullMetrics {
    fn record_arrival(&mut self, _t: SimTime, _node: NodeId, _pkt: DataPacket) {}
    fn record_delivery(&mut self, _t: SimTime, _node: NodeId, _pkt: DataPacket) {}
    fn record_drop(&mut self, _t: SimTime, _node: NodeId, _pkt: DataPacket, _reason: DropReason) {}
    fn record_completion(&mut self, _t: SimTime, _flow: FlowId, _version: Version) {}
    fn record_alarm(&mut self, _t: SimTime, _flow: FlowId, _reason: RejectReason) {}
    fn record_trigger(&mut self, _t: SimTime, _batch: usize) {}
    fn record_control_drop(&mut self) {}
    fn record_unm_delivery(&mut self, _t: SimTime, _node: NodeId) {}
    fn record_stranded(&mut self, _flow: FlowId) {}

    fn counts(&self) -> MetricsCounts {
        MetricsCounts::default()
    }

    fn completions(&self) -> &[(SimTime, FlowId, Version)] {
        &[]
    }

    fn alarms(&self) -> &[(SimTime, FlowId, RejectReason)] {
        &[]
    }

    fn stranded(&self) -> &[FlowId] {
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u32) -> DataPacket {
        DataPacket {
            flow: FlowId(0),
            seq,
            ttl: 64,
            tag: None,
        }
    }

    fn at(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn completion_lookup() {
        let mut m = Metrics::default();
        m.record_completion(at(5), FlowId(1), Version(2));
        m.record_completion(at(9), FlowId(2), Version(2));
        assert_eq!(m.completion_of(FlowId(1), Version(2)), Some(at(5)));
        assert_eq!(m.completion_of(FlowId(1), Version(3)), None);
        assert_eq!(m.last_completion(&[FlowId(1), FlowId(2)]), Some(at(9)));
        assert_eq!(m.last_completion(&[FlowId(1), FlowId(3)]), None);
    }

    #[test]
    fn duplicate_arrival_counting() {
        let mut m = Metrics::default();
        m.record_arrival(at(1), NodeId(1), pkt(10));
        m.record_arrival(at(2), NodeId(1), pkt(10));
        m.record_arrival(at(3), NodeId(1), pkt(11));
        m.record_arrival(at(3), NodeId(2), pkt(12));
        assert_eq!(m.duplicate_arrivals_at(NodeId(1)), 1);
        assert_eq!(m.duplicate_arrivals_at(NodeId(2)), 0);
        assert_eq!(m.arrivals_at(NodeId(1)).len(), 3);
    }

    #[test]
    fn delivered_seqs_are_time_ordered() {
        let mut m = Metrics::default();
        m.record_delivery(at(9), NodeId(4), pkt(2));
        m.record_delivery(at(3), NodeId(4), pkt(1));
        assert_eq!(m.delivered_seqs_at(NodeId(4)), vec![1, 2]);
    }

    #[test]
    fn ttl_deaths_count_only_ttl_drops() {
        let mut m = Metrics::default();
        m.record_drop(at(1), NodeId(0), pkt(1), DropReason::TtlExpired);
        m.record_drop(at(2), NodeId(0), pkt(2), DropReason::NoRule);
        assert_eq!(m.ttl_deaths(), 1);
    }

    /// Feed the same event stream to the full and streaming sinks: the
    /// aggregate counters, completions, and alarms must agree.
    #[test]
    fn streaming_sink_matches_full_sink_aggregates() {
        let mut full = Metrics::default();
        let mut streaming = StreamingMetrics::new();
        let sinks: [&mut dyn MetricsSink; 2] = [&mut full, &mut streaming];
        for sink in sinks {
            sink.record_trigger(at(0), 0);
            sink.record_arrival(at(1), NodeId(0), pkt(1));
            sink.record_arrival(at(2), NodeId(1), pkt(1));
            sink.record_delivery(at(3), NodeId(1), pkt(1));
            sink.record_drop(at(4), NodeId(0), pkt(2), DropReason::TtlExpired);
            sink.record_drop(at(5), NodeId(0), pkt(3), DropReason::NoRule);
            sink.record_completion(at(6), FlowId(0), Version(2));
            sink.record_alarm(at(7), FlowId(1), RejectReason::InsufficientCapacity);
            sink.record_control_drop();
            sink.record_unm_delivery(at(8), NodeId(1));
            sink.record_stranded(FlowId(3));
        }
        assert_eq!(full.counts(), streaming.counts());
        assert_eq!(full.counts().stranded_flows, 1);
        assert_eq!(
            MetricsSink::completions(&full),
            MetricsSink::completions(&streaming)
        );
        assert_eq!(MetricsSink::alarms(&full), MetricsSink::alarms(&streaming));
        assert_eq!(
            MetricsSink::stranded(&full),
            MetricsSink::stranded(&streaming)
        );
        assert_eq!(streaming.completion_of(FlowId(0), Version(2)), Some(at(6)));
        assert_eq!(streaming.last_completion(&[FlowId(0)]), Some(at(6)));
        assert!(full.as_full().is_some());
        assert!(streaming.as_full().is_none());
        // Delivery latency is measured from the first trigger.
        assert_eq!(streaming.delivery_times().len(), 1);
        assert!((streaming.delivery_times().max() - 3.0).abs() < 1e-9);
    }

    /// The streaming sink's memory is bounded by its reservoir capacity no
    /// matter how much traffic is recorded.
    #[test]
    fn streaming_sink_memory_is_bounded() {
        let mut s = StreamingMetrics::with_reservoir(32, 1);
        s.record_trigger(at(0), 0);
        for i in 0..100_000u64 {
            s.record_arrival(at(i), NodeId(0), pkt(i as u32));
            s.record_delivery(at(i + 1), NodeId(1), pkt(i as u32));
        }
        assert_eq!(s.counts().arrivals, 100_000);
        assert_eq!(s.counts().deliveries, 100_000);
        assert_eq!(s.delivery_times().retained(), 32);
        assert!(s.completions.is_empty());
    }

    #[test]
    fn null_sink_records_nothing() {
        let mut n = NullMetrics;
        n.record_arrival(at(1), NodeId(0), pkt(1));
        n.record_completion(at(2), FlowId(0), Version(2));
        n.record_control_drop();
        n.record_stranded(FlowId(0));
        assert_eq!(n.counts(), MetricsCounts::default());
        assert!(n.completions().is_empty());
        assert!(n.stranded().is_empty());
        assert_eq!(n.completion_of(FlowId(0), Version(2)), None);
    }
}
