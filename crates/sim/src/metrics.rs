//! Measurement collection: packet traces (Fig. 2's sequence plots), flow
//! update completion times (Fig. 4 / Fig. 7), alarms, and drop accounting.

use p4update_dataplane::DropReason;
use p4update_des::SimTime;
use p4update_messages::{DataPacket, RejectReason};
use p4update_net::{FlowId, NodeId, Version};

/// All measurements of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Every data-packet arrival at a switch: `(time, switch, packet)`.
    /// Fig. 2b plots these for one switch.
    pub arrivals: Vec<(SimTime, NodeId, DataPacket)>,
    /// Deliveries at egress switches (Fig. 2c).
    pub deliveries: Vec<(SimTime, NodeId, DataPacket)>,
    /// Dropped packets with reasons (TTL deaths in the Fig. 2 loop).
    pub drops: Vec<(SimTime, NodeId, DataPacket, DropReason)>,
    /// Flow update completions as learned by the controller.
    pub completions: Vec<(SimTime, FlowId, Version)>,
    /// Alarms the controller received.
    pub alarms: Vec<(SimTime, FlowId, RejectReason)>,
    /// Trigger times per batch index.
    pub triggers: Vec<(SimTime, usize)>,
    /// Control messages lost to fault injection.
    pub control_drops: u64,
    /// Update-notification deliveries per switch (diagnostics for loss
    /// recovery analysis).
    pub unm_deliveries: Vec<(SimTime, NodeId)>,
}

impl Metrics {
    pub(crate) fn record_arrival(&mut self, t: SimTime, node: NodeId, pkt: DataPacket) {
        self.arrivals.push((t, node, pkt));
    }

    pub(crate) fn record_delivery(&mut self, t: SimTime, node: NodeId, pkt: DataPacket) {
        self.deliveries.push((t, node, pkt));
    }

    pub(crate) fn record_drop(
        &mut self,
        t: SimTime,
        node: NodeId,
        pkt: DataPacket,
        reason: DropReason,
    ) {
        self.drops.push((t, node, pkt, reason));
    }

    pub(crate) fn record_completion(&mut self, t: SimTime, flow: FlowId, version: Version) {
        self.completions.push((t, flow, version));
    }

    pub(crate) fn record_alarm(&mut self, t: SimTime, flow: FlowId, reason: RejectReason) {
        self.alarms.push((t, flow, reason));
    }

    pub(crate) fn record_trigger(&mut self, t: SimTime, batch: usize) {
        self.triggers.push((t, batch));
    }

    /// Completion time of `flow` at `version`, if it completed.
    pub fn completion_of(&self, flow: FlowId, version: Version) -> Option<SimTime> {
        self.completions
            .iter()
            .find(|&&(_, f, v)| f == flow && v == version)
            .map(|&(t, _, _)| t)
    }

    /// Completion time of the *last* flow among `flows` (the multi-flow
    /// metric), if all completed.
    pub fn last_completion(&self, flows: &[FlowId]) -> Option<SimTime> {
        let mut last = SimTime::ZERO;
        for &f in flows {
            let t = self
                .completions
                .iter()
                .filter(|&&(_, g, _)| g == f)
                .map(|&(t, _, _)| t)
                .max()?;
            last = last.max(t);
        }
        Some(last)
    }

    /// Arrival times and sequence numbers at one switch (a Fig. 2b series).
    pub fn arrivals_at(&self, node: NodeId) -> Vec<(SimTime, u32)> {
        self.arrivals
            .iter()
            .filter(|&&(_, n, _)| n == node)
            .map(|&(t, _, p)| (t, p.seq))
            .collect()
    }

    /// Count of packets seen more than once at a switch (looped packets).
    pub fn duplicate_arrivals_at(&self, node: NodeId) -> usize {
        let mut seen = std::collections::BTreeMap::new();
        for &(_, n, p) in &self.arrivals {
            if n == node {
                *seen.entry((p.flow, p.seq)).or_insert(0usize) += 1;
            }
        }
        seen.values().filter(|&&c| c > 1).count()
    }

    /// Sequence numbers delivered at a switch, ordered by time.
    pub fn delivered_seqs_at(&self, node: NodeId) -> Vec<u32> {
        let mut v: Vec<(SimTime, u32)> = self
            .deliveries
            .iter()
            .filter(|&&(_, n, _)| n == node)
            .map(|&(t, _, p)| (t, p.seq))
            .collect();
        v.sort();
        v.into_iter().map(|(_, s)| s).collect()
    }

    /// Number of TTL-expiry drops (loop deaths).
    pub fn ttl_deaths(&self) -> usize {
        self.drops
            .iter()
            .filter(|&&(_, _, _, r)| r == DropReason::TtlExpired)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u32) -> DataPacket {
        DataPacket {
            flow: FlowId(0),
            seq,
            ttl: 64,
            tag: None,
        }
    }

    fn at(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn completion_lookup() {
        let mut m = Metrics::default();
        m.record_completion(at(5), FlowId(1), Version(2));
        m.record_completion(at(9), FlowId(2), Version(2));
        assert_eq!(m.completion_of(FlowId(1), Version(2)), Some(at(5)));
        assert_eq!(m.completion_of(FlowId(1), Version(3)), None);
        assert_eq!(m.last_completion(&[FlowId(1), FlowId(2)]), Some(at(9)));
        assert_eq!(m.last_completion(&[FlowId(1), FlowId(3)]), None);
    }

    #[test]
    fn duplicate_arrival_counting() {
        let mut m = Metrics::default();
        m.record_arrival(at(1), NodeId(1), pkt(10));
        m.record_arrival(at(2), NodeId(1), pkt(10));
        m.record_arrival(at(3), NodeId(1), pkt(11));
        m.record_arrival(at(3), NodeId(2), pkt(12));
        assert_eq!(m.duplicate_arrivals_at(NodeId(1)), 1);
        assert_eq!(m.duplicate_arrivals_at(NodeId(2)), 0);
        assert_eq!(m.arrivals_at(NodeId(1)).len(), 3);
    }

    #[test]
    fn delivered_seqs_are_time_ordered() {
        let mut m = Metrics::default();
        m.record_delivery(at(9), NodeId(4), pkt(2));
        m.record_delivery(at(3), NodeId(4), pkt(1));
        assert_eq!(m.delivered_seqs_at(NodeId(4)), vec![1, 2]);
    }

    #[test]
    fn ttl_deaths_count_only_ttl_drops() {
        let mut m = Metrics::default();
        m.record_drop(at(1), NodeId(0), pkt(1), DropReason::TtlExpired);
        m.record_drop(at(2), NodeId(0), pkt(2), DropReason::NoRule);
        assert_eq!(m.ttl_deaths(), 1);
    }
}
