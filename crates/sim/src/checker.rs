//! The global consistency checker: the paper's three safety properties
//! (§5) as executable invariants over the simulated network state.
//!
//! The checker is the *oracle* the verification claims are tested against:
//! Theorems 1–4 and Corollaries 1–4 say P4Update never violates these
//! properties even under inconsistent, reordered, or lost control
//! messages; Fig. 2 shows ez-Segway does. Tests run the checker after
//! every event and assert presence or absence of violations accordingly.

use crate::table::SwitchTable;
use p4update_net::{FlowId, NodeId, Topology};
use std::collections::BTreeMap;

// The violation type itself lives in `p4update-core` (shared with the
// schedule explorer's trace corpus); re-exported here so harness users
// keep importing it from the checker.
pub use p4update_core::Violation;

/// Static facts about a flow the checker needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// The flow's ingress switch.
    pub ingress: NodeId,
    /// The flow's egress switch.
    pub egress: NodeId,
    /// The flow's size bound, in capacity units.
    pub size: f64,
}

/// Walk one flow's forwarding function from its ingress, collecting the
/// traversed directed links; reports a loop or blackhole if found.
fn walk_flow(
    flow: FlowId,
    spec: &FlowSpec,
    switches: &SwitchTable,
    usage: &mut BTreeMap<(NodeId, NodeId), f64>,
    out: &mut Vec<Violation>,
) {
    let mut visited: Vec<NodeId> = Vec::new();
    let mut cur = spec.ingress;
    loop {
        if let Some(pos) = visited.iter().position(|&n| n == cur) {
            out.push(Violation::Loop {
                flow,
                cycle: visited[pos..].to_vec(),
            });
            return;
        }
        visited.push(cur);
        let Some(sw) = switches.get(cur) else {
            out.push(Violation::Blackhole { flow, at: cur });
            return;
        };
        let entry = sw.state.uib.read(flow);
        if !entry.has_active_rule() {
            out.push(Violation::Blackhole { flow, at: cur });
            return;
        }
        match entry.active_next_hop {
            None => return, // delivered at this switch (egress role)
            Some(next) => {
                *usage.entry((cur, next)).or_insert(0.0) += spec.size;
                cur = next;
            }
        }
    }
}

/// Check all three properties over the current network state. Flows whose
/// ingress has no rule yet (pre-deployment) are skipped — blackhole
/// freedom is a property of *installed* flows.
pub fn check(
    topo: &Topology,
    switches: &SwitchTable,
    flows: &BTreeMap<FlowId, FlowSpec>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut usage: BTreeMap<(NodeId, NodeId), f64> = BTreeMap::new();
    for (&flow, spec) in flows {
        let deployed = switches
            .get(spec.ingress)
            .is_some_and(|sw| sw.state.uib.read(flow).has_active_rule());
        if !deployed {
            continue;
        }
        walk_flow(flow, spec, switches, &mut usage, &mut violations);
    }
    for ((from, to), &load) in &usage {
        let capacity = topo
            .link_between(*from, *to)
            .map(|l| topo.link(l).capacity)
            .unwrap_or(0.0);
        if load > capacity + 1e-6 {
            violations.push(Violation::Congestion {
                from: *from,
                to: *to,
                load,
                capacity,
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4update_core::P4UpdateLogic;
    use p4update_dataplane::Switch;
    use p4update_des::SimDuration;
    use p4update_net::{TopologyBuilder, Version};

    fn ring4() -> Topology {
        let mut b = TopologyBuilder::new("ring");
        let v: Vec<_> = (0..4).map(|i| b.add_node(format!("n{i}"))).collect();
        b.add_link(v[0], v[1], SimDuration::from_millis(1), 2.0);
        b.add_link(v[1], v[2], SimDuration::from_millis(1), 2.0);
        b.add_link(v[2], v[3], SimDuration::from_millis(1), 2.0);
        b.add_link(v[3], v[1], SimDuration::from_millis(1), 2.0);
        b.build()
    }

    fn network(topo: &Topology) -> SwitchTable {
        SwitchTable::build(topo, |id| {
            Switch::new(id, topo, Box::new(P4UpdateLogic::new()))
        })
    }

    fn set_rule(switches: &mut SwitchTable, node: u32, flow: u32, next: Option<u32>) {
        switches
            .get_mut(NodeId(node))
            .unwrap()
            .state
            .uib
            .update(FlowId(flow), |e| {
                e.applied_version = Version(1);
                e.active_next_hop = next.map(NodeId);
            });
    }

    fn spec(ingress: u32, egress: u32, size: f64) -> FlowSpec {
        FlowSpec {
            ingress: NodeId(ingress),
            egress: NodeId(egress),
            size,
        }
    }

    #[test]
    fn clean_path_has_no_violations() {
        let topo = ring4();
        let mut sw = network(&topo);
        set_rule(&mut sw, 0, 0, Some(1));
        set_rule(&mut sw, 1, 0, Some(2));
        set_rule(&mut sw, 2, 0, None);
        let flows = BTreeMap::from([(FlowId(0), spec(0, 2, 1.0))]);
        assert!(check(&topo, &sw, &flows).is_empty());
    }

    #[test]
    fn undeployed_flow_is_skipped() {
        let topo = ring4();
        let sw = network(&topo);
        let flows = BTreeMap::from([(FlowId(0), spec(0, 2, 1.0))]);
        assert!(check(&topo, &sw, &flows).is_empty());
    }

    #[test]
    fn loop_is_detected_with_cycle_nodes() {
        let topo = ring4();
        let mut sw = network(&topo);
        // 0 -> 1 -> 2 -> 3 -> 1: cycle (1 2 3).
        set_rule(&mut sw, 0, 0, Some(1));
        set_rule(&mut sw, 1, 0, Some(2));
        set_rule(&mut sw, 2, 0, Some(3));
        set_rule(&mut sw, 3, 0, Some(1));
        let flows = BTreeMap::from([(FlowId(0), spec(0, 2, 1.0))]);
        let v = check(&topo, &sw, &flows);
        assert_eq!(v.len(), 1);
        match &v[0] {
            Violation::Loop { flow, cycle } => {
                assert_eq!(*flow, FlowId(0));
                assert_eq!(cycle, &[NodeId(1), NodeId(2), NodeId(3)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn blackhole_is_detected_mid_path() {
        let topo = ring4();
        let mut sw = network(&topo);
        set_rule(&mut sw, 0, 0, Some(1)); // 1 has no rule
        let flows = BTreeMap::from([(FlowId(0), spec(0, 2, 1.0))]);
        let v = check(&topo, &sw, &flows);
        assert_eq!(
            v,
            vec![Violation::Blackhole {
                flow: FlowId(0),
                at: NodeId(1)
            }]
        );
    }

    #[test]
    fn congestion_is_detected_per_directed_link() {
        let topo = ring4();
        let mut sw = network(&topo);
        // Two flows of size 1.5 on link (0,1) with capacity 2.0.
        for f in 0..2 {
            set_rule(&mut sw, 0, f, Some(1));
            set_rule(&mut sw, 1, f, None);
        }
        let flows = BTreeMap::from([(FlowId(0), spec(0, 1, 1.5)), (FlowId(1), spec(0, 1, 1.5))]);
        let v = check(&topo, &sw, &flows);
        assert_eq!(v.len(), 1);
        match &v[0] {
            Violation::Congestion {
                from,
                to,
                load,
                capacity,
            } => {
                assert_eq!((*from, *to), (NodeId(0), NodeId(1)));
                assert_eq!(*load, 3.0);
                assert_eq!(*capacity, 2.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn opposite_directions_do_not_share_capacity() {
        let topo = ring4();
        let mut sw = network(&topo);
        // Flow 0: 0->1; flow 1: 1->0. Each 1.5 on a 2.0 link: fine
        // full-duplex.
        set_rule(&mut sw, 0, 0, Some(1));
        set_rule(&mut sw, 1, 0, None);
        set_rule(&mut sw, 1, 1, Some(0));
        set_rule(&mut sw, 0, 1, None);
        let flows = BTreeMap::from([(FlowId(0), spec(0, 1, 1.5)), (FlowId(1), spec(1, 0, 1.5))]);
        assert!(check(&topo, &sw, &flows).is_empty());
    }
}
