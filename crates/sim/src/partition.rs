//! The partitioned parallel simulation engine.
//!
//! [`PartitionedSim`] runs a [`NetworkSim`] sharded along a
//! [`Partitioner`]'s cut: every switch partition becomes one shard with
//! its own event queue, switch state, and busy horizons; the controller
//! (with its RNG, busy horizon, and batch table) becomes one extra shard.
//! Shards advance independently inside a *conservative-lookahead window*
//! and exchange cross-shard events at a barrier when the window closes —
//! classic conservative parallel DES (CMB-style windows), specialized to
//! this simulator's timing model.
//!
//! # Why the merged order is byte-identical to the sequential engine
//!
//! The sequential engine delivers events in `(time, seq)` order where
//! `seq` is the global schedule order. The partitioned engine reproduces
//! that exact order:
//!
//! 1. **Windows are causally closed.** The lookahead `L` is the minimum
//!    over every cross-shard emission class of "how far in the future the
//!    emission must land": switch→switch crossings pay the switch
//!    processing time plus at least one inter-partition link
//!    ([`min_cross_partition_latency`]); switch→controller crossings pay
//!    processing plus the control-latency floor; controller→switch
//!    crossings pay the controller transmit slot plus the floor. With the
//!    window `[t_min, t_min + L)`, no shard can receive an event inside
//!    the window from another shard, so processing shards independently
//!    is safe. Every cross-shard emission is checked against the window
//!    at emission time — a violation is a `debug_assert!` panic (debug)
//!    or a [`LookaheadViolation`] error (release), never silent
//!    corruption.
//! 2. **Ties resolve exactly as sequentially.** Within a shard's window,
//!    pending events are either *resolved* (carrying their final global
//!    sequence number, assigned at a previous barrier — always smaller
//!    than any sequence number assigned this window) or *provisional*
//!    (emitted during this window, keyed by the shard's emission counter,
//!    which increases in the same order the sequential engine would have
//!    assigned sequence numbers). Popping "earliest time; resolved before
//!    provisional; lower emission index first" therefore equals the
//!    sequential `(time, seq)` order restricted to the shard.
//! 3. **The barrier replays the sequential schedule.** At the window
//!    barrier the shard-local delivery records are k-way merged in global
//!    `(time, seq)` order and every emission is assigned the next global
//!    sequence number in that order — exactly the number the sequential
//!    engine's `schedule_at` would have produced. Metrics-sink effects
//!    are buffered per delivery and replayed in the merged order, so the
//!    sink observes the byte-identical event stream.
//!
//! `tests/partition_equivalence.rs` enforces this equivalence
//! differentially at 1/2/4/8 partitions over the scenario registry.
//!
//! # Restrictions
//!
//! The parallel engine supports the deterministic fast path only; it
//! refuses (at [`PartitionedSim::new`]) configurations that need global
//! serialization anyway:
//!
//! - fault injection ([`crate::FaultConfig`] must be `NONE`) and fault
//!   choice points (they route through the exploration chooser, which is
//!   inherently a global sequential decision stream),
//! - paranoid per-event checking and the analysis gate (both walk global
//!   state between events),
//! - stochastic install delays (`InstallDelay::ExponentialMs` draws from
//!   the shared RNG at switch side; the supported `InstallDelay::None`
//!   keeps every RNG consumer on the controller shard — see
//!   [`Event::CtrlIngress`]),
//! - event budgets (a budget can expire mid-window; the sequential engine
//!   remains the tool for livelock hunting).

use crate::checker::{FlowSpec, Violation};
use crate::config::{ms, ControlLatency, FaultConfig, InstallDelay, SimConfig};
use crate::metrics::MetricsSink;
use crate::network::{ControllerImpl, Event, GateStats, NetworkSim, PathTables};
use crate::table::SwitchTable;
use p4update_analysis::{BatchAnalysis, Diagnostic};
use p4update_dataplane::{CtrlEffect, DropReason, Effect, Endpoint, Switch};
use p4update_des::{
    CalendarQueue, EventQueue, HeapQueue, QueueBackend, RunOutcome, SimDuration, SimRng, SimTime,
};
use p4update_messages::{DataPacket, Message, RejectReason};
use p4update_net::{
    min_cross_partition_latency, FlowId, FlowUpdate, NodeId, Partitioner, Topology, Version,
};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

/// A cross-shard event was emitted *inside* the current lookahead window
/// — the conservative bound was violated. In debug builds this is caught
/// by a `debug_assert!` panic at the emission site; in release builds the
/// run aborts with this error at the next barrier. Either way the
/// violation can never silently corrupt the merged event order.
#[derive(Debug, Clone, PartialEq)]
pub struct LookaheadViolation {
    /// Shard that emitted the offending event.
    pub from_shard: usize,
    /// Shard the event was addressed to.
    pub to_shard: usize,
    /// When the event was due.
    pub at: SimTime,
    /// End of the window that was being processed.
    pub window_end: SimTime,
}

impl std::fmt::Display for LookaheadViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conservative lookahead violated: shard {} emitted an event for shard {} at {} inside the window ending {}",
            self.from_shard, self.to_shard, self.at, self.window_end
        )
    }
}

/// How a delivery record keys into the global order.
#[derive(Debug, Clone, Copy)]
enum Key {
    /// Final global sequence number (assigned at a previous barrier or at
    /// seeding time).
    Resolved(u64),
    /// Emission index within the shard's current window; the barrier
    /// resolves it to a global sequence number via the emission ledger.
    Provisional(u32),
}

/// One delivered event, recorded shard-locally during a window: its
/// timestamp, order key, and how many emissions / sink effects it
/// produced (both consumed in order at the barrier).
#[derive(Debug, Clone, Copy)]
struct Record {
    at: SimTime,
    key: Key,
    n_emissions: u32,
    n_ops: u32,
}

/// One `schedule_at` call made during a window, in call order.
enum Emission {
    /// Same-shard emission; the event itself lives in the shard's side
    /// heap (or was already delivered sub-window). The barrier only needs
    /// to assign its global sequence number.
    Local { idx: u32 },
    /// Cross-shard emission; the event is carried to the barrier and
    /// pushed into the destination's queue with its assigned number.
    Out {
        dest: u32,
        at: SimTime,
        event: Option<Event>,
    },
}

/// A buffered metrics-sink call; replayed in merged global order at the
/// barrier so the sink cannot observe shard interleaving.
#[derive(Debug, Clone, Copy)]
enum SinkOp {
    Arrival(SimTime, NodeId, DataPacket),
    Delivery(SimTime, NodeId, DataPacket),
    PacketDrop(SimTime, NodeId, DataPacket, DropReason),
    Completion(SimTime, FlowId, Version),
    Alarm(SimTime, FlowId, RejectReason),
    Trigger(SimTime, usize),
    Unm(SimTime, NodeId),
}

/// Entry of a shard's side heap: an event emitted during the current
/// window, ordered by `(time, emission index)` — which clause 2 of the
/// module-level argument shows is `(time, seq)` order.
struct SideEntry {
    at: SimTime,
    idx: u32,
    event: Event,
}

impl PartialEq for SideEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.idx == other.idx
    }
}
impl Eq for SideEntry {}
impl PartialOrd for SideEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SideEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.idx).cmp(&(other.at, other.idx))
    }
}

/// Controller-shard state: everything of a [`NetworkSim`] that consumes
/// the run's RNG or serializes on the controller.
struct CtrlState {
    controller: ControllerImpl,
    rng: SimRng,
    ctrl_busy: SimTime,
    batches: Vec<Vec<FlowUpdate>>,
}

/// One shard: a slice of the world plus its event queue and the
/// per-window ledgers the barrier consumes.
struct ShardCtx {
    id: u32,
    ctrl_shard: u32,
    config: SimConfig,
    topo: Arc<Topology>,
    tables: Arc<PathTables>,
    /// Global node index → shard id, shared across shards.
    assign: Arc<Vec<u32>>,
    /// Events with resolved global sequence numbers.
    main: Box<dyn EventQueue<Event> + Send>,
    /// During-window emissions to this same shard, provisional keys.
    side: BinaryHeap<Reverse<SideEntry>>,
    /// End of the window currently being processed (exclusive).
    window_end: SimTime,
    /// Per-window ledgers, consumed by the barrier merge.
    records: Vec<Record>,
    emissions: Vec<Emission>,
    ops: Vec<SinkOp>,
    /// Emission counter within the current window.
    emitted: u32,
    /// First lookahead violation observed (release builds).
    violation: Option<LookaheadViolation>,
    // --- switch-shard state (empty on the controller shard) ---
    /// Global node index → local switch index (`u32::MAX` if unowned).
    local: Vec<u32>,
    /// Local switch index → global node id.
    nodes: Vec<NodeId>,
    switches: Vec<Switch>,
    busy: Vec<SimTime>,
    polling: Vec<bool>,
    scratch: Vec<Effect>,
    // --- controller-shard state (None on switch shards) ---
    ctrl: Option<CtrlState>,
}

fn new_queue(backend: QueueBackend) -> Box<dyn EventQueue<Event> + Send> {
    match backend {
        QueueBackend::Heap => Box::new(HeapQueue::new()),
        QueueBackend::Calendar => Box::new(CalendarQueue::new()),
    }
}

impl ShardCtx {
    /// Earliest pending timestamp of this shard, if any.
    fn front(&mut self) -> Option<SimTime> {
        let main = self.main.peek_key().map(|(t, _)| t);
        let side = self.side.peek().map(|Reverse(e)| e.at);
        match (main, side) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Schedule an event from within a handler. `dest == self.id` keeps
    /// the event shard-local (side heap); anything else is a cross-shard
    /// emission, checked against the lookahead window.
    fn emit(&mut self, dest: u32, at: SimTime, event: Event) {
        let idx = self.emitted;
        self.emitted += 1;
        if dest == self.id {
            self.emissions.push(Emission::Local { idx });
            self.side.push(Reverse(SideEntry { at, idx, event }));
        } else {
            if at < self.window_end {
                let v = LookaheadViolation {
                    from_shard: self.id as usize,
                    to_shard: dest as usize,
                    at,
                    window_end: self.window_end,
                };
                debug_assert!(false, "{v}");
                if self.violation.is_none() {
                    self.violation = Some(v);
                }
            }
            self.emissions.push(Emission::Out {
                dest,
                at,
                event: Some(event),
            });
        }
    }

    fn shard_of(&self, node: NodeId) -> u32 {
        self.assign[node.index()]
    }

    fn local_idx(&self, node: NodeId) -> usize {
        let l = self.local[node.index()];
        debug_assert_ne!(
            l,
            u32::MAX,
            "event routed to a shard that does not own {node:?}"
        );
        l as usize
    }

    /// Mirror of `NetworkSim::transit` (no RNG).
    fn transit(&self, from: NodeId, to: NodeId) -> SimDuration {
        if let Some(lat) = self.topo.latency_between(from, to) {
            return lat;
        }
        let lat = ms(self.tables.latency_ms(from, to));
        let hops = self.tables.hops(from, to).max(1);
        lat + ms(self.config.timing.relay_hop_ms).saturating_mul(hops as u64)
    }

    /// Mirror of `NetworkSim::control_latency`; the normal draw consumes
    /// the controller shard's RNG (this is only ever called there).
    fn control_latency(&mut self, node: NodeId) -> SimDuration {
        match self.config.timing.control {
            ControlLatency::ShortestPathFrom(ctrl) => ms(self.tables.latency_ms(ctrl, node)),
            ControlLatency::NormalMs {
                mean,
                std_dev,
                floor_ms,
            } => {
                let cs = self.ctrl.as_mut().expect("latency draw off the ctrl shard");
                ms(cs.rng.normal_clamped(mean, std_dev, floor_ms))
            }
        }
    }

    /// Process every pending event strictly before `self.window_end`.
    fn run_window(&mut self) {
        loop {
            let main_key = self.main.peek_key();
            let side_at = self.side.peek().map(|Reverse(e)| e.at);
            // Resolved sequence numbers always precede this window's
            // provisional ones, so main wins time ties.
            let from_main = match (main_key, side_at) {
                (None, None) => return,
                (Some((mt, _)), Some(st)) => mt <= st,
                (Some(_), None) => true,
                (None, Some(_)) => false,
            };
            let at = if from_main {
                main_key.unwrap().0
            } else {
                side_at.unwrap()
            };
            if at >= self.window_end {
                return;
            }
            let (key, event) = if from_main {
                let (_, seq, event) = self.main.pop().expect("peeked");
                (Key::Resolved(seq), event)
            } else {
                let Reverse(entry) = self.side.pop().expect("peeked");
                (Key::Provisional(entry.idx), entry.event)
            };
            let e0 = self.emissions.len();
            let o0 = self.ops.len();
            self.handle(at, event);
            self.records.push(Record {
                at,
                key,
                n_emissions: (self.emissions.len() - e0) as u32,
                n_ops: (self.ops.len() - o0) as u32,
            });
        }
    }

    /// The restricted event handler: mirrors `NetworkSim::handle` arm for
    /// arm under the fault-free / gate-off / install-None preconditions
    /// (checked at construction). Any divergence from the sequential
    /// handler is a bug that `tests/partition_equivalence.rs` exists to
    /// catch.
    fn handle(&mut self, now: SimTime, event: Event) {
        match event {
            Event::DeliverToSwitch { node, from, msg } => {
                let l = self.local_idx(node);
                let busy = self.busy[l];
                if busy > now {
                    self.emit(self.id, busy, Event::DeliverToSwitch { node, from, msg });
                    return;
                }
                let done = now + ms(self.config.timing.switch_proc_ms);
                self.busy[l] = done;
                if let Message::Data(pkt) = &msg {
                    self.ops.push(SinkOp::Arrival(now, node, *pkt));
                }
                if matches!(msg, Message::Unm(_)) {
                    self.ops.push(SinkOp::Unm(now, node));
                }
                let mut effects = std::mem::take(&mut self.scratch);
                self.switches[l].handle_message_into(now, from, msg, &mut effects);
                self.apply_switch_effects(node, done, &mut effects);
                self.scratch = effects;
                self.arm_poll(node, now);
            }
            Event::InstallComplete { node, flow, token } => {
                let l = self.local_idx(node);
                let busy = self.busy[l];
                if busy > now {
                    self.emit(self.id, busy, Event::InstallComplete { node, flow, token });
                    return;
                }
                let done = now + ms(self.config.timing.switch_proc_ms);
                self.busy[l] = done;
                let mut effects = std::mem::take(&mut self.scratch);
                self.switches[l].handle_installed_into(now, flow, token, &mut effects);
                self.apply_switch_effects(node, done, &mut effects);
                self.scratch = effects;
                self.arm_poll(node, now);
            }
            Event::InjectPacket {
                node,
                pkt,
                egress_hint,
            } => {
                let l = self.local_idx(node);
                let busy = self.busy[l];
                if busy > now {
                    self.emit(
                        self.id,
                        busy,
                        Event::InjectPacket {
                            node,
                            pkt,
                            egress_hint,
                        },
                    );
                    return;
                }
                let done = now + ms(self.config.timing.switch_proc_ms);
                self.busy[l] = done;
                self.ops.push(SinkOp::Arrival(now, node, pkt));
                let mut effects = std::mem::take(&mut self.scratch);
                self.switches[l].inject_packet_into(now, pkt, egress_hint, &mut effects);
                self.apply_switch_effects(node, done, &mut effects);
                self.scratch = effects;
            }
            Event::DeliverToController { from, msg } => {
                let mean = self.config.timing.ctrl_service_mean_ms;
                let cs = self.ctrl.as_mut().expect("ctrl event on a switch shard");
                let start = now.max(cs.ctrl_busy);
                let svc = ms(cs.rng.exponential(mean));
                let done = start + svc;
                cs.ctrl_busy = done;
                self.emit(self.id, done, Event::ControllerExec { from, msg });
            }
            Event::CtrlIngress {
                from,
                msg,
                sent_at,
                extra,
            } => {
                let lat = self.control_latency(from);
                // `.max(now)` mirrors the sequential `schedule_at` clamp
                // (unreachable: latency ≥ floor and now = sent_at + floor).
                let at = (sent_at + lat + extra).max(now);
                self.emit(self.id, at, Event::DeliverToController { from, msg });
            }
            Event::ControllerExec { from, msg } => {
                let cs = self.ctrl.as_mut().expect("ctrl event on a switch shard");
                let mut out = Vec::new();
                cs.controller
                    .as_logic()
                    .on_message(now, from, msg, &mut out);
                self.apply_ctrl_effects(now, out);
            }
            Event::PollTick { node } => {
                let l = self.local_idx(node);
                let parked = self.switches[l].parked_messages();
                let interval = self.config.timing.resubmit_poll_ms;
                if parked == 0 || interval <= 0.0 {
                    self.polling[l] = false;
                } else {
                    let start = now.max(self.busy[l]);
                    let spin = ms(self.config.timing.switch_proc_ms).saturating_mul(parked as u64);
                    let done = start + spin;
                    self.busy[l] = done;
                    self.emit(self.id, done + ms(interval), Event::PollTick { node });
                }
            }
            Event::Trigger { batch } => {
                self.ops.push(SinkOp::Trigger(now, batch));
                let cs = self.ctrl.as_mut().expect("ctrl event on a switch shard");
                let updates = cs.batches.get(batch).cloned().unwrap_or_default();
                let base = now.max(cs.ctrl_busy);
                let mut out = Vec::new();
                cs.controller
                    .as_logic()
                    .start_update(now, &updates, &mut out);
                self.apply_ctrl_effects(base, out);
                if self.config.retry_ms > 0.0 {
                    self.emit(
                        self.id,
                        now + ms(self.config.retry_ms),
                        Event::ControllerTimer,
                    );
                }
            }
            Event::ControllerTimer => {
                let cs = self.ctrl.as_mut().expect("ctrl event on a switch shard");
                let mut out = Vec::new();
                let keep_going = cs.controller.as_logic().on_timer(now, &mut out);
                let base = now.max(cs.ctrl_busy);
                self.apply_ctrl_effects(base, out);
                if keep_going && self.config.retry_ms > 0.0 {
                    self.emit(
                        self.id,
                        now + ms(self.config.retry_ms),
                        Event::ControllerTimer,
                    );
                }
            }
            Event::ControllerFailover => {
                // Replication configs are refused at construction.
                unreachable!("controller failover event in the partitioned engine")
            }
        }
    }

    /// Mirror of `NetworkSim::apply_switch_effects` without the fault
    /// branches (no fault RNG is ever consulted: the preconditions pin
    /// drop probabilities to zero and choice points to off, which the
    /// sequential engine short-circuits without drawing).
    fn apply_switch_effects(&mut self, node: NodeId, base: SimTime, effects: &mut Vec<Effect>) {
        for effect in effects.drain(..) {
            match effect {
                Effect::SendSwitch { to, msg } => {
                    let at = base + self.transit(node, to);
                    let dest = self.shard_of(to);
                    self.emit(
                        dest,
                        at,
                        Event::DeliverToSwitch {
                            node: to,
                            from: Endpoint::Switch(node),
                            msg,
                        },
                    );
                }
                Effect::SendController { msg } => match self.config.timing.control {
                    ControlLatency::NormalMs { floor_ms, .. } => {
                        let dest = self.ctrl_shard;
                        self.emit(
                            dest,
                            base + ms(floor_ms),
                            Event::CtrlIngress {
                                from: node,
                                msg,
                                sent_at: base,
                                extra: SimDuration::ZERO,
                            },
                        );
                    }
                    ControlLatency::ShortestPathFrom(_) => {
                        let at = base + self.control_latency(node);
                        let dest = self.ctrl_shard;
                        self.emit(dest, at, Event::DeliverToController { from: node, msg });
                    }
                },
                Effect::BeginInstall { flow, token } => {
                    // InstallDelay::None precondition: completes at `base`.
                    self.emit(self.id, base, Event::InstallComplete { node, flow, token });
                }
                Effect::ForwardData { to, pkt } => {
                    let at = base
                        + self
                            .topo
                            .latency_between(node, to)
                            .unwrap_or_else(|| self.transit(node, to));
                    let dest = self.shard_of(to);
                    self.emit(
                        dest,
                        at,
                        Event::DeliverToSwitch {
                            node: to,
                            from: Endpoint::Switch(node),
                            msg: Message::Data(pkt),
                        },
                    );
                }
                Effect::PacketDelivered { pkt } => {
                    self.ops.push(SinkOp::Delivery(base, node, pkt));
                }
                Effect::PacketDropped { pkt, reason } => {
                    self.ops.push(SinkOp::PacketDrop(base, node, pkt, reason));
                }
            }
        }
    }

    /// Mirror of `NetworkSim::apply_ctrl_effects` without fault branches.
    fn apply_ctrl_effects(&mut self, base: SimTime, effects: Vec<CtrlEffect>) {
        let tx = ms(self.config.timing.ctrl_tx_ms);
        let mut send_time = base;
        for effect in effects {
            match effect {
                CtrlEffect::Send { to, msg } => {
                    send_time += tx;
                    let at = send_time + self.control_latency(to);
                    let dest = self.shard_of(to);
                    self.emit(
                        dest,
                        at,
                        Event::DeliverToSwitch {
                            node: to,
                            from: Endpoint::Controller,
                            msg,
                        },
                    );
                }
                CtrlEffect::UpdateComplete { flow, version } => {
                    self.ops.push(SinkOp::Completion(base, flow, version));
                }
                CtrlEffect::AlarmRaised { flow, reason } => {
                    self.ops.push(SinkOp::Alarm(base, flow, reason));
                }
            }
        }
        let cs = self.ctrl.as_mut().expect("ctrl effects on a switch shard");
        cs.ctrl_busy = cs.ctrl_busy.max(send_time);
    }

    /// Mirror of `NetworkSim::arm_poll`.
    fn arm_poll(&mut self, node: NodeId, now: SimTime) {
        let interval = self.config.timing.resubmit_poll_ms;
        let l = self.local_idx(node);
        if interval <= 0.0 || self.polling[l] {
            return;
        }
        if self.switches[l].parked_messages() == 0 {
            return;
        }
        self.polling[l] = true;
        self.emit(self.id, now + ms(interval), Event::PollTick { node });
    }
}

/// Non-sharded remainder of a dismantled [`NetworkSim`], kept for
/// reassembly by [`PartitionedSim::into_world`].
struct Rest {
    topo: Arc<Topology>,
    tables: Arc<PathTables>,
    config: SimConfig,
    flows: BTreeMap<FlowId, FlowSpec>,
    violations: Vec<(SimTime, Violation)>,
    analysis_findings: Vec<Diagnostic>,
    gate_cache: Option<BatchAnalysis>,
    gate_stats: GateStats,
}

/// A [`NetworkSim`] running under the partitioned parallel engine. See
/// the module docs for the determinism argument and the restrictions.
pub struct PartitionedSim {
    shards: Vec<ShardCtx>,
    ctrl_shard: usize,
    assign: Arc<Vec<u32>>,
    lookahead: SimDuration,
    threads: usize,
    next_seq: u64,
    pending: usize,
    peak_pending: usize,
    events: u64,
    now: SimTime,
    windows: u64,
    shard_events: Vec<u64>,
    sink: Box<dyn MetricsSink>,
    rest: Rest,
}

impl PartitionedSim {
    /// Shard `world` along `partitioner`'s cut, processing windows with
    /// `threads` worker threads (1 = same engine, serial window loop).
    ///
    /// Fails when the configuration needs the sequential engine (see the
    /// module-level *Restrictions*) or when the timing model yields no
    /// positive lookahead.
    pub fn new<P: Partitioner + ?Sized>(
        world: NetworkSim,
        partitioner: &P,
        threads: usize,
    ) -> Result<Self, String> {
        let config = *world.config();
        if config.fault_choices.is_some() {
            return Err("fault choice points need the sequential engine".into());
        }
        if config.faults != FaultConfig::NONE {
            return Err("fault injection needs the sequential engine".into());
        }
        if config.paranoid {
            return Err("paranoid checking walks global state; use the sequential engine".into());
        }
        if config.byzantine.is_some() {
            return Err(
                "byzantine choice points and taint tracking need the sequential engine".into(),
            );
        }
        if config.replication.enabled() {
            return Err(
                "controller replication swaps global controller state; use the sequential engine"
                    .into(),
            );
        }
        if config.analysis_gate {
            return Err(
                "the analysis gate runs controller-global; disable it or use the sequential engine"
                    .into(),
            );
        }
        if !matches!(config.timing.install, InstallDelay::None) {
            return Err(
                "stochastic install delays draw switch-side RNG; use the sequential engine".into(),
            );
        }

        let partitions = partitioner.partitions().max(1);
        let ctrl_shard = partitions;
        let nshards = partitions + 1;

        // Conservative lookahead: the minimum over the cross-shard
        // emission classes (see the module docs for the cut argument).
        let proc = ms(config.timing.switch_proc_ms);
        let tx = ms(config.timing.ctrl_tx_ms);
        let ctrl_floor = match config.timing.control {
            ControlLatency::NormalMs { floor_ms, .. } => ms(floor_ms),
            ControlLatency::ShortestPathFrom(_) => SimDuration::ZERO,
        };
        let mut lookahead = (proc + ctrl_floor).min(tx + ctrl_floor);
        if let Some(cross) = min_cross_partition_latency(world.topology(), partitioner) {
            lookahead = lookahead.min(proc + cross);
        }
        if lookahead == SimDuration::ZERO {
            return Err("timing model yields zero lookahead; no parallel window exists".into());
        }

        let n = world.topology().node_count();
        let assign: Arc<Vec<u32>> = Arc::new(
            world
                .topology()
                .node_ids()
                .map(|id| {
                    let s = partitioner.partition_of(id);
                    assert!(s < partitions, "partition_of out of range");
                    s as u32
                })
                .collect(),
        );

        let NetworkSim {
            topo,
            switches,
            controller,
            config,
            rng,
            tables,
            switch_busy,
            polling,
            ctrl_busy,
            batches,
            flows,
            sink,
            scratch: _,
            violations,
            analysis_findings,
            gate_cache,
            gate_stats,
            liars: _,
            byz_taints: _,
            byz_outcomes: _,
            standbys: _,
            failed_over: _,
        } = world;
        let topo = Arc::new(topo);

        let mut shards: Vec<ShardCtx> = (0..nshards)
            .map(|id| ShardCtx {
                id: id as u32,
                ctrl_shard: ctrl_shard as u32,
                config,
                topo: Arc::clone(&topo),
                tables: Arc::clone(&tables),
                assign: Arc::clone(&assign),
                main: new_queue(config.queue_backend),
                side: BinaryHeap::new(),
                window_end: SimTime::ZERO,
                records: Vec::new(),
                emissions: Vec::new(),
                ops: Vec::new(),
                emitted: 0,
                violation: None,
                local: if id < partitions {
                    vec![u32::MAX; n]
                } else {
                    Vec::new()
                },
                nodes: Vec::new(),
                switches: Vec::new(),
                busy: Vec::new(),
                polling: Vec::new(),
                scratch: Vec::new(),
                ctrl: None,
            })
            .collect();

        for (i, sw) in switches.into_switches().into_iter().enumerate() {
            let s = assign[i] as usize;
            let shard = &mut shards[s];
            shard.local[i] = shard.switches.len() as u32;
            shard.nodes.push(NodeId(i as u32));
            shard.switches.push(sw);
            shard.busy.push(switch_busy[i]);
            shard.polling.push(polling[i]);
        }
        shards[ctrl_shard].ctrl = Some(CtrlState {
            controller,
            rng,
            ctrl_busy,
            batches,
        });

        Ok(PartitionedSim {
            shards,
            ctrl_shard,
            assign,
            lookahead,
            threads: threads.max(1),
            next_seq: 0,
            pending: 0,
            peak_pending: 0,
            events: 0,
            now: SimTime::ZERO,
            windows: 0,
            shard_events: vec![0; nshards],
            sink,
            rest: Rest {
                topo,
                tables,
                config,
                flows,
                violations,
                analysis_findings,
                gate_cache,
                gate_stats,
            },
        })
    }

    /// Override the derived lookahead. Shrinking the window is always
    /// safe (more barriers, same order); *growing* it past the derived
    /// bound deliberately breaks the conservative guarantee — the
    /// lookahead-safety tests use this to prove the enforcement trips.
    pub fn with_lookahead(mut self, lookahead: SimDuration) -> Self {
        self.lookahead = lookahead;
        self
    }

    /// The derived (or overridden) conservative lookahead.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Number of switch partitions (the controller shard is one more).
    pub fn partitions(&self) -> usize {
        self.shards.len() - 1
    }

    /// Barrier windows processed so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Events delivered so far, by shard (switch partitions first, the
    /// controller shard last). Sums to [`Self::events_delivered`].
    pub fn shard_events(&self) -> &[u64] {
        &self.shard_events
    }

    /// Total events delivered.
    pub fn events_delivered(&self) -> u64 {
        self.events
    }

    /// High-water mark of pending events (identical to the sequential
    /// engine's `peak_queue_depth`: the barrier replays the sequential
    /// push/pop schedule when accounting).
    pub fn peak_queue_depth(&self) -> usize {
        self.peak_pending
    }

    /// Schedule a seed event (same clamp semantics as the sequential
    /// `Simulation::schedule_at`).
    pub fn schedule_at(&mut self, at: SimTime, event: Event) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let dest = self.shard_of_event(&event);
        self.shards[dest].main.push(at, seq, event);
        self.pending += 1;
        self.peak_pending = self.peak_pending.max(self.pending);
    }

    fn shard_of_event(&self, event: &Event) -> usize {
        match event {
            Event::DeliverToSwitch { node, .. }
            | Event::InstallComplete { node, .. }
            | Event::InjectPacket { node, .. }
            | Event::PollTick { node } => self.assign[node.index()] as usize,
            Event::DeliverToController { .. }
            | Event::CtrlIngress { .. }
            | Event::ControllerExec { .. }
            | Event::Trigger { .. }
            | Event::ControllerTimer
            | Event::ControllerFailover => self.ctrl_shard,
        }
    }

    /// Run until the queues drain.
    pub fn run(&mut self) -> Result<RunOutcome, LookaheadViolation> {
        self.run_until(SimTime::from_nanos(u64::MAX))
    }

    /// Run until the queues drain or the earliest pending event lies
    /// beyond `horizon` (same semantics as the sequential `run_until`).
    pub fn run_until(&mut self, horizon: SimTime) -> Result<RunOutcome, LookaheadViolation> {
        loop {
            let mut t_min: Option<SimTime> = None;
            for shard in &mut self.shards {
                if let Some(t) = shard.front() {
                    t_min = Some(t_min.map_or(t, |m| m.min(t)));
                }
            }
            let Some(t) = t_min else {
                return Ok(RunOutcome::QueueDrained {
                    finished_at: self.now,
                    events: self.events,
                });
            };
            if t > horizon {
                return Ok(RunOutcome::HorizonReached {
                    horizon,
                    events: self.events,
                });
            }
            let window_end = (t + self.lookahead).min(horizon + SimDuration::from_nanos(1));
            self.windows += 1;
            let workers = self.threads.min(self.shards.len());
            if workers <= 1 {
                for shard in &mut self.shards {
                    shard.window_end = window_end;
                    shard.run_window();
                }
            } else {
                for shard in &mut self.shards {
                    shard.window_end = window_end;
                }
                let per = self.shards.len().div_ceil(workers);
                std::thread::scope(|scope| {
                    for chunk in self.shards.chunks_mut(per) {
                        scope.spawn(move || {
                            for shard in chunk {
                                shard.run_window();
                            }
                        });
                    }
                });
            }
            for shard in &self.shards {
                if let Some(v) = &shard.violation {
                    return Err(v.clone());
                }
            }
            self.merge_window();
        }
    }

    /// The barrier: k-way merge the shard-local delivery records in
    /// global `(time, seq)` order, assigning every emission its final
    /// global sequence number in exactly the order the sequential engine
    /// would have, replaying sink effects in that order, and routing
    /// cross-shard events into their destination queues.
    fn merge_window(&mut self) {
        struct WindowOut {
            records: Vec<Record>,
            emissions: Vec<Emission>,
            ops: Vec<SinkOp>,
        }
        let n = self.shards.len();
        let mut outs: Vec<WindowOut> = self
            .shards
            .iter_mut()
            .map(|s| WindowOut {
                records: std::mem::take(&mut s.records),
                emissions: std::mem::take(&mut s.emissions),
                ops: std::mem::take(&mut s.ops),
            })
            .collect();
        let mut seqmaps: Vec<Vec<u64>> = self
            .shards
            .iter()
            .map(|s| vec![u64::MAX; s.emitted as usize])
            .collect();
        let mut rec_cur = vec![0usize; n];
        let mut emi_cur = vec![0usize; n];
        let mut op_cur = vec![0usize; n];

        loop {
            // Head record with the globally smallest (time, seq). A
            // provisional head's parent record precedes it in the same
            // shard (a parent emits strictly before its child is popped),
            // so its sequence number is always already resolved.
            let mut best: Option<(SimTime, u64, usize)> = None;
            for (i, out) in outs.iter().enumerate() {
                let Some(r) = out.records.get(rec_cur[i]) else {
                    continue;
                };
                let seq = match r.key {
                    Key::Resolved(s) => s,
                    Key::Provisional(idx) => {
                        let s = seqmaps[i][idx as usize];
                        debug_assert_ne!(s, u64::MAX, "unresolved provisional key at merge");
                        s
                    }
                };
                if best.is_none_or(|(bt, bs, _)| (r.at, seq) < (bt, bs)) {
                    best = Some((r.at, seq, i));
                }
            }
            let Some((at, _, i)) = best else { break };
            let r = outs[i].records[rec_cur[i]];
            rec_cur[i] += 1;
            self.now = at;
            self.events += 1;
            self.shard_events[i] += 1;
            self.pending -= 1;
            for _ in 0..r.n_ops {
                let op = outs[i].ops[op_cur[i]];
                op_cur[i] += 1;
                apply_op(&mut *self.sink, op);
            }
            for _ in 0..r.n_emissions {
                let e = &mut outs[i].emissions[emi_cur[i]];
                emi_cur[i] += 1;
                let seq = self.next_seq;
                self.next_seq += 1;
                self.pending += 1;
                self.peak_pending = self.peak_pending.max(self.pending);
                match e {
                    Emission::Local { idx } => seqmaps[i][*idx as usize] = seq,
                    Emission::Out { dest, at, event } => {
                        let event = event.take().expect("emission consumed twice");
                        self.shards[*dest as usize].main.push(*at, seq, event);
                    }
                }
            }
        }

        // Side-heap remainders (all at or past the window end) move into
        // the main queue with their now-resolved sequence numbers.
        for (i, shard) in self.shards.iter_mut().enumerate() {
            while let Some(Reverse(entry)) = shard.side.pop() {
                let seq = seqmaps[i][entry.idx as usize];
                debug_assert_ne!(seq, u64::MAX, "unresolved side event after merge");
                shard.main.push(entry.at, seq, entry.event);
            }
            shard.emitted = 0;
        }
    }

    /// Reassemble the (sequentially-equivalent) [`NetworkSim`]: switch
    /// state regroups in `NodeId` order, the controller shard returns the
    /// controller, RNG, and busy horizon, and the metrics sink carries
    /// the merged observation stream.
    pub fn into_world(self) -> NetworkSim {
        let PartitionedSim {
            mut shards,
            ctrl_shard,
            sink,
            rest,
            ..
        } = self;
        let n = rest.topo.node_count();
        let mut switches: Vec<Option<Switch>> = (0..n).map(|_| None).collect();
        let mut switch_busy = vec![SimTime::ZERO; n];
        let mut polling = vec![false; n];
        let mut ctrl = None;
        for shard in &mut shards {
            if shard.id as usize == ctrl_shard {
                ctrl = shard.ctrl.take();
                continue;
            }
            for (l, sw) in shard.switches.drain(..).enumerate() {
                let g = shard.nodes[l].index();
                switches[g] = Some(sw);
                switch_busy[g] = shard.busy[l];
                polling[g] = shard.polling[l];
            }
        }
        drop(shards);
        let cs = ctrl.expect("controller shard present");
        let Rest {
            topo,
            tables,
            config,
            flows,
            violations,
            analysis_findings,
            gate_cache,
            gate_stats,
        } = rest;
        NetworkSim {
            topo: Arc::try_unwrap(topo).unwrap_or_else(|arc| (*arc).clone()),
            switches: SwitchTable::from_switches(
                switches
                    .into_iter()
                    .map(|s| s.expect("every node owned"))
                    .collect(),
            ),
            controller: cs.controller,
            config,
            rng: cs.rng,
            tables,
            switch_busy,
            polling,
            ctrl_busy: cs.ctrl_busy,
            batches: cs.batches,
            flows,
            sink,
            scratch: Vec::new(),
            violations,
            analysis_findings,
            gate_cache,
            gate_stats,
            liars: Vec::new(),
            byz_taints: Vec::new(),
            byz_outcomes: Vec::new(),
            standbys: Vec::new(),
            failed_over: false,
        }
    }
}

fn apply_op(sink: &mut dyn MetricsSink, op: SinkOp) {
    match op {
        SinkOp::Arrival(t, node, pkt) => sink.record_arrival(t, node, pkt),
        SinkOp::Delivery(t, node, pkt) => sink.record_delivery(t, node, pkt),
        SinkOp::PacketDrop(t, node, pkt, reason) => sink.record_drop(t, node, pkt, reason),
        SinkOp::Completion(t, flow, version) => sink.record_completion(t, flow, version),
        SinkOp::Alarm(t, flow, reason) => sink.record_alarm(t, flow, reason),
        SinkOp::Trigger(t, batch) => sink.record_trigger(t, batch),
        SinkOp::Unm(t, node) => sink.record_unm_delivery(t, node),
    }
}

/// Event router for the *merged* sharded scheduler
/// ([`p4update_des::Simulation::with_partitions`]): same node→partition
/// assignment as the parallel engine, controller events in the extra
/// last shard. The merged mode keeps the fully general sequential
/// semantics (faults, choosers, paranoid checking) while exercising the
/// sharded queue plumbing.
pub fn event_router<P: Partitioner + ?Sized>(
    topo: &Topology,
    partitioner: &P,
) -> p4update_des::EventRouter<Event> {
    let ctrl = partitioner.partitions().max(1);
    let assign: Vec<usize> = topo
        .node_ids()
        .map(|id| partitioner.partition_of(id))
        .collect();
    Box::new(move |event: &Event| match event {
        Event::DeliverToSwitch { node, .. }
        | Event::InstallComplete { node, .. }
        | Event::InjectPacket { node, .. }
        | Event::PollTick { node } => assign[node.index()],
        Event::DeliverToController { .. }
        | Event::CtrlIngress { .. }
        | Event::ControllerExec { .. }
        | Event::Trigger { .. }
        | Event::ControllerTimer
        | Event::ControllerFailover => ctrl,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TimingConfig;
    use crate::network::{simulation, System};
    use p4update_core::Strategy;
    use p4update_net::{topologies, Path, PodPartitioner, SinglePartition};

    /// Build the Fig. 1 migration world (WAN timing, gate off).
    fn fig1_world(seed: u64) -> (NetworkSim, usize) {
        let topo = topologies::fig1();
        let config = SimConfig::new(TimingConfig::wan_multi_flow(topo.centroid()), seed)
            .with_analysis_gate(false);
        let mut world = NetworkSim::new(topo, System::P4Update(Strategy::Auto), config, None);
        let old = Path::new(topologies::fig1_old_path());
        let new = Path::new(topologies::fig1_new_path());
        world.install_initial_path(FlowId(0), &old, 1.0);
        let batch = world.add_batch(vec![FlowUpdate::new(FlowId(0), Some(old), new, 1.0)]);
        (world, batch)
    }

    fn fingerprint(world: &NetworkSim) -> String {
        format!("{:?}", world.metrics())
    }

    #[test]
    fn single_partition_parallel_matches_sequential_on_fig1() {
        let (world, batch) = fig1_world(1);
        let mut seq = simulation(world);
        seq.schedule_at(SimTime::ZERO, Event::Trigger { batch });
        assert!(seq.run().drained());
        let seq_events = seq.events_delivered();
        let seq_peak = seq.peak_queue_depth();
        let seq_world = seq.into_world();

        let (world, batch) = fig1_world(1);
        let mut par = PartitionedSim::new(world, &SinglePartition, 1).unwrap();
        par.schedule_at(SimTime::ZERO, Event::Trigger { batch });
        assert!(par.run().unwrap().drained());
        assert_eq!(par.events_delivered(), seq_events);
        assert_eq!(par.peak_queue_depth(), seq_peak);
        let par_world = par.into_world();
        assert_eq!(fingerprint(&par_world), fingerprint(&seq_world));
    }

    /// The fat-tree scenario exercises the DC timing path: CtrlIngress
    /// relocation (NormalMs latency draws), pod-partitioned cross
    /// traffic, and the poll loop.
    fn fat_tree_world(seed: u64) -> (NetworkSim, usize) {
        let topo = topologies::synthetic_fat_tree_64();
        let config = SimConfig::new(TimingConfig::fat_tree(), seed).with_analysis_gate(false);
        let mut world = NetworkSim::new(topo, System::P4Update(Strategy::Auto), config, None);
        // Migrate a few flows across pods so control and data traffic
        // cross every partition boundary.
        let topo = world.topology().clone();
        let mut updates = Vec::new();
        for (i, (a, b)) in [(0usize, 2usize), (1, 3), (2, 0), (3, 1)]
            .iter()
            .enumerate()
        {
            let src = topo.node_by_name(&format!("edge{a}_0")).unwrap();
            let dst = topo.node_by_name(&format!("edge{b}_1")).unwrap();
            let paths = p4update_net::k_shortest_paths(&topo, src, dst, 2);
            assert!(paths.len() >= 2, "fat tree has path diversity");
            let flow = FlowId(i as u32);
            world.install_initial_path(flow, &paths[0], 1.0);
            updates.push(FlowUpdate::new(
                flow,
                Some(paths[0].clone()),
                paths[1].clone(),
                1.0,
            ));
        }
        let batch = world.add_batch(updates);
        (world, batch)
    }

    #[test]
    fn pod_partitioned_parallel_matches_sequential_on_fat_tree() {
        let (world, batch) = fig_run_sequential_baseline();
        let seq_fp = world;
        for partitions in [1usize, 2, 4, 8] {
            for threads in [1usize, 2] {
                let (w, b) = fat_tree_world(7);
                assert_eq!(b, batch);
                let part = PodPartitioner::new(w.topology(), partitions);
                let mut par = PartitionedSim::new(w, &part, threads).unwrap();
                par.schedule_at(SimTime::ZERO, Event::Trigger { batch: b });
                assert!(par.run().unwrap().drained());
                let got = fingerprint(&par.into_world());
                assert_eq!(got, seq_fp, "partitions={partitions} threads={threads}");
            }
        }
    }

    fn fig_run_sequential_baseline() -> (String, usize) {
        let (world, batch) = fat_tree_world(7);
        let mut seq = simulation(world);
        seq.schedule_at(SimTime::ZERO, Event::Trigger { batch });
        assert!(seq.run().drained());
        (fingerprint(&seq.into_world()), batch)
    }

    #[test]
    fn lookahead_is_derived_from_the_cut() {
        let (world, _) = fat_tree_world(1);
        let part = PodPartitioner::new(world.topology(), 4);
        let par = PartitionedSim::new(world, &part, 1).unwrap();
        // fat-tree timing: min(proc + cross-link, proc + floor, tx + floor)
        // = min(2.0 + 0.05, 2.0 + 1.0, 5.0 + 1.0) = 2.05 ms.
        assert_eq!(par.lookahead(), SimDuration::from_micros(2050));
    }

    #[test]
    fn unsupported_configs_are_rejected() {
        let mk = |config: SimConfig| {
            let topo = topologies::fig1();
            NetworkSim::new(topo, System::P4Update(Strategy::Auto), config, None)
        };
        let base = SimConfig::new(TimingConfig::fat_tree(), 1).with_analysis_gate(false);
        assert!(PartitionedSim::new(mk(base), &SinglePartition, 1).is_ok());
        let paranoid = base.paranoid();
        assert!(PartitionedSim::new(mk(paranoid), &SinglePartition, 1).is_err());
        let gate = base.with_analysis_gate(true);
        assert!(PartitionedSim::new(mk(gate), &SinglePartition, 1).is_err());
        let mut faulty = base;
        faulty.faults.drop_ctrl_to_switch = 0.1;
        assert!(PartitionedSim::new(mk(faulty), &SinglePartition, 1).is_err());
    }

    /// Byzantine and replication configs are refused at construction with
    /// the same structured error in every build profile — the refusal must
    /// not hide behind a debug assertion or the debug-only analysis-gate
    /// default (which this test pins by running `base` through both
    /// explicit gate settings).
    #[test]
    fn byzantine_and_replication_configs_are_rejected() {
        let mk = |config: SimConfig| {
            let topo = topologies::fig1();
            NetworkSim::new(topo, System::P4Update(Strategy::Auto), config, None)
        };
        for gate in [false, cfg!(debug_assertions)] {
            let base = SimConfig::new(TimingConfig::fat_tree(), 1).with_analysis_gate(gate);
            let byz = base.with_byzantine(crate::config::ByzantineConfig::default());
            let err = PartitionedSim::new(mk(byz), &SinglePartition, 1)
                .err()
                .expect("byzantine config must be refused");
            assert!(err.contains("byzantine"), "unhelpful error: {err}");
            let repl = base.with_replication(crate::config::ReplicationConfig {
                replicas: 2,
                failover_at_ms: 10.0,
                lag_ms: 0.0,
            });
            let err = PartitionedSim::new(mk(repl), &SinglePartition, 1)
                .err()
                .expect("replication config must be refused");
            assert!(err.contains("replication"), "unhelpful error: {err}");
        }
    }

    /// The horizon splits a run without perturbing it (mirrors the
    /// sequential engine's stop-and-resume contract).
    #[test]
    fn horizon_stops_and_resumes_identically() {
        let (world, batch) = fat_tree_world(3);
        let mut seq = simulation(world);
        seq.schedule_at(SimTime::ZERO, Event::Trigger { batch });
        assert!(seq.run().drained());
        let want = fingerprint(&seq.into_world());

        let (world, batch) = fat_tree_world(3);
        let part = PodPartitioner::new(world.topology(), 4);
        let mut par = PartitionedSim::new(world, &part, 1).unwrap();
        par.schedule_at(SimTime::ZERO, Event::Trigger { batch });
        let mid = par.run_until(SimTime::ZERO + ms(40.0)).unwrap();
        assert!(matches!(mid, RunOutcome::HorizonReached { .. }));
        assert!(par.run().unwrap().drained());
        assert_eq!(fingerprint(&par.into_world()), want);
    }
}
