//! The partitioned parallel simulation engine.
//!
//! [`PartitionedSim`] runs a [`NetworkSim`] sharded along a
//! [`Partitioner`]'s cut: every switch partition becomes one shard with
//! its own event queue, switch state, and busy horizons; the controller
//! (with its RNG, busy horizon, and batch table) becomes one extra shard.
//! Shards advance independently inside a *conservative-lookahead window*
//! and exchange cross-shard events at a barrier when the window closes —
//! classic conservative parallel DES (CMB-style windows), specialized to
//! this simulator's timing model.
//!
//! # Why the merged order is byte-identical to the sequential engine
//!
//! The sequential engine delivers events in `(time, seq)` order where
//! `seq` is the global schedule order. The partitioned engine reproduces
//! that exact order:
//!
//! 1. **Windows are causally closed.** The lookahead `L` is the minimum
//!    over every cross-shard emission class of "how far in the future the
//!    emission must land": switch→switch crossings pay the switch
//!    processing time plus at least one inter-partition link
//!    ([`min_cross_partition_latency`]); switch→controller crossings pay
//!    processing plus the control-latency floor; controller→switch
//!    crossings pay the controller transmit slot plus the floor. With the
//!    window `[t_min, t_min + L)`, no shard can receive an event inside
//!    the window from another shard, so processing shards independently
//!    is safe. Every cross-shard emission is checked against the window
//!    at emission time — a violation is a `debug_assert!` panic (debug)
//!    or a [`LookaheadViolation`] error (release), never silent
//!    corruption.
//! 2. **Ties resolve exactly as sequentially.** Within a shard's window,
//!    pending events are either *resolved* (carrying their final global
//!    sequence number, assigned at a previous barrier — always smaller
//!    than any sequence number assigned this window) or *provisional*
//!    (emitted during this window, keyed by the shard's emission counter,
//!    which increases in the same order the sequential engine would have
//!    assigned sequence numbers). Popping "earliest time; resolved before
//!    provisional; lower emission index first" therefore equals the
//!    sequential `(time, seq)` order restricted to the shard.
//! 3. **The barrier replays the sequential schedule.** At the window
//!    barrier the shard-local delivery records are k-way merged in global
//!    `(time, seq)` order and every emission is assigned the next global
//!    sequence number in that order — exactly the number the sequential
//!    engine's `schedule_at` would have produced. Metrics-sink effects
//!    are buffered per delivery and replayed in the merged order, so the
//!    sink observes the byte-identical event stream.
//! 4. **Window size is irrelevant to the order.** Clauses 2 and 3 never
//!    mention the window end: within a shard, pops follow `(time, seq)`
//!    whatever the window, and the merge assigns the same sequence
//!    numbers whether a stretch of virtual time was covered by one
//!    barrier or fifty. Growing a window (coalescing, below) can
//!    therefore change *only* how often the barrier runs — never what it
//!    produces — as long as the window stays causally closed.
//!
//! `tests/partition_equivalence.rs` enforces this equivalence
//! differentially at 1/2/4/8 partitions over the scenario registry, with
//! coalescing both on and off.
//!
//! # Window coalescing
//!
//! The fixed window `[t_min, t_min + L)` is sound but tiny (2.05 ms on
//! the fat-trees), and most windows deliver a handful of events — on
//! ft4096 the PR 6 engine ran ~57k windows for ~234k events, paying the
//! barrier ~4 events at a time. Coalescing stretches the window as far as
//! the *causally closed* argument actually allows:
//!
//! - Each shard `s` has a per-class lower bound `Λ_s` on how far in the
//!   future any cross-shard emission it makes must land (switch shards:
//!   `min(proc + ctrl_floor, proc + min_cross_link)`; the controller
//!   shard: `ctrl_tx + ctrl_floor`). The global `L = min_s Λ_s`.
//! - Events split into two classes. *Main* (cross-capable) events may
//!   emit across shards; *deferred* events ([`Event::PollTick`] is the
//!   only member) have handlers whose transitive descendants provably
//!   stay shard-local: a poll tick only ever re-arms itself, and its
//!   `busy` bump can only push other events' children *later*, never
//!   earlier. The split lives in [`ClassedQueue`]; pops still come out
//!   in global `(time, seq)` order across both classes.
//! - Let `b_s` be shard `s`'s *barrier front* — its earliest pending
//!   main-class event at the barrier. Any cross-shard emission made
//!   while processing the next window traces back (through shard-local
//!   descendants) to a main-class event popped at `t' ≥ b_s`, and pays
//!   `≥ Λ_s` on top, so it lands at `≥ b_s + Λ_s`. The window can
//!   therefore extend to `W = min_s (b_s + Λ_s) ≥ t_min + L` — every
//!   cross emission still lands at or past `W`, and clause 4 makes the
//!   result byte-identical. With no main-class event pending anywhere,
//!   `W` is unbounded (capped at the horizon): the poll-tick tail
//!   collapses into one window.
//!
//! The emission-time window check stays armed under coalescing, so the
//! `Λ_s` accounting is *enforced*, not trusted. `with_coalescing(false)`
//! is the escape hatch back to fixed `t_min + L` windows.
//!
//! # Serial phases
//!
//! Stretching alone cannot beat the structure of this workload: the
//! shard owning `t_min` contributes `b_{s} + Λ_s ≈ t_min + Λ_s` to the
//! window bound, so `W` never exceeds the *front shard's own* lookahead
//! while main-class events are pending. Measuring the bench workload
//! shows why that matters — in ~80 % of fixed windows at 4 partitions,
//! at most **two** shards hold any event at all (a switch shard and the
//! controller ping-ponging a causal chain); the barrier synchronizes a
//! conversation, not parallel work.
//!
//! So when at most [`SERIAL_MAX`] shards have events within one
//! lookahead of `t_min`, the planner emits [`Plan::Serial`] instead of a
//! window: the coordinator pops the globally earliest event (all queues
//! hold only resolved keys between rounds), handles it, and immediately
//! assigns its emissions their final sequence numbers in emission order
//! — *exactly* the sequential engine's `schedule_at` semantics, so
//! byte-identity holds by construction rather than by merge argument.
//! Parked shards hold no events before `wake` (their earliest key,
//! tightened whenever the phase routes an event into a parked queue), so
//! each pop really is the global minimum. When the phase catches up to
//! `wake`, the waking shard is promoted into the active set (demoting
//! any shard whose front fell more than a lookahead behind); only when
//! the active set would exceed [`SERIAL_MAX`] does the phase end and
//! barriered windows resume. One phase counts as one window, and entire
//! cascade regimes fuse: on ft4096 the run collapses from ~57k fixed
//! windows to under a thousand rounds.
//!
//! # The persistent worker pool
//!
//! With `threads > 1`, PR 6 spawned one OS thread per shard chunk *per
//! window* (~230k spawns on ft4096). [`PartitionedSim::run_until`] now
//! starts one scoped pool per call: workers park on a condvar and are
//! dispatched by an epoch counter; the coordinator plans the window and
//! runs the merge while the workers are parked, taking each shard's
//! mutex only briefly and without contention. The pool joins once, when
//! the run drains (or errors).
//!
//! # Allocation audit
//!
//! The serial (`threads == 1`) window loop is allocation-free in steady
//! state: the barrier merges through persistent cursors and seq-map
//! scratch in [`Core`], shard ledgers are cleared (capacity retained)
//! rather than taken, controller effects drain through a reusable
//! scratch vector, and per-shard front times are memoized in a
//! [`FrontCache`] so the planner re-peeks only shards the last barrier
//! actually touched. `tests/partition_alloc.rs` pins this with a
//! counting global allocator.
//!
//! # Restrictions
//!
//! The parallel engine supports the deterministic fast path only; it
//! refuses (at [`PartitionedSim::new`]) configurations that need global
//! serialization anyway:
//!
//! - fault injection ([`crate::FaultConfig`] must be `NONE`) and fault
//!   choice points (they route through the exploration chooser, which is
//!   inherently a global sequential decision stream),
//! - paranoid per-event checking and the analysis gate (both walk global
//!   state between events),
//! - stochastic install delays (`InstallDelay::ExponentialMs` draws from
//!   the shared RNG at switch side; the supported `InstallDelay::None`
//!   keeps every RNG consumer on the controller shard — see
//!   [`Event::CtrlIngress`]),
//! - event budgets (a budget can expire mid-window; the sequential engine
//!   remains the tool for livelock hunting).

use crate::checker::{FlowSpec, Violation};
use crate::config::{ms, ControlLatency, FaultConfig, InstallDelay, SimConfig};
use crate::metrics::MetricsSink;
use crate::network::{ControllerImpl, Event, GateStats, NetworkSim, PathTables};
use crate::table::SwitchTable;
use p4update_analysis::{BatchAnalysis, Diagnostic};
use p4update_dataplane::{CtrlEffect, DropReason, Effect, Endpoint, Switch};
use p4update_des::{ClassedQueue, FrontCache, Fronts, RunOutcome, SimDuration, SimRng, SimTime};
use p4update_messages::{DataPacket, Message, RejectReason};
use p4update_net::{
    min_cross_partition_latency, FlowId, FlowUpdate, NodeId, Partitioner, Topology, Version,
};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// A cross-shard event was emitted *inside* the current lookahead window
/// — the conservative bound was violated. In debug builds this is caught
/// by a `debug_assert!` panic at the emission site; in release builds the
/// run aborts with this error at the next barrier. Either way the
/// violation can never silently corrupt the merged event order.
#[derive(Debug, Clone, PartialEq)]
pub struct LookaheadViolation {
    /// Shard that emitted the offending event.
    pub from_shard: usize,
    /// Shard the event was addressed to.
    pub to_shard: usize,
    /// When the event was due.
    pub at: SimTime,
    /// End of the window that was being processed.
    pub window_end: SimTime,
}

impl std::fmt::Display for LookaheadViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conservative lookahead violated: shard {} emitted an event for shard {} at {} inside the window ending {}",
            self.from_shard, self.to_shard, self.at, self.window_end
        )
    }
}

/// Whether an event belongs to the deferred (provably shard-local)
/// class. Must stay closed under the handler relation: a deferred
/// event's handler may only schedule further deferred events on its own
/// shard. `PollTick` qualifies — its handler emits only another
/// `PollTick` for the same node.
fn is_deferred(event: &Event) -> bool {
    matches!(event, Event::PollTick { .. })
}

/// Largest active set a serial phase may run. When at most this many
/// shards have events within one lookahead of `t_min`, barriering them
/// buys no parallelism (the workload is a causally-ordered ping-pong at
/// that granularity), so the engine executes them in exact global
/// `(time, seq)` order on one thread until more shards converge.
const SERIAL_MAX: usize = 3;

/// How a delivery record keys into the global order.
#[derive(Debug, Clone, Copy)]
enum Key {
    /// Final global sequence number (assigned at a previous barrier or at
    /// seeding time).
    Resolved(u64),
    /// Emission index within the shard's current window; the barrier
    /// resolves it to a global sequence number via the emission ledger.
    Provisional(u32),
}

/// One delivered event, recorded shard-locally during a window: its
/// timestamp, order key, and how many emissions / sink effects it
/// produced (both consumed in order at the barrier).
#[derive(Debug, Clone, Copy)]
struct Record {
    at: SimTime,
    key: Key,
    n_emissions: u32,
    n_ops: u32,
}

/// One `schedule_at` call made during a window, in call order.
enum Emission {
    /// Same-shard emission; the event itself lives in the shard's side
    /// heap (or was already delivered sub-window). The barrier only needs
    /// to assign its global sequence number.
    Local { idx: u32 },
    /// Cross-shard emission; the event is carried to the barrier and
    /// pushed into the destination's queue with its assigned number.
    Out {
        dest: u32,
        at: SimTime,
        event: Option<Event>,
    },
}

/// A buffered metrics-sink call; replayed in merged global order at the
/// barrier so the sink cannot observe shard interleaving.
#[derive(Debug, Clone, Copy)]
enum SinkOp {
    Arrival(SimTime, NodeId, DataPacket),
    Delivery(SimTime, NodeId, DataPacket),
    PacketDrop(SimTime, NodeId, DataPacket, DropReason),
    Completion(SimTime, FlowId, Version),
    Alarm(SimTime, FlowId, RejectReason),
    Trigger(SimTime, usize),
    Unm(SimTime, NodeId),
}

/// Entry of a shard's side heap: an event emitted during the current
/// window, ordered by `(time, emission index)` — which clause 2 of the
/// module-level argument shows is `(time, seq)` order.
struct SideEntry {
    at: SimTime,
    idx: u32,
    event: Event,
}

impl PartialEq for SideEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.idx == other.idx
    }
}
impl Eq for SideEntry {}
impl PartialOrd for SideEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SideEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.idx).cmp(&(other.at, other.idx))
    }
}

/// Controller-shard state: everything of a [`NetworkSim`] that consumes
/// the run's RNG or serializes on the controller.
struct CtrlState {
    controller: ControllerImpl,
    rng: SimRng,
    ctrl_busy: SimTime,
    batches: Vec<Vec<FlowUpdate>>,
}

/// One shard: a slice of the world plus its event queue and the
/// per-window ledgers the barrier consumes.
struct ShardCtx {
    id: u32,
    ctrl_shard: u32,
    config: SimConfig,
    topo: Arc<Topology>,
    tables: Arc<PathTables>,
    /// Global node index → shard id, shared across shards.
    assign: Arc<Vec<u32>>,
    /// Events with resolved global sequence numbers, split into the
    /// cross-capable main class and the deferred (shard-local) class.
    main: ClassedQueue<Event>,
    /// During-window emissions to this same shard, provisional keys.
    side: BinaryHeap<Reverse<SideEntry>>,
    /// End of the window currently being processed (exclusive).
    window_end: SimTime,
    /// Per-window ledgers, consumed by the barrier merge. Cleared (not
    /// taken) at the barrier so their capacity persists.
    records: Vec<Record>,
    emissions: Vec<Emission>,
    ops: Vec<SinkOp>,
    /// Emission counter within the current window.
    emitted: u32,
    /// First lookahead violation observed (release builds).
    violation: Option<LookaheadViolation>,
    // --- switch-shard state (empty on the controller shard) ---
    /// Global node index → local switch index (`u32::MAX` if unowned).
    local: Vec<u32>,
    /// Local switch index → global node id.
    nodes: Vec<NodeId>,
    switches: Vec<Switch>,
    busy: Vec<SimTime>,
    polling: Vec<bool>,
    scratch: Vec<Effect>,
    /// Reusable controller-effect buffer (capacity persists across
    /// events; only ever non-empty inside a controller handler).
    ctrl_scratch: Vec<CtrlEffect>,
    // --- controller-shard state (None on switch shards) ---
    ctrl: Option<CtrlState>,
}

impl ShardCtx {
    /// Front times for the planner. Only valid at a barrier: the side
    /// heap is empty (drained by the previous merge), so the classed
    /// queue alone describes the shard.
    fn fronts(&mut self) -> Fronts {
        debug_assert!(self.side.is_empty(), "fronts probed mid-window");
        Fronts {
            next: self.main.peek_key().map(|(t, _)| t),
            barrier: self.main.barrier_key().map(|(t, _)| t),
        }
    }

    /// Schedule an event from within a handler. `dest == self.id` keeps
    /// the event shard-local (side heap); anything else is a cross-shard
    /// emission, checked against the lookahead window.
    fn emit(&mut self, dest: u32, at: SimTime, event: Event) {
        let idx = self.emitted;
        self.emitted += 1;
        if dest == self.id {
            self.emissions.push(Emission::Local { idx });
            self.side.push(Reverse(SideEntry { at, idx, event }));
        } else {
            if at < self.window_end {
                let v = LookaheadViolation {
                    from_shard: self.id as usize,
                    to_shard: dest as usize,
                    at,
                    window_end: self.window_end,
                };
                debug_assert!(false, "{v}");
                if self.violation.is_none() {
                    self.violation = Some(v);
                }
            }
            self.emissions.push(Emission::Out {
                dest,
                at,
                event: Some(event),
            });
        }
    }

    fn shard_of(&self, node: NodeId) -> u32 {
        self.assign[node.index()]
    }

    fn local_idx(&self, node: NodeId) -> usize {
        let l = self.local[node.index()];
        debug_assert_ne!(
            l,
            u32::MAX,
            "event routed to a shard that does not own {node:?}"
        );
        l as usize
    }

    /// Mirror of `NetworkSim::transit` (no RNG).
    fn transit(&self, from: NodeId, to: NodeId) -> SimDuration {
        if let Some(lat) = self.topo.latency_between(from, to) {
            return lat;
        }
        let lat = ms(self.tables.latency_ms(from, to));
        let hops = self.tables.hops(from, to).max(1);
        lat + ms(self.config.timing.relay_hop_ms).saturating_mul(hops as u64)
    }

    /// Mirror of `NetworkSim::control_latency`; the normal draw consumes
    /// the controller shard's RNG (this is only ever called there).
    fn control_latency(&mut self, node: NodeId) -> SimDuration {
        match self.config.timing.control {
            ControlLatency::ShortestPathFrom(ctrl) => ms(self.tables.latency_ms(ctrl, node)),
            ControlLatency::NormalMs {
                mean,
                std_dev,
                floor_ms,
            } => {
                let cs = self.ctrl.as_mut().expect("latency draw off the ctrl shard");
                ms(cs.rng.normal_clamped(mean, std_dev, floor_ms))
            }
        }
    }

    /// Process every pending event strictly before `self.window_end`.
    fn run_window(&mut self) {
        loop {
            let main_key = self.main.peek_key();
            let side_at = self.side.peek().map(|Reverse(e)| e.at);
            // Resolved sequence numbers always precede this window's
            // provisional ones, so main wins time ties.
            let from_main = match (main_key, side_at) {
                (None, None) => return,
                (Some((mt, _)), Some(st)) => mt <= st,
                (Some(_), None) => true,
                (None, Some(_)) => false,
            };
            let at = if from_main {
                main_key.unwrap().0
            } else {
                side_at.unwrap()
            };
            if at >= self.window_end {
                return;
            }
            let (key, event) = if from_main {
                let (_, seq, event) = self.main.pop().expect("peeked");
                (Key::Resolved(seq), event)
            } else {
                let Reverse(entry) = self.side.pop().expect("peeked");
                (Key::Provisional(entry.idx), entry.event)
            };
            let e0 = self.emissions.len();
            let o0 = self.ops.len();
            self.handle(at, event);
            self.records.push(Record {
                at,
                key,
                n_emissions: (self.emissions.len() - e0) as u32,
                n_ops: (self.ops.len() - o0) as u32,
            });
        }
    }

    /// The restricted event handler: mirrors `NetworkSim::handle` arm for
    /// arm under the fault-free / gate-off / install-None preconditions
    /// (checked at construction). Any divergence from the sequential
    /// handler is a bug that `tests/partition_equivalence.rs` exists to
    /// catch.
    fn handle(&mut self, now: SimTime, event: Event) {
        match event {
            Event::DeliverToSwitch { node, from, msg } => {
                let l = self.local_idx(node);
                let busy = self.busy[l];
                if busy > now {
                    self.emit(self.id, busy, Event::DeliverToSwitch { node, from, msg });
                    return;
                }
                let done = now + ms(self.config.timing.switch_proc_ms);
                self.busy[l] = done;
                if let Message::Data(pkt) = &msg {
                    self.ops.push(SinkOp::Arrival(now, node, *pkt));
                }
                if matches!(msg, Message::Unm(_)) {
                    self.ops.push(SinkOp::Unm(now, node));
                }
                let mut effects = std::mem::take(&mut self.scratch);
                self.switches[l].handle_message_into(now, from, msg, &mut effects);
                self.apply_switch_effects(node, done, &mut effects);
                self.scratch = effects;
                self.arm_poll(node, now);
            }
            Event::InstallComplete { node, flow, token } => {
                let l = self.local_idx(node);
                let busy = self.busy[l];
                if busy > now {
                    self.emit(self.id, busy, Event::InstallComplete { node, flow, token });
                    return;
                }
                let done = now + ms(self.config.timing.switch_proc_ms);
                self.busy[l] = done;
                let mut effects = std::mem::take(&mut self.scratch);
                self.switches[l].handle_installed_into(now, flow, token, &mut effects);
                self.apply_switch_effects(node, done, &mut effects);
                self.scratch = effects;
                self.arm_poll(node, now);
            }
            Event::InjectPacket {
                node,
                pkt,
                egress_hint,
            } => {
                let l = self.local_idx(node);
                let busy = self.busy[l];
                if busy > now {
                    self.emit(
                        self.id,
                        busy,
                        Event::InjectPacket {
                            node,
                            pkt,
                            egress_hint,
                        },
                    );
                    return;
                }
                let done = now + ms(self.config.timing.switch_proc_ms);
                self.busy[l] = done;
                self.ops.push(SinkOp::Arrival(now, node, pkt));
                let mut effects = std::mem::take(&mut self.scratch);
                self.switches[l].inject_packet_into(now, pkt, egress_hint, &mut effects);
                self.apply_switch_effects(node, done, &mut effects);
                self.scratch = effects;
            }
            Event::DeliverToController { from, msg } => {
                let mean = self.config.timing.ctrl_service_mean_ms;
                let cs = self.ctrl.as_mut().expect("ctrl event on a switch shard");
                let start = now.max(cs.ctrl_busy);
                let svc = ms(cs.rng.exponential(mean));
                let done = start + svc;
                cs.ctrl_busy = done;
                self.emit(self.id, done, Event::ControllerExec { from, msg });
            }
            Event::CtrlIngress {
                from,
                msg,
                sent_at,
                extra,
            } => {
                let lat = self.control_latency(from);
                // `.max(now)` mirrors the sequential `schedule_at` clamp
                // (unreachable: latency ≥ floor and now = sent_at + floor).
                let at = (sent_at + lat + extra).max(now);
                self.emit(self.id, at, Event::DeliverToController { from, msg });
            }
            Event::ControllerExec { from, msg } => {
                let mut out = std::mem::take(&mut self.ctrl_scratch);
                let cs = self.ctrl.as_mut().expect("ctrl event on a switch shard");
                cs.controller
                    .as_logic()
                    .on_message(now, from, msg, &mut out);
                self.apply_ctrl_effects(now, &mut out);
                self.ctrl_scratch = out;
            }
            Event::PollTick { node } => {
                let l = self.local_idx(node);
                let parked = self.switches[l].parked_messages();
                let interval = self.config.timing.resubmit_poll_ms;
                if parked == 0 || interval <= 0.0 {
                    self.polling[l] = false;
                } else {
                    let start = now.max(self.busy[l]);
                    let spin = ms(self.config.timing.switch_proc_ms).saturating_mul(parked as u64);
                    let done = start + spin;
                    self.busy[l] = done;
                    self.emit(self.id, done + ms(interval), Event::PollTick { node });
                }
            }
            Event::Trigger { batch } => {
                self.ops.push(SinkOp::Trigger(now, batch));
                let mut out = std::mem::take(&mut self.ctrl_scratch);
                let cs = self.ctrl.as_mut().expect("ctrl event on a switch shard");
                let updates = cs.batches.get(batch).cloned().unwrap_or_default();
                let base = now.max(cs.ctrl_busy);
                cs.controller
                    .as_logic()
                    .start_update(now, &updates, &mut out);
                self.apply_ctrl_effects(base, &mut out);
                self.ctrl_scratch = out;
                if self.config.retry_ms > 0.0 {
                    self.emit(
                        self.id,
                        now + ms(self.config.retry_ms),
                        Event::ControllerTimer,
                    );
                }
            }
            Event::ControllerTimer => {
                let mut out = std::mem::take(&mut self.ctrl_scratch);
                let cs = self.ctrl.as_mut().expect("ctrl event on a switch shard");
                let keep_going = cs.controller.as_logic().on_timer(now, &mut out);
                let base = now.max(cs.ctrl_busy);
                self.apply_ctrl_effects(base, &mut out);
                self.ctrl_scratch = out;
                if keep_going && self.config.retry_ms > 0.0 {
                    self.emit(
                        self.id,
                        now + ms(self.config.retry_ms),
                        Event::ControllerTimer,
                    );
                }
            }
            Event::ControllerFailover => {
                // Replication configs are refused at construction.
                unreachable!("controller failover event in the partitioned engine")
            }
        }
    }

    /// Mirror of `NetworkSim::apply_switch_effects` without the fault
    /// branches (no fault RNG is ever consulted: the preconditions pin
    /// drop probabilities to zero and choice points to off, which the
    /// sequential engine short-circuits without drawing).
    fn apply_switch_effects(&mut self, node: NodeId, base: SimTime, effects: &mut Vec<Effect>) {
        for effect in effects.drain(..) {
            match effect {
                Effect::SendSwitch { to, msg } => {
                    let at = base + self.transit(node, to);
                    let dest = self.shard_of(to);
                    self.emit(
                        dest,
                        at,
                        Event::DeliverToSwitch {
                            node: to,
                            from: Endpoint::Switch(node),
                            msg,
                        },
                    );
                }
                Effect::SendController { msg } => match self.config.timing.control {
                    ControlLatency::NormalMs { floor_ms, .. } => {
                        let dest = self.ctrl_shard;
                        self.emit(
                            dest,
                            base + ms(floor_ms),
                            Event::CtrlIngress {
                                from: node,
                                msg,
                                sent_at: base,
                                extra: SimDuration::ZERO,
                            },
                        );
                    }
                    ControlLatency::ShortestPathFrom(_) => {
                        let at = base + self.control_latency(node);
                        let dest = self.ctrl_shard;
                        self.emit(dest, at, Event::DeliverToController { from: node, msg });
                    }
                },
                Effect::BeginInstall { flow, token } => {
                    // InstallDelay::None precondition: completes at `base`.
                    self.emit(self.id, base, Event::InstallComplete { node, flow, token });
                }
                Effect::ForwardData { to, pkt } => {
                    let at = base
                        + self
                            .topo
                            .latency_between(node, to)
                            .unwrap_or_else(|| self.transit(node, to));
                    let dest = self.shard_of(to);
                    self.emit(
                        dest,
                        at,
                        Event::DeliverToSwitch {
                            node: to,
                            from: Endpoint::Switch(node),
                            msg: Message::Data(pkt),
                        },
                    );
                }
                Effect::PacketDelivered { pkt } => {
                    self.ops.push(SinkOp::Delivery(base, node, pkt));
                }
                Effect::PacketDropped { pkt, reason } => {
                    self.ops.push(SinkOp::PacketDrop(base, node, pkt, reason));
                }
            }
        }
    }

    /// Mirror of `NetworkSim::apply_ctrl_effects` without fault branches.
    /// Drains `effects` (a reusable scratch buffer) rather than consuming
    /// a fresh allocation.
    fn apply_ctrl_effects(&mut self, base: SimTime, effects: &mut Vec<CtrlEffect>) {
        let tx = ms(self.config.timing.ctrl_tx_ms);
        let mut send_time = base;
        for effect in effects.drain(..) {
            match effect {
                CtrlEffect::Send { to, msg } => {
                    send_time += tx;
                    let at = send_time + self.control_latency(to);
                    let dest = self.shard_of(to);
                    self.emit(
                        dest,
                        at,
                        Event::DeliverToSwitch {
                            node: to,
                            from: Endpoint::Controller,
                            msg,
                        },
                    );
                }
                CtrlEffect::UpdateComplete { flow, version } => {
                    self.ops.push(SinkOp::Completion(base, flow, version));
                }
                CtrlEffect::AlarmRaised { flow, reason } => {
                    self.ops.push(SinkOp::Alarm(base, flow, reason));
                }
            }
        }
        let cs = self.ctrl.as_mut().expect("ctrl effects on a switch shard");
        cs.ctrl_busy = cs.ctrl_busy.max(send_time);
    }

    /// Mirror of `NetworkSim::arm_poll`.
    fn arm_poll(&mut self, node: NodeId, now: SimTime) {
        let interval = self.config.timing.resubmit_poll_ms;
        let l = self.local_idx(node);
        if interval <= 0.0 || self.polling[l] {
            return;
        }
        if self.switches[l].parked_messages() == 0 {
            return;
        }
        self.polling[l] = true;
        self.emit(self.id, now + ms(interval), Event::PollTick { node });
    }
}

/// Non-sharded remainder of a dismantled [`NetworkSim`], kept for
/// reassembly by [`PartitionedSim::into_world`].
struct Rest {
    topo: Arc<Topology>,
    tables: Arc<PathTables>,
    config: SimConfig,
    flows: BTreeMap<FlowId, FlowSpec>,
    violations: Vec<(SimTime, Violation)>,
    analysis_findings: Vec<Diagnostic>,
    gate_cache: Option<BatchAnalysis>,
    gate_stats: GateStats,
}

/// Engine bookkeeping owned by the coordinator: global sequence counter,
/// merged clocks and counters, plus the persistent merge scratch that
/// makes the steady-state barrier allocation-free (seq maps, cursors,
/// front cache — all cleared, never dropped).
struct Core {
    next_seq: u64,
    pending: usize,
    peak_pending: usize,
    events: u64,
    now: SimTime,
    windows: u64,
    windows_coalesced: u64,
    shard_events: Vec<u64>,
    fronts: FrontCache,
    /// Per-shard provisional-index → global sequence maps, resized (not
    /// reallocated) to each window's emission count.
    seqmaps: Vec<Vec<u64>>,
    rec_cur: Vec<usize>,
    emi_cur: Vec<usize>,
    op_cur: Vec<usize>,
    /// Serial-phase scratch: the current active set (shard indices) and
    /// a drain buffer for one event's same-shard emissions.
    active: Vec<usize>,
    side_scratch: Vec<SideEntry>,
}

impl Core {
    fn new(nshards: usize) -> Self {
        Core {
            next_seq: 0,
            pending: 0,
            peak_pending: 0,
            events: 0,
            now: SimTime::ZERO,
            windows: 0,
            windows_coalesced: 0,
            shard_events: vec![0; nshards],
            fronts: FrontCache::new(nshards),
            seqmaps: vec![Vec::new(); nshards],
            rec_cur: vec![0; nshards],
            emi_cur: vec![0; nshards],
            op_cur: vec![0; nshards],
            active: Vec::with_capacity(nshards),
            side_scratch: Vec::with_capacity(8),
        }
    }
}

/// Uniform mutable access to the shard slice for the planner and the
/// barrier merge, abstracting over "serial: straight `get_mut` through
/// the mutexes" vs "pooled: a slice of held guards".
trait ShardAccess {
    fn len(&self) -> usize;
    fn shard(&mut self, i: usize) -> &mut ShardCtx;
}

/// Serial access: the coordinator owns `&mut` to the mutexes, so each
/// access is a free `get_mut` — no locking, no allocation.
struct DirectShards<'a>(&'a mut [Mutex<ShardCtx>]);

impl ShardAccess for DirectShards<'_> {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn shard(&mut self, i: usize) -> &mut ShardCtx {
        self.0[i]
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Pooled access: the coordinator holds every shard's guard while the
/// workers are parked.
struct LockedShards<'a, 'b>(&'a mut [MutexGuard<'b, ShardCtx>]);

impl ShardAccess for LockedShards<'_, '_> {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn shard(&mut self, i: usize) -> &mut ShardCtx {
        &mut self.0[i]
    }
}

fn lock_shard(m: &Mutex<ShardCtx>) -> MutexGuard<'_, ShardCtx> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// What the planner decided for the next round.
enum Plan {
    /// No pending events anywhere.
    Drained,
    /// The earliest pending event lies beyond the horizon.
    Horizon,
    /// Process `[t_min, end)` on all shards in parallel; `coalesced`
    /// marks ends stretched past the fixed `t_min + L` bound.
    Window { end: SimTime, coalesced: bool },
    /// At most [`SERIAL_MAX`] shards have events within one lookahead of
    /// `t_min`: run them in exact global `(time, seq)` order on the
    /// coordinator until more shards converge — no barrier, no ledger
    /// round-trip across windows.
    Serial,
}

/// Plan the next window: refresh (only dirty) shard fronts, find the
/// global `t_min`, and — when coalescing — stretch the end to
/// `min_s (barrier_front_s + Λ_s)`, the furthest point the module-level
/// argument proves causally closed.
fn plan_window(
    core: &mut Core,
    shards: &mut impl ShardAccess,
    horizon: SimTime,
    lookahead: SimDuration,
    shard_lookahead: &[SimDuration],
    coalescing: bool,
) -> Plan {
    let mut t_min: Option<SimTime> = None;
    let mut cross_min: Option<SimTime> = None;
    for (i, la) in shard_lookahead.iter().enumerate().take(shards.len()) {
        let f = core.fronts.refresh(i, || shards.shard(i).fronts());
        if let Some(t) = f.next {
            t_min = Some(t_min.map_or(t, |m| m.min(t)));
        }
        if let Some(b) = f.barrier {
            let reach = b + *la;
            cross_min = Some(cross_min.map_or(reach, |m| m.min(reach)));
        }
    }
    let Some(t) = t_min else { return Plan::Drained };
    if t > horizon {
        return Plan::Horizon;
    }
    if coalescing {
        // Count the shards with any event within one lookahead of
        // `t_min`. A barrier over so few shards synchronizes a causal
        // chain, not parallel work; hand the round to the serial-phase
        // executor instead.
        let gate_end = t + lookahead;
        let mut active = 0usize;
        for i in 0..shards.len() {
            let f = core.fronts.refresh(i, || shards.shard(i).fronts());
            if f.next.is_some_and(|x| x <= gate_end) {
                active += 1;
            }
        }
        if active <= SERIAL_MAX {
            return Plan::Serial;
        }
    }
    // The cap lets events *at* the horizon run (sequential `run_until`
    // semantics); `SimTime + SimDuration` saturates, so `u64::MAX` is
    // safe.
    let cap = horizon + SimDuration::from_nanos(1);
    let base = (t + lookahead).min(cap);
    let end = if coalescing {
        // No main-class event anywhere → nothing can ever cross again;
        // the window is unbounded (capped). `.max(base)` is defensive:
        // cross_min ≥ t_min + min Λ ≥ base holds by construction.
        cross_min.unwrap_or(cap).min(cap).max(base)
    } else {
        base
    };
    Plan::Window {
        end,
        coalesced: end > base,
    }
}

/// The barrier: k-way merge the shard-local delivery records in global
/// `(time, seq)` order, assigning every emission its final global
/// sequence number in exactly the order the sequential engine would
/// have, replaying sink effects in that order, and routing cross-shard
/// events into their destination queues. Works entirely through the
/// persistent scratch in [`Core`] and the shards' cleared-in-place
/// ledgers: in steady state this allocates nothing.
fn merge_window(
    core: &mut Core,
    shards: &mut impl ShardAccess,
    sink: &mut dyn MetricsSink,
) -> Result<(), LookaheadViolation> {
    let n = shards.len();
    for i in 0..n {
        if let Some(v) = &shards.shard(i).violation {
            return Err(v.clone());
        }
    }
    for i in 0..n {
        let emitted = shards.shard(i).emitted as usize;
        let m = &mut core.seqmaps[i];
        m.clear();
        m.resize(emitted, u64::MAX);
    }
    core.rec_cur.fill(0);
    core.emi_cur.fill(0);
    core.op_cur.fill(0);

    loop {
        // Head record with the globally smallest (time, seq). A
        // provisional head's parent record precedes it in the same
        // shard (a parent emits strictly before its child is popped),
        // so its sequence number is always already resolved.
        let mut best: Option<(SimTime, u64, usize)> = None;
        for i in 0..n {
            let cur = core.rec_cur[i];
            let Some(r) = shards.shard(i).records.get(cur) else {
                continue;
            };
            let (at, key) = (r.at, r.key);
            let seq = match key {
                Key::Resolved(s) => s,
                Key::Provisional(idx) => {
                    let s = core.seqmaps[i][idx as usize];
                    debug_assert_ne!(s, u64::MAX, "unresolved provisional key at merge");
                    s
                }
            };
            if best.is_none_or(|(bt, bs, _)| (at, seq) < (bt, bs)) {
                best = Some((at, seq, i));
            }
        }
        let Some((at, _, i)) = best else { break };
        let r = shards.shard(i).records[core.rec_cur[i]];
        core.rec_cur[i] += 1;
        core.now = at;
        core.events += 1;
        core.shard_events[i] += 1;
        core.pending -= 1;
        for _ in 0..r.n_ops {
            let op = shards.shard(i).ops[core.op_cur[i]];
            core.op_cur[i] += 1;
            apply_op(&mut *sink, op);
        }
        for _ in 0..r.n_emissions {
            let seq = core.next_seq;
            core.next_seq += 1;
            core.pending += 1;
            core.peak_pending = core.peak_pending.max(core.pending);
            // Extract the routed event first so the source-shard borrow
            // ends before the destination shard is touched.
            let routed = {
                let shard = shards.shard(i);
                let e = &mut shard.emissions[core.emi_cur[i]];
                core.emi_cur[i] += 1;
                match e {
                    Emission::Local { idx } => {
                        core.seqmaps[i][*idx as usize] = seq;
                        None
                    }
                    Emission::Out { dest, at, event } => Some((
                        *dest as usize,
                        *at,
                        event.take().expect("emission consumed twice"),
                    )),
                }
            };
            if let Some((dest, at, event)) = routed {
                let deferred = is_deferred(&event);
                shards.shard(dest).main.push(at, seq, event, deferred);
                core.fronts.mark_dirty(dest);
            }
        }
    }

    // Side-heap remainders (all at or past the window end) move into
    // the main queue with their now-resolved sequence numbers; ledgers
    // clear in place so their capacity persists.
    for i in 0..n {
        let shard = shards.shard(i);
        let touched = !shard.records.is_empty();
        while let Some(Reverse(entry)) = shard.side.pop() {
            let seq = core.seqmaps[i][entry.idx as usize];
            debug_assert_ne!(seq, u64::MAX, "unresolved side event after merge");
            let deferred = is_deferred(&entry.event);
            shard.main.push(entry.at, seq, entry.event, deferred);
        }
        shard.records.clear();
        shard.emissions.clear();
        shard.ops.clear();
        shard.emitted = 0;
        if touched {
            core.fronts.mark_dirty(i);
        }
    }
    Ok(())
}

/// A serial phase: execute the active shards' events in exact global
/// `(time, seq)` order, assigning each emission its final sequence
/// number the moment its parent is handled — precisely what the
/// sequential engine's `schedule_at` does, so byte-identity is by
/// construction rather than by merge argument.
///
/// The active set is every shard with an event within one `gate` of the
/// global front. Parked shards hold no events before `wake` (the
/// earliest parked key, tightened whenever the phase routes an event
/// into a parked queue), so each pop really is the global minimum.
/// When the phase catches up to `wake`, the waking shard is promoted
/// (after demoting any active shard whose front fell behind); only when
/// a promotion would exceed [`SERIAL_MAX`] does the phase end and the
/// planner return to barriered windows. One phase counts as one window;
/// it is coalesced if it advanced past `t_min + gate`, i.e. covered
/// more than one fixed-step window.
fn run_serial_phase(
    core: &mut Core,
    shards: &mut impl ShardAccess,
    sink: &mut dyn MetricsSink,
    horizon: SimTime,
    gate: SimDuration,
) {
    let n = shards.len();
    let mut active = std::mem::take(&mut core.active);
    active.clear();
    let mut t_min: Option<SimTime> = None;
    for i in 0..n {
        let f = core.fronts.refresh(i, || shards.shard(i).fronts());
        if let Some(t) = f.next {
            t_min = Some(t_min.map_or(t, |m| m.min(t)));
        }
    }
    let Some(t0) = t_min else {
        core.active = active;
        return;
    };
    let gate_end = t0 + gate;
    // Earliest key on any parked shard, and which shard holds it.
    let mut wake: Option<((SimTime, u64), usize)> = None;
    for i in 0..n {
        let f = core.fronts.refresh(i, || shards.shard(i).fronts());
        match f.next {
            Some(t) if t <= gate_end => active.push(i),
            Some(_) => {
                let k = shards.shard(i).main.peek_key().expect("front is Some");
                if wake.is_none_or(|(wk, _)| k < wk) {
                    wake = Some((k, i));
                }
            }
            None => {}
        }
    }
    core.windows += 1;
    let mut last_at = t0;

    loop {
        let mut best: Option<((SimTime, u64), usize)> = None;
        for &i in &active {
            if let Some(k) = shards.shard(i).main.peek_key() {
                if best.is_none_or(|(bk, _)| k < bk) {
                    best = Some((k, i));
                }
            }
        }
        // Promote the waking shard when the phase catches up to it (or
        // the active set drained); stop only if that would exceed
        // SERIAL_MAX even after demoting shards that fell behind.
        let caught_up = match (best, wake) {
            (None, None) => break,
            (Some((bk, _)), Some((wk, _))) => bk >= wk,
            (None, Some(_)) => true,
            (Some(_), None) => false,
        };
        if caught_up {
            let ((wt, _), w) = wake.expect("caught up to a parked key");
            let horizon_gate = wt + gate;
            active.retain(|&i| {
                shards
                    .shard(i)
                    .main
                    .peek_key()
                    .is_some_and(|(t, _)| t <= horizon_gate)
            });
            if active.len() >= SERIAL_MAX {
                break;
            }
            active.push(w);
            wake = None;
            for i in 0..n {
                if active.contains(&i) {
                    continue;
                }
                if let Some(k) = shards.shard(i).main.peek_key() {
                    if wake.is_none_or(|(wk, _)| k < wk) {
                        wake = Some((k, i));
                    }
                }
            }
            continue;
        }
        let ((at, _), i) = best.expect("not caught up implies an active key");
        if at > horizon {
            break;
        }

        // Pop and handle the globally earliest event, then drain its
        // ledger with immediate sequence assignment.
        let shard = shards.shard(i);
        let (_, _, event) = shard.main.pop().expect("peeked");
        shard.window_end = at;
        debug_assert!(shard.side.is_empty(), "side events before a serial pop");
        debug_assert_eq!(shard.emitted, 0, "ledger not drained");
        shard.handle(at, event);
        core.now = at;
        core.events += 1;
        core.shard_events[i] += 1;
        core.pending -= 1;
        last_at = at;
        let n_ops = shards.shard(i).ops.len();
        for oi in 0..n_ops {
            let op = shards.shard(i).ops[oi];
            apply_op(&mut *sink, op);
        }
        let mut side_scratch = std::mem::take(&mut core.side_scratch);
        {
            let shard = shards.shard(i);
            while let Some(Reverse(entry)) = shard.side.pop() {
                side_scratch.push(entry);
            }
        }
        let n_emissions = shards.shard(i).emissions.len();
        for ei in 0..n_emissions {
            let seq = core.next_seq;
            core.next_seq += 1;
            core.pending += 1;
            core.peak_pending = core.peak_pending.max(core.pending);
            let routed = {
                let shard = shards.shard(i);
                match &mut shard.emissions[ei] {
                    Emission::Local { idx } => {
                        let pos = side_scratch
                            .iter()
                            .position(|e| e.idx == *idx)
                            .expect("local emission in side scratch");
                        let e = side_scratch.swap_remove(pos);
                        let deferred = is_deferred(&e.event);
                        shard.main.push(e.at, seq, e.event, deferred);
                        None
                    }
                    Emission::Out { dest, at, event } => Some((
                        *dest as usize,
                        *at,
                        event.take().expect("emission consumed twice"),
                    )),
                }
            };
            if let Some((dest, eat, event)) = routed {
                let deferred = is_deferred(&event);
                shards.shard(dest).main.push(eat, seq, event, deferred);
                core.fronts.mark_dirty(dest);
                if !active.contains(&dest) {
                    let k = (eat, seq);
                    if wake.is_none_or(|(wk, _)| k < wk) {
                        wake = Some((k, dest));
                    }
                }
            }
        }
        debug_assert!(side_scratch.is_empty(), "orphaned local emission");
        core.side_scratch = side_scratch;
        let shard = shards.shard(i);
        shard.emissions.clear();
        shard.ops.clear();
        shard.emitted = 0;
        core.fronts.mark_dirty(i);
    }

    if last_at > gate_end {
        core.windows_coalesced += 1;
    }
    core.active = active;
}

/// Epoch-counter handshake between the coordinator and the persistent
/// workers: bump `epoch` + notify `work` to dispatch a window; workers
/// count themselves in via `done` + `idle`. `failed` marks a worker that
/// panicked (debug-build lookahead assertion) so the coordinator stops
/// waiting; the panic itself resurfaces when the thread scope joins.
struct PoolSync {
    state: Mutex<PoolState>,
    work: Condvar,
    idle: Condvar,
}

struct PoolState {
    epoch: u64,
    window_end: SimTime,
    done: usize,
    failed: bool,
    shutdown: bool,
}

impl PoolSync {
    fn new() -> Self {
        PoolSync {
            state: Mutex::new(PoolState {
                epoch: 0,
                window_end: SimTime::ZERO,
                done: 0,
                failed: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, PoolState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A persistent worker: park until the epoch advances, run the assigned
/// shard chunk against the dispatched window end, count in, repeat.
fn worker_loop(sync: &PoolSync, chunk: &[Mutex<ShardCtx>]) {
    let mut seen = 0u64;
    loop {
        let window_end;
        {
            let mut st = sync.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    break;
                }
                st = sync
                    .work
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            seen = st.epoch;
            window_end = st.window_end;
        }
        // Catch a panic (debug-build lookahead assertion) so the
        // coordinator is always released from its idle wait; the panic
        // resumes below and propagates when the scope joins.
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for m in chunk {
                let mut shard = lock_shard(m);
                shard.window_end = window_end;
                shard.run_window();
            }
        }));
        {
            let mut st = sync.lock();
            st.done += 1;
            if res.is_err() {
                st.failed = true;
            }
        }
        sync.idle.notify_one();
        if let Err(p) = res {
            std::panic::resume_unwind(p);
        }
    }
}

/// A [`NetworkSim`] running under the partitioned parallel engine. See
/// the module docs for the determinism argument and the restrictions.
pub struct PartitionedSim {
    shards: Vec<Mutex<ShardCtx>>,
    ctrl_shard: usize,
    assign: Arc<Vec<u32>>,
    /// Global conservative lookahead `L = min_s Λ_s`.
    lookahead: SimDuration,
    /// Per-shard emission lower bounds `Λ_s` (coalescing).
    shard_lookahead: Vec<SimDuration>,
    coalescing: bool,
    threads: usize,
    core: Core,
    sink: Box<dyn MetricsSink>,
    rest: Rest,
}

impl PartitionedSim {
    /// Shard `world` along `partitioner`'s cut, processing windows with
    /// `threads` worker threads (1 = same engine, serial window loop).
    /// Window coalescing is on by default ([`Self::with_coalescing`]).
    ///
    /// Fails when the configuration needs the sequential engine (see the
    /// module-level *Restrictions*) or when the timing model yields no
    /// positive lookahead.
    pub fn new<P: Partitioner + ?Sized>(
        world: NetworkSim,
        partitioner: &P,
        threads: usize,
    ) -> Result<Self, String> {
        let config = *world.config();
        if config.fault_choices.is_some() {
            return Err("fault choice points need the sequential engine".into());
        }
        if config.faults != FaultConfig::NONE {
            return Err("fault injection needs the sequential engine".into());
        }
        if config.paranoid {
            return Err("paranoid checking walks global state; use the sequential engine".into());
        }
        if config.byzantine.is_some() {
            return Err(
                "byzantine choice points and taint tracking need the sequential engine".into(),
            );
        }
        if config.replication.enabled() {
            return Err(
                "controller replication swaps global controller state; use the sequential engine"
                    .into(),
            );
        }
        if config.analysis_gate {
            return Err(
                "the analysis gate runs controller-global; disable it or use the sequential engine"
                    .into(),
            );
        }
        if !matches!(config.timing.install, InstallDelay::None) {
            return Err(
                "stochastic install delays draw switch-side RNG; use the sequential engine".into(),
            );
        }

        let partitions = partitioner.partitions().max(1);
        let ctrl_shard = partitions;
        let nshards = partitions + 1;

        // Per-shard emission bounds Λ_s (see the module docs for the cut
        // argument); the global lookahead is their minimum.
        let proc = ms(config.timing.switch_proc_ms);
        let tx = ms(config.timing.ctrl_tx_ms);
        let ctrl_floor = match config.timing.control {
            ControlLatency::NormalMs { floor_ms, .. } => ms(floor_ms),
            ControlLatency::ShortestPathFrom(_) => SimDuration::ZERO,
        };
        let mut switch_la = proc + ctrl_floor;
        if let Some(cross) = min_cross_partition_latency(world.topology(), partitioner) {
            switch_la = switch_la.min(proc + cross);
        }
        let ctrl_la = tx + ctrl_floor;
        let lookahead = switch_la.min(ctrl_la);
        if lookahead == SimDuration::ZERO {
            return Err("timing model yields zero lookahead; no parallel window exists".into());
        }
        let mut shard_lookahead = vec![switch_la; nshards];
        shard_lookahead[ctrl_shard] = ctrl_la;

        let n = world.topology().node_count();
        let assign: Arc<Vec<u32>> = Arc::new(
            world
                .topology()
                .node_ids()
                .map(|id| {
                    let s = partitioner.partition_of(id);
                    assert!(s < partitions, "partition_of out of range");
                    s as u32
                })
                .collect(),
        );

        let NetworkSim {
            topo,
            switches,
            controller,
            config,
            rng,
            tables,
            switch_busy,
            polling,
            ctrl_busy,
            batches,
            flows,
            sink,
            scratch: _,
            violations,
            analysis_findings,
            gate_cache,
            gate_stats,
            liars: _,
            byz_taints: _,
            byz_outcomes: _,
            standbys: _,
            failed_over: _,
        } = world;
        let topo = Arc::new(topo);

        let mut shards: Vec<ShardCtx> = (0..nshards)
            .map(|id| ShardCtx {
                id: id as u32,
                ctrl_shard: ctrl_shard as u32,
                config,
                topo: Arc::clone(&topo),
                tables: Arc::clone(&tables),
                assign: Arc::clone(&assign),
                main: ClassedQueue::new(config.queue_backend),
                side: BinaryHeap::new(),
                window_end: SimTime::ZERO,
                records: Vec::new(),
                emissions: Vec::new(),
                ops: Vec::new(),
                emitted: 0,
                violation: None,
                local: if id < partitions {
                    vec![u32::MAX; n]
                } else {
                    Vec::new()
                },
                nodes: Vec::new(),
                switches: Vec::new(),
                busy: Vec::new(),
                polling: Vec::new(),
                scratch: Vec::new(),
                ctrl_scratch: Vec::new(),
                ctrl: None,
            })
            .collect();

        for (i, sw) in switches.into_switches().into_iter().enumerate() {
            let s = assign[i] as usize;
            let shard = &mut shards[s];
            shard.local[i] = shard.switches.len() as u32;
            shard.nodes.push(NodeId(i as u32));
            shard.switches.push(sw);
            shard.busy.push(switch_busy[i]);
            shard.polling.push(polling[i]);
        }
        shards[ctrl_shard].ctrl = Some(CtrlState {
            controller,
            rng,
            ctrl_busy,
            batches,
        });

        Ok(PartitionedSim {
            shards: shards.into_iter().map(Mutex::new).collect(),
            ctrl_shard,
            assign,
            lookahead,
            shard_lookahead,
            coalescing: true,
            threads: threads.max(1),
            core: Core::new(nshards),
            sink,
            rest: Rest {
                topo,
                tables,
                config,
                flows,
                violations,
                analysis_findings,
                gate_cache,
                gate_stats,
            },
        })
    }

    /// Override the derived lookahead (globally and per shard). Shrinking
    /// the window is always safe (more barriers, same order); *growing*
    /// it past the derived bound deliberately breaks the conservative
    /// guarantee — the lookahead-safety tests use this to prove the
    /// enforcement trips.
    pub fn with_lookahead(mut self, lookahead: SimDuration) -> Self {
        self.lookahead = lookahead;
        self.shard_lookahead.iter_mut().for_each(|s| *s = lookahead);
        self
    }

    /// Enable or disable window coalescing (on by default). Off, every
    /// window is the fixed `[t_min, t_min + L)`; the merged order is
    /// byte-identical either way (module docs, clause 4).
    pub fn with_coalescing(mut self, on: bool) -> Self {
        self.coalescing = on;
        self
    }

    /// Pre-size every shard's queue for roughly `capacity` total pending
    /// events (mirrors the sequential `Simulation::with_queue_capacity`).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        let per = capacity / self.shards.len().max(1) + 1;
        for m in &mut self.shards {
            m.get_mut()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .main
                .reserve(per);
        }
        self
    }

    /// The derived (or overridden) conservative lookahead.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Whether window coalescing is enabled.
    pub fn coalescing(&self) -> bool {
        self.coalescing
    }

    /// Number of switch partitions (the controller shard is one more).
    pub fn partitions(&self) -> usize {
        self.shards.len() - 1
    }

    /// Barrier windows processed so far.
    pub fn windows(&self) -> u64 {
        self.core.windows
    }

    /// Windows whose end was stretched past the fixed `t_min + L` bound
    /// by coalescing.
    pub fn windows_coalesced(&self) -> u64 {
        self.core.windows_coalesced
    }

    /// Events delivered so far, by shard (switch partitions first, the
    /// controller shard last). Sums to [`Self::events_delivered`].
    pub fn shard_events(&self) -> &[u64] {
        &self.core.shard_events
    }

    /// Total events delivered.
    pub fn events_delivered(&self) -> u64 {
        self.core.events
    }

    /// High-water mark of pending events (identical to the sequential
    /// engine's `peak_queue_depth`: the barrier replays the sequential
    /// push/pop schedule when accounting).
    pub fn peak_queue_depth(&self) -> usize {
        self.core.peak_pending
    }

    /// Schedule a seed event (same clamp semantics as the sequential
    /// `Simulation::schedule_at`).
    pub fn schedule_at(&mut self, at: SimTime, event: Event) {
        let at = at.max(self.core.now);
        let seq = self.core.next_seq;
        self.core.next_seq += 1;
        let dest = self.shard_of_event(&event);
        let deferred = is_deferred(&event);
        self.shards[dest]
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .main
            .push(at, seq, event, deferred);
        self.core.pending += 1;
        self.core.peak_pending = self.core.peak_pending.max(self.core.pending);
        self.core.fronts.mark_dirty(dest);
    }

    fn shard_of_event(&self, event: &Event) -> usize {
        match event {
            Event::DeliverToSwitch { node, .. }
            | Event::InstallComplete { node, .. }
            | Event::InjectPacket { node, .. }
            | Event::PollTick { node } => self.assign[node.index()] as usize,
            Event::DeliverToController { .. }
            | Event::CtrlIngress { .. }
            | Event::ControllerExec { .. }
            | Event::Trigger { .. }
            | Event::ControllerTimer
            | Event::ControllerFailover => self.ctrl_shard,
        }
    }

    /// Run until the queues drain.
    pub fn run(&mut self) -> Result<RunOutcome, LookaheadViolation> {
        self.run_until(SimTime::from_nanos(u64::MAX))
    }

    /// Run until the queues drain or the earliest pending event lies
    /// beyond `horizon` (same semantics as the sequential `run_until`).
    pub fn run_until(&mut self, horizon: SimTime) -> Result<RunOutcome, LookaheadViolation> {
        let workers = self.threads.min(self.shards.len());
        if workers <= 1 {
            self.run_until_serial(horizon)
        } else {
            self.run_until_pooled(horizon, workers)
        }
    }

    /// The serial window loop: plan → run every shard in place → merge,
    /// touching the shard mutexes only through `get_mut` (no locking).
    /// This path is allocation-free in steady state.
    fn run_until_serial(&mut self, horizon: SimTime) -> Result<RunOutcome, LookaheadViolation> {
        let lookahead = self.lookahead;
        let coalescing = self.coalescing;
        let shard_lookahead = &self.shard_lookahead;
        let core = &mut self.core;
        let sink = &mut self.sink;
        let mut access = DirectShards(&mut self.shards);
        loop {
            match plan_window(
                core,
                &mut access,
                horizon,
                lookahead,
                shard_lookahead,
                coalescing,
            ) {
                Plan::Drained => {
                    return Ok(RunOutcome::QueueDrained {
                        finished_at: core.now,
                        events: core.events,
                    })
                }
                Plan::Horizon => {
                    return Ok(RunOutcome::HorizonReached {
                        horizon,
                        events: core.events,
                    })
                }
                Plan::Window { end, coalesced } => {
                    core.windows += 1;
                    if coalesced {
                        core.windows_coalesced += 1;
                    }
                    for i in 0..access.len() {
                        let shard = access.shard(i);
                        shard.window_end = end;
                        shard.run_window();
                    }
                    merge_window(core, &mut access, &mut **sink)?;
                }
                Plan::Serial => {
                    run_serial_phase(core, &mut access, &mut **sink, horizon, lookahead);
                }
            }
        }
    }

    /// The pooled window loop: spawn the persistent workers once, then
    /// plan and merge on this thread while the workers are parked,
    /// dispatching each window by epoch bump.
    fn run_until_pooled(
        &mut self,
        horizon: SimTime,
        workers: usize,
    ) -> Result<RunOutcome, LookaheadViolation> {
        let nshards = self.shards.len();
        let per = nshards.div_ceil(workers);
        let n_chunks = nshards.div_ceil(per);
        let lookahead = self.lookahead;
        let coalescing = self.coalescing;
        let shards = &self.shards;
        let shard_lookahead = &self.shard_lookahead;
        let core = &mut self.core;
        let sink = &mut self.sink;
        let sync = PoolSync::new();
        std::thread::scope(|scope| {
            for chunk in shards.chunks(per) {
                let sync = &sync;
                scope.spawn(move || worker_loop(sync, chunk));
            }
            let out = (|| loop {
                let plan = {
                    let mut guards: Vec<MutexGuard<'_, ShardCtx>> =
                        shards.iter().map(lock_shard).collect();
                    let mut access = LockedShards(&mut guards);
                    plan_window(
                        core,
                        &mut access,
                        horizon,
                        lookahead,
                        shard_lookahead,
                        coalescing,
                    )
                };
                match plan {
                    Plan::Drained => {
                        return Ok(RunOutcome::QueueDrained {
                            finished_at: core.now,
                            events: core.events,
                        })
                    }
                    Plan::Horizon => {
                        return Ok(RunOutcome::HorizonReached {
                            horizon,
                            events: core.events,
                        })
                    }
                    Plan::Window { end, coalesced } => {
                        core.windows += 1;
                        if coalesced {
                            core.windows_coalesced += 1;
                        }
                        {
                            let mut st = sync.lock();
                            st.window_end = end;
                            st.done = 0;
                            st.epoch += 1;
                        }
                        sync.work.notify_all();
                        let all_in = {
                            let mut st = sync.lock();
                            while st.done < n_chunks && !st.failed {
                                st = sync
                                    .idle
                                    .wait(st)
                                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                            }
                            !st.failed
                        };
                        if !all_in {
                            // A worker panicked; the panic re-raises
                            // when the scope joins below, so this value
                            // is never observed.
                            return Ok(RunOutcome::HorizonReached {
                                horizon,
                                events: core.events,
                            });
                        }
                        let mut guards: Vec<MutexGuard<'_, ShardCtx>> =
                            shards.iter().map(lock_shard).collect();
                        let mut access = LockedShards(&mut guards);
                        merge_window(core, &mut access, &mut **sink)?;
                    }
                    Plan::Serial => {
                        // Workers stay parked; the coordinator owns every
                        // shard for the duration of the phase.
                        let mut guards: Vec<MutexGuard<'_, ShardCtx>> =
                            shards.iter().map(lock_shard).collect();
                        let mut access = LockedShards(&mut guards);
                        run_serial_phase(core, &mut access, &mut **sink, horizon, lookahead);
                    }
                }
            })();
            {
                let mut st = sync.lock();
                st.shutdown = true;
            }
            sync.work.notify_all();
            out
        })
    }

    /// Reassemble the (sequentially-equivalent) [`NetworkSim`]: switch
    /// state regroups in `NodeId` order, the controller shard returns the
    /// controller, RNG, and busy horizon, and the metrics sink carries
    /// the merged observation stream.
    pub fn into_world(self) -> NetworkSim {
        let PartitionedSim {
            shards,
            ctrl_shard,
            sink,
            rest,
            ..
        } = self;
        let n = rest.topo.node_count();
        let mut switches: Vec<Option<Switch>> = (0..n).map(|_| None).collect();
        let mut switch_busy = vec![SimTime::ZERO; n];
        let mut polling = vec![false; n];
        let mut ctrl = None;
        for m in shards {
            let mut shard = m
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if shard.id as usize == ctrl_shard {
                ctrl = shard.ctrl.take();
                continue;
            }
            for (l, sw) in shard.switches.drain(..).enumerate() {
                let g = shard.nodes[l].index();
                switches[g] = Some(sw);
                switch_busy[g] = shard.busy[l];
                polling[g] = shard.polling[l];
            }
        }
        let cs = ctrl.expect("controller shard present");
        let Rest {
            topo,
            tables,
            config,
            flows,
            violations,
            analysis_findings,
            gate_cache,
            gate_stats,
        } = rest;
        NetworkSim {
            topo: Arc::try_unwrap(topo).unwrap_or_else(|arc| (*arc).clone()),
            switches: SwitchTable::from_switches(
                switches
                    .into_iter()
                    .map(|s| s.expect("every node owned"))
                    .collect(),
            ),
            controller: cs.controller,
            config,
            rng: cs.rng,
            tables,
            switch_busy,
            polling,
            ctrl_busy: cs.ctrl_busy,
            batches: cs.batches,
            flows,
            sink,
            scratch: Vec::new(),
            violations,
            analysis_findings,
            gate_cache,
            gate_stats,
            liars: Vec::new(),
            byz_taints: Vec::new(),
            byz_outcomes: Vec::new(),
            standbys: Vec::new(),
            failed_over: false,
        }
    }
}

fn apply_op(sink: &mut dyn MetricsSink, op: SinkOp) {
    match op {
        SinkOp::Arrival(t, node, pkt) => sink.record_arrival(t, node, pkt),
        SinkOp::Delivery(t, node, pkt) => sink.record_delivery(t, node, pkt),
        SinkOp::PacketDrop(t, node, pkt, reason) => sink.record_drop(t, node, pkt, reason),
        SinkOp::Completion(t, flow, version) => sink.record_completion(t, flow, version),
        SinkOp::Alarm(t, flow, reason) => sink.record_alarm(t, flow, reason),
        SinkOp::Trigger(t, batch) => sink.record_trigger(t, batch),
        SinkOp::Unm(t, node) => sink.record_unm_delivery(t, node),
    }
}

/// Event router for the *merged* sharded scheduler
/// ([`p4update_des::Simulation::with_partitions`]): same node→partition
/// assignment as the parallel engine, controller events in the extra
/// last shard. The merged mode keeps the fully general sequential
/// semantics (faults, choosers, paranoid checking) while exercising the
/// sharded queue plumbing.
pub fn event_router<P: Partitioner + ?Sized>(
    topo: &Topology,
    partitioner: &P,
) -> p4update_des::EventRouter<Event> {
    let ctrl = partitioner.partitions().max(1);
    let assign: Vec<usize> = topo
        .node_ids()
        .map(|id| partitioner.partition_of(id))
        .collect();
    Box::new(move |event: &Event| match event {
        Event::DeliverToSwitch { node, .. }
        | Event::InstallComplete { node, .. }
        | Event::InjectPacket { node, .. }
        | Event::PollTick { node } => assign[node.index()],
        Event::DeliverToController { .. }
        | Event::CtrlIngress { .. }
        | Event::ControllerExec { .. }
        | Event::Trigger { .. }
        | Event::ControllerTimer
        | Event::ControllerFailover => ctrl,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TimingConfig;
    use crate::network::{simulation, System};
    use p4update_core::Strategy;
    use p4update_net::{topologies, Path, PodPartitioner, SinglePartition};

    /// Build the Fig. 1 migration world (WAN timing, gate off).
    fn fig1_world(seed: u64) -> (NetworkSim, usize) {
        let topo = topologies::fig1();
        let config = SimConfig::new(TimingConfig::wan_multi_flow(topo.centroid()), seed)
            .with_analysis_gate(false);
        let mut world = NetworkSim::new(topo, System::P4Update(Strategy::Auto), config, None);
        let old = Path::new(topologies::fig1_old_path());
        let new = Path::new(topologies::fig1_new_path());
        world.install_initial_path(FlowId(0), &old, 1.0);
        let batch = world.add_batch(vec![FlowUpdate::new(FlowId(0), Some(old), new, 1.0)]);
        (world, batch)
    }

    fn fingerprint(world: &NetworkSim) -> String {
        format!("{:?}", world.metrics())
    }

    #[test]
    fn single_partition_parallel_matches_sequential_on_fig1() {
        let (world, batch) = fig1_world(1);
        let mut seq = simulation(world);
        seq.schedule_at(SimTime::ZERO, Event::Trigger { batch });
        assert!(seq.run().drained());
        let seq_events = seq.events_delivered();
        let seq_peak = seq.peak_queue_depth();
        let seq_world = seq.into_world();

        let (world, batch) = fig1_world(1);
        let mut par = PartitionedSim::new(world, &SinglePartition, 1).unwrap();
        par.schedule_at(SimTime::ZERO, Event::Trigger { batch });
        assert!(par.run().unwrap().drained());
        assert_eq!(par.events_delivered(), seq_events);
        assert_eq!(par.peak_queue_depth(), seq_peak);
        let par_world = par.into_world();
        assert_eq!(fingerprint(&par_world), fingerprint(&seq_world));
    }

    /// The fat-tree scenario exercises the DC timing path: CtrlIngress
    /// relocation (NormalMs latency draws), pod-partitioned cross
    /// traffic, and the poll loop.
    fn fat_tree_world(seed: u64) -> (NetworkSim, usize) {
        let topo = topologies::synthetic_fat_tree_64();
        let config = SimConfig::new(TimingConfig::fat_tree(), seed).with_analysis_gate(false);
        let mut world = NetworkSim::new(topo, System::P4Update(Strategy::Auto), config, None);
        // Migrate a few flows across pods so control and data traffic
        // cross every partition boundary.
        let topo = world.topology().clone();
        let mut updates = Vec::new();
        for (i, (a, b)) in [(0usize, 2usize), (1, 3), (2, 0), (3, 1)]
            .iter()
            .enumerate()
        {
            let src = topo.node_by_name(&format!("edge{a}_0")).unwrap();
            let dst = topo.node_by_name(&format!("edge{b}_1")).unwrap();
            let paths = p4update_net::k_shortest_paths(&topo, src, dst, 2);
            assert!(paths.len() >= 2, "fat tree has path diversity");
            let flow = FlowId(i as u32);
            world.install_initial_path(flow, &paths[0], 1.0);
            updates.push(FlowUpdate::new(
                flow,
                Some(paths[0].clone()),
                paths[1].clone(),
                1.0,
            ));
        }
        let batch = world.add_batch(updates);
        (world, batch)
    }

    /// Partition count, thread count, and coalescing setting must all be
    /// invisible in the observables (module docs, clauses 1-4).
    #[test]
    fn pod_partitioned_parallel_matches_sequential_on_fat_tree() {
        let (seq_fp, batch) = fig_run_sequential_baseline();
        for partitions in [1usize, 2, 4, 8] {
            for threads in [1usize, 2] {
                for coalescing in [true, false] {
                    let (w, b) = fat_tree_world(7);
                    assert_eq!(b, batch);
                    let part = PodPartitioner::new(w.topology(), partitions);
                    let mut par = PartitionedSim::new(w, &part, threads)
                        .unwrap()
                        .with_coalescing(coalescing);
                    par.schedule_at(SimTime::ZERO, Event::Trigger { batch: b });
                    assert!(par.run().unwrap().drained());
                    let windows = par.windows();
                    let coalesced = par.windows_coalesced();
                    assert!(coalesced <= windows);
                    if !coalescing {
                        assert_eq!(coalesced, 0, "coalescing off must not stretch windows");
                    }
                    let got = fingerprint(&par.into_world());
                    assert_eq!(
                        got, seq_fp,
                        "partitions={partitions} threads={threads} coalescing={coalescing}"
                    );
                }
            }
        }
    }

    fn fig_run_sequential_baseline() -> (String, usize) {
        let (world, batch) = fat_tree_world(7);
        let mut seq = simulation(world);
        seq.schedule_at(SimTime::ZERO, Event::Trigger { batch });
        assert!(seq.run().drained());
        (fingerprint(&seq.into_world()), batch)
    }

    /// Coalescing collapses windows (the whole point) without changing
    /// the event count, and the counter actually advances.
    #[test]
    fn coalescing_reduces_window_count_on_fat_tree() {
        let run = |coalescing: bool| {
            let (w, b) = fat_tree_world(5);
            let part = PodPartitioner::new(w.topology(), 4);
            let mut par = PartitionedSim::new(w, &part, 1)
                .unwrap()
                .with_coalescing(coalescing);
            par.schedule_at(SimTime::ZERO, Event::Trigger { batch: b });
            assert!(par.run().unwrap().drained());
            (
                par.windows(),
                par.windows_coalesced(),
                par.events_delivered(),
            )
        };
        let (w_on, c_on, e_on) = run(true);
        let (w_off, c_off, e_off) = run(false);
        assert_eq!(e_on, e_off);
        assert_eq!(c_off, 0);
        assert!(c_on > 0, "no window ever coalesced");
        assert!(
            w_on < w_off,
            "coalescing did not reduce windows: {w_on} vs {w_off}"
        );
    }

    #[test]
    fn lookahead_is_derived_from_the_cut() {
        let (world, _) = fat_tree_world(1);
        let part = PodPartitioner::new(world.topology(), 4);
        let par = PartitionedSim::new(world, &part, 1).unwrap();
        // fat-tree timing: min(proc + cross-link, proc + floor, tx + floor)
        // = min(2.0 + 0.05, 2.0 + 1.0, 5.0 + 1.0) = 2.05 ms.
        assert_eq!(par.lookahead(), SimDuration::from_micros(2050));
        assert!(par.coalescing(), "coalescing defaults on");
    }

    #[test]
    fn unsupported_configs_are_rejected() {
        let mk = |config: SimConfig| {
            let topo = topologies::fig1();
            NetworkSim::new(topo, System::P4Update(Strategy::Auto), config, None)
        };
        let base = SimConfig::new(TimingConfig::fat_tree(), 1).with_analysis_gate(false);
        assert!(PartitionedSim::new(mk(base), &SinglePartition, 1).is_ok());
        let paranoid = base.paranoid();
        assert!(PartitionedSim::new(mk(paranoid), &SinglePartition, 1).is_err());
        let gate = base.with_analysis_gate(true);
        assert!(PartitionedSim::new(mk(gate), &SinglePartition, 1).is_err());
        let mut faulty = base;
        faulty.faults.drop_ctrl_to_switch = 0.1;
        assert!(PartitionedSim::new(mk(faulty), &SinglePartition, 1).is_err());
    }

    /// Byzantine and replication configs are refused at construction with
    /// the same structured error in every build profile — the refusal must
    /// not hide behind a debug assertion or the debug-only analysis-gate
    /// default (which this test pins by running `base` through both
    /// explicit gate settings).
    #[test]
    fn byzantine_and_replication_configs_are_rejected() {
        let mk = |config: SimConfig| {
            let topo = topologies::fig1();
            NetworkSim::new(topo, System::P4Update(Strategy::Auto), config, None)
        };
        for gate in [false, cfg!(debug_assertions)] {
            let base = SimConfig::new(TimingConfig::fat_tree(), 1).with_analysis_gate(gate);
            let byz = base.with_byzantine(crate::config::ByzantineConfig::default());
            let err = PartitionedSim::new(mk(byz), &SinglePartition, 1)
                .err()
                .expect("byzantine config must be refused");
            assert!(err.contains("byzantine"), "unhelpful error: {err}");
            let repl = base.with_replication(crate::config::ReplicationConfig {
                replicas: 2,
                failover_at_ms: 10.0,
                lag_ms: 0.0,
            });
            let err = PartitionedSim::new(mk(repl), &SinglePartition, 1)
                .err()
                .expect("replication config must be refused");
            assert!(err.contains("replication"), "unhelpful error: {err}");
        }
    }

    /// The horizon splits a run without perturbing it (mirrors the
    /// sequential engine's stop-and-resume contract); exercised with the
    /// coalescing planner, whose horizon cap must match.
    #[test]
    fn horizon_stops_and_resumes_identically() {
        let (world, batch) = fat_tree_world(3);
        let mut seq = simulation(world);
        seq.schedule_at(SimTime::ZERO, Event::Trigger { batch });
        assert!(seq.run().drained());
        let want = fingerprint(&seq.into_world());

        for coalescing in [true, false] {
            let (world, batch) = fat_tree_world(3);
            let part = PodPartitioner::new(world.topology(), 4);
            let mut par = PartitionedSim::new(world, &part, 1)
                .unwrap()
                .with_coalescing(coalescing);
            par.schedule_at(SimTime::ZERO, Event::Trigger { batch });
            let mid = par.run_until(SimTime::ZERO + ms(40.0)).unwrap();
            assert!(matches!(mid, RunOutcome::HorizonReached { .. }));
            assert!(par.run().unwrap().drained());
            assert_eq!(
                fingerprint(&par.into_world()),
                want,
                "coalescing={coalescing}"
            );
        }
    }
}
