//! End-to-end protocol tests: full update runs for every system on the
//! Fig. 1 topology, with the consistency checker armed on every event.

use p4update_core::Strategy;
use p4update_des::SimTime;
use p4update_net::{topologies, FlowId, FlowUpdate, NodeId, Path, Version};
use p4update_sim::{simulation, Event, NetworkSim, SimConfig, System, TimingConfig};

fn fig1_update() -> FlowUpdate {
    FlowUpdate::new(
        FlowId(0),
        Some(Path::new(topologies::fig1_old_path())),
        Path::new(topologies::fig1_new_path()),
        1.0,
    )
}

/// Run the Fig. 1 migration under `system`; return the completed world.
fn run_fig1(system: System, seed: u64) -> NetworkSim {
    let topo = topologies::fig1();
    let config = SimConfig::new(TimingConfig::wan_multi_flow(topo.centroid()), seed).paranoid();
    let mut world = NetworkSim::new(topo, system, config, None);
    world.install_initial_path(FlowId(0), &Path::new(topologies::fig1_old_path()), 1.0);
    let batch = world.add_batch(vec![fig1_update()]);
    let mut sim = simulation(world);
    sim.schedule_at(SimTime::ZERO, Event::Trigger { batch });
    let outcome = sim.run();
    assert!(outcome.drained(), "simulation stalled: {outcome:?}");
    sim.into_world()
}

/// After a successful migration the new path must be the active forwarding
/// walk.
fn assert_new_path_active(world: &NetworkSim) {
    let new_path = topologies::fig1_new_path();
    for w in new_path.windows(2) {
        let e = world.switches[&w[0]].state.uib.read(FlowId(0));
        assert_eq!(
            e.active_next_hop,
            Some(w[1]),
            "node {} should forward to {}",
            w[0],
            w[1]
        );
    }
    assert!(world.switches[&NodeId(7)]
        .state
        .uib
        .read(FlowId(0))
        .is_egress());
}

#[test]
fn p4update_dual_layer_completes_fig1() {
    let world = run_fig1(System::P4Update(Strategy::Auto), 1);
    assert!(
        world
            .metrics()
            .completion_of(FlowId(0), Version(2))
            .is_some(),
        "controller never learned of completion; alarms: {:?}",
        world.metrics().alarms
    );
    assert_new_path_active(&world);
    assert!(
        world.violations.is_empty(),
        "consistency violated: {:?}",
        world.violations
    );
    assert!(world.metrics().alarms.is_empty());
}

#[test]
fn p4update_single_layer_completes_fig1() {
    let world = run_fig1(System::P4Update(Strategy::ForceSingle), 2);
    assert!(world
        .metrics()
        .completion_of(FlowId(0), Version(2))
        .is_some());
    assert_new_path_active(&world);
    assert!(world.violations.is_empty(), "{:?}", world.violations);
}

#[test]
fn ez_segway_completes_fig1() {
    let world = run_fig1(System::EzSegway { congestion: false }, 3);
    assert!(
        world
            .metrics()
            .completion_of(FlowId(0), Version(2))
            .is_some(),
        "ez-Segway never completed"
    );
    assert_new_path_active(&world);
    assert!(world.violations.is_empty(), "{:?}", world.violations);
}

#[test]
fn central_completes_fig1() {
    let world = run_fig1(System::Central { congestion: false }, 4);
    assert!(world
        .metrics()
        .completion_of(FlowId(0), Version(2))
        .is_some());
    assert_new_path_active(&world);
    assert!(world.violations.is_empty(), "{:?}", world.violations);
}

#[test]
fn dual_layer_beats_single_layer_on_fig1_with_install_delays() {
    // The Fig. 1 scenario is segmented; with exp(100 ms) install delays the
    // dual layer's parallel segment chains must beat the strictly
    // sequential single layer on average (paper: DL −31.5% on Synthetic).
    let topo = topologies::fig1();
    let mut sl_total = 0.0;
    let mut dl_total = 0.0;
    for seed in 0..10 {
        for (strategy, acc) in [
            (Strategy::ForceSingle, &mut sl_total),
            (Strategy::ForceDual, &mut dl_total),
        ] {
            let config = SimConfig::new(TimingConfig::wan_single_flow(topo.centroid()), 100 + seed);
            let mut world = NetworkSim::new(topo.clone(), System::P4Update(strategy), config, None);
            world.install_initial_path(FlowId(0), &Path::new(topologies::fig1_old_path()), 1.0);
            let batch = world.add_batch(vec![fig1_update()]);
            let mut sim = simulation(world);
            sim.schedule_at(SimTime::ZERO, Event::Trigger { batch });
            assert!(sim.run().drained());
            let world = sim.into_world();
            let t = world
                .metrics()
                .completion_of(FlowId(0), Version(2))
                .expect("completed");
            *acc += t.as_millis_f64();
        }
    }
    assert!(
        dl_total < sl_total,
        "DL ({dl_total:.0} ms total) should beat SL ({sl_total:.0} ms total)"
    );
}
