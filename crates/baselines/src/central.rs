//! The Central baseline (§9.1 "Centralized Updates"): the state-of-the-art
//! centralized approach in the spirit of Mahajan–Wattenhofer/Dionysus
//! dependency graphs.
//!
//! The controller greedily computes, per round, the set of nodes that can
//! update in parallel without breaking blackhole/loop freedom (and without
//! violating capacity when congestion awareness is on), pushes their rules,
//! waits for every acknowledgement, and repeats. Every round costs a
//! control-plane round trip plus controller queueing — the overhead
//! P4Update eliminates.

use p4update_dataplane::{ControllerLogic, CtrlEffect, Effect, Endpoint, SwitchLogic, SwitchState};
use p4update_des::SimTime;
use p4update_messages::{CentralMsg, Message};
use p4update_net::{FlowId, FlowUpdate, NodeId, Version};
use std::collections::{BTreeMap, BTreeSet};

/// Per-flow migration state at the controller.
#[derive(Debug, Clone)]
struct FlowMigration {
    update: FlowUpdate,
    /// Nodes whose new rule is installed and acknowledged.
    applied: BTreeSet<NodeId>,
    /// Nodes scheduled in the in-flight round, awaiting acks.
    in_flight: BTreeSet<NodeId>,
    round: u32,
    complete: bool,
}

impl FlowMigration {
    /// The next hop of `node` in the mixed state where `extra` is assumed
    /// updated on top of the acknowledged set: new rule if updated, else
    /// the old rule if the node is on the old path.
    fn mixed_next_hop(&self, node: NodeId, extra: Option<NodeId>) -> Option<NodeId> {
        if self.applied.contains(&node) || extra == Some(node) {
            return self.update.new_path.successor(node);
        }
        self.update
            .old_path
            .as_ref()
            .and_then(|p| p.successor(node))
    }

    /// Whether `node` holds any rule (old or new) in the acknowledged
    /// state. Nodes scheduled in the same round may apply in any order, so
    /// no optimism about them is allowed.
    fn has_rule(&self, node: NodeId) -> bool {
        if self.applied.contains(&node) {
            return true;
        }
        if node == self.update.new_path.egress() {
            return true; // egress terminates in every configuration
        }
        self.update
            .old_path
            .as_ref()
            .is_some_and(|p| p.contains(node))
    }

    /// Can `node` switch to its new rule given only the acknowledged
    /// rounds, without creating a blackhole or a loop? Judging each
    /// candidate against the acknowledged state alone keeps every
    /// intra-round interleaving safe.
    fn safe_to_update(&self, node: NodeId) -> bool {
        // Blackhole freedom: the node's new parent must already hold a
        // rule (same-round peers may apply later than this node).
        if let Some(parent) = self.update.new_path.successor(node) {
            if !self.has_rule(parent) {
                return false;
            }
        }
        // Loop freedom: the mixed forwarding function with `node` updated
        // must be acyclic from every ruled node (packets can be in flight
        // anywhere on the old path).
        let limit = self.update.new_path.nodes().len()
            + self.update.old_path.as_ref().map_or(0, |p| p.nodes().len())
            + 2;
        let starts: Vec<NodeId> = self
            .update
            .new_path
            .nodes()
            .iter()
            .chain(
                self.update
                    .old_path
                    .as_ref()
                    .map_or([].as_slice(), |p| p.nodes())
                    .iter(),
            )
            .copied()
            .collect();
        let egress = self.update.new_path.egress();
        for start in starts {
            let mut cur = start;
            let mut steps = 0usize;
            while cur != egress {
                let Some(next) = self.mixed_next_hop(cur, Some(node)) else {
                    break; // no rule: a transient blackhole, not a loop
                };
                cur = next;
                steps += 1;
                if steps > limit {
                    return false; // walked into a cycle
                }
            }
        }
        true
    }
}

/// The Central controller.
pub struct CentralController {
    flows: BTreeMap<FlowId, FlowMigration>,
    /// Global per-directed-link free capacity (controller's view); present
    /// only when congestion awareness is enabled.
    capacity: Option<BTreeMap<(NodeId, NodeId), f64>>,
    /// Completed `(flow, version)` pairs for the harness. Central does not
    /// track versions; it reports `Version(2)` (the post-update config).
    pub completed: Vec<(FlowId, Version)>,
}

impl CentralController {
    /// Controller without congestion awareness (blackhole/loop only).
    pub fn new() -> Self {
        CentralController {
            flows: BTreeMap::new(),
            capacity: None,
            completed: Vec::new(),
        }
    }

    /// Controller with a global capacity view seeded from link capacities
    /// minus the old paths' allocations.
    pub fn with_congestion(capacity: BTreeMap<(NodeId, NodeId), f64>) -> Self {
        CentralController {
            flows: BTreeMap::new(),
            capacity: Some(capacity),
            completed: Vec::new(),
        }
    }

    /// Greedily select the nodes of the next round for `flow` and emit
    /// their installation commands.
    fn schedule_round(&mut self, flow: FlowId, out: &mut Vec<CtrlEffect>) {
        let Some(m) = self.flows.get(&flow) else {
            return;
        };
        if m.complete || !m.in_flight.is_empty() {
            return;
        }
        let pending: Vec<NodeId> = m
            .update
            .nodes_to_update()
            .filter(|n| !m.applied.contains(n))
            .collect();
        if pending.is_empty() {
            let m = self.flows.get_mut(&flow).expect("checked above");
            m.complete = true;
            self.completed.push((flow, Version(2)));
            out.push(CtrlEffect::UpdateComplete {
                flow,
                version: Version(2),
            });
            return;
        }

        // Greedy selection, scanning from the egress end (upstream nodes
        // depend on downstream ones).
        let mut selected: BTreeSet<NodeId> = BTreeSet::new();
        for &node in pending.iter().rev() {
            if !m.safe_to_update(node) {
                continue;
            }
            // Capacity feasibility under congestion awareness: the move
            // claims the new outgoing link before releasing the old one.
            if let Some(cap) = &self.capacity {
                let new_hop = m.update.new_path.successor(node);
                let old_hop = m.update.old_path.as_ref().and_then(|p| p.successor(node));
                if let Some(nh) = new_hop {
                    if Some(nh) != old_hop {
                        let free = cap.get(&(node, nh)).copied().unwrap_or(f64::INFINITY);
                        if free + 1e-9 < m.update.size {
                            continue;
                        }
                    }
                }
            }
            selected.insert(node);
            // Reserve immediately so later selections in this round see it.
            if let Some(cap) = &mut self.capacity {
                let new_hop = m.update.new_path.successor(node);
                let old_hop = m.update.old_path.as_ref().and_then(|p| p.successor(node));
                if let (Some(nh), true) = (new_hop, new_hop != old_hop) {
                    if let Some(c) = cap.get_mut(&(node, nh)) {
                        *c -= m.update.size;
                    }
                }
            }
        }

        if selected.is_empty() {
            // Deadlocked (e.g., capacity-infeasible order). Leave pending;
            // progress may resume when other flows release capacity.
            return;
        }

        let m = self.flows.get_mut(&flow).expect("checked above");
        m.round += 1;
        let round = m.round;
        m.in_flight = selected.clone();
        let size = m.update.size;
        let hops: Vec<(NodeId, Option<NodeId>)> = selected
            .iter()
            .map(|&n| (n, m.update.new_path.successor(n)))
            .collect();
        for (node, next_hop) in hops {
            out.push(CtrlEffect::Send {
                to: node,
                msg: Message::Central(CentralMsg::Install {
                    flow,
                    next_hop,
                    round,
                    size,
                }),
            });
        }
    }

    /// Retry rounds for flows that made no progress (capacity waits).
    fn reschedule_stalled(&mut self, out: &mut Vec<CtrlEffect>) {
        let stalled: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, m)| !m.complete && m.in_flight.is_empty())
            .map(|(&f, _)| f)
            .collect();
        for f in stalled {
            self.schedule_round(f, out);
        }
    }
}

impl Default for CentralController {
    fn default() -> Self {
        Self::new()
    }
}

impl ControllerLogic for CentralController {
    fn start_update(&mut self, _now: SimTime, updates: &[FlowUpdate], out: &mut Vec<CtrlEffect>) {
        for u in updates {
            self.flows.insert(
                u.flow,
                FlowMigration {
                    update: u.clone(),
                    applied: BTreeSet::new(),
                    in_flight: BTreeSet::new(),
                    round: 0,
                    complete: false,
                },
            );
        }
        let flows: Vec<FlowId> = updates.iter().map(|u| u.flow).collect();
        for f in flows {
            self.schedule_round(f, out);
        }
    }

    fn on_message(&mut self, _now: SimTime, from: NodeId, msg: Message, out: &mut Vec<CtrlEffect>) {
        let Message::Central(CentralMsg::Ack { flow, node, round }) = msg else {
            return;
        };
        debug_assert_eq!(from, node);
        let Some(m) = self.flows.get_mut(&flow) else {
            return;
        };
        if round != m.round {
            return; // stale ack
        }
        if m.in_flight.remove(&node) {
            m.applied.insert(node);
            // Release the old outgoing link once the node left it.
            if let Some(cap) = &mut self.capacity {
                let old_hop = m.update.old_path.as_ref().and_then(|p| p.successor(node));
                let new_hop = m.update.new_path.successor(node);
                if let (Some(oh), true) = (old_hop, old_hop != new_hop) {
                    if let Some(c) = cap.get_mut(&(node, oh)) {
                        *c += m.update.size;
                    }
                }
            }
        }
        if m.in_flight.is_empty() {
            self.schedule_round(flow, out);
            // Capacity released by this round may unblock other flows.
            if self.capacity.is_some() {
                self.reschedule_stalled(out);
            }
        }
    }
}

/// The Central switch logic: install on command, acknowledge on completion.
#[derive(Debug, Default)]
pub struct CentralSwitchLogic {
    pending: BTreeMap<u64, (FlowId, Option<NodeId>, u32, f64)>,
    next_token: u64,
}

impl CentralSwitchLogic {
    /// Fresh logic.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SwitchLogic for CentralSwitchLogic {
    fn on_control(
        &mut self,
        _now: SimTime,
        _state: &mut SwitchState,
        _from: Endpoint,
        msg: Message,
        out: &mut Vec<Effect>,
    ) {
        let Message::Central(CentralMsg::Install {
            flow,
            next_hop,
            round,
            size,
        }) = msg
        else {
            return;
        };
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, (flow, next_hop, round, size));
        out.push(Effect::BeginInstall { flow, token });
    }

    fn on_installed(
        &mut self,
        _now: SimTime,
        state: &mut SwitchState,
        flow: FlowId,
        token: u64,
        out: &mut Vec<Effect>,
    ) {
        let Some((f, next_hop, round, size)) = self.pending.remove(&token) else {
            return;
        };
        debug_assert_eq!(f, flow);
        // Move capacity accounting from the old link to the new one.
        let entry = state.uib.read(flow);
        if let Some(old) = entry.active_next_hop {
            if Some(old) != next_hop {
                state.release_capacity(old, entry.flow_size.max(size));
            }
        }
        if let Some(new) = next_hop {
            if entry.active_next_hop != Some(new) {
                state.reserve_capacity(new, size);
            }
        }
        state.uib.update(flow, |e| {
            e.applied_version = Version(e.applied_version.0.max(1) + 1);
            e.active_next_hop = next_hop;
            if e.flow_size == 0.0 {
                e.flow_size = size;
            }
        });
        out.push(Effect::SendController {
            msg: Message::Central(CentralMsg::Ack {
                flow,
                node: state.id,
                round,
            }),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4update_net::Path;

    fn path(ids: &[u32]) -> Path {
        Path::new(ids.iter().map(|&i| NodeId(i)).collect())
    }

    fn update(old: &[u32], new: &[u32]) -> FlowUpdate {
        FlowUpdate::new(FlowId(0), Some(path(old)), path(new), 1.0)
    }

    fn sent_nodes(effects: &[CtrlEffect]) -> Vec<NodeId> {
        effects
            .iter()
            .filter_map(|e| match e {
                CtrlEffect::Send { to, .. } => Some(*to),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn first_round_covers_safe_nodes() {
        // Old 0-1-5, new 0-2-3-5: 2 and 3 are fresh (need rules bottom-up);
        // 0 must wait for 2.
        let mut c = CentralController::new();
        let mut out = Vec::new();
        c.start_update(
            SimTime::ZERO,
            &[update(&[0, 1, 5], &[0, 2, 3, 5])],
            &mut out,
        );
        // Round 1: node 3 can point at 5 (egress, has rule). Node 2's
        // parent 3 has no rule yet; node 0's parent 2 neither.
        assert_eq!(sent_nodes(&out), vec![NodeId(3)]);
    }

    #[test]
    fn rounds_progress_with_acks() {
        let mut c = CentralController::new();
        let mut out = Vec::new();
        c.start_update(
            SimTime::ZERO,
            &[update(&[0, 1, 5], &[0, 2, 3, 5])],
            &mut out,
        );
        let mut round = 1;
        let mut total_rounds = 1;
        loop {
            let nodes = sent_nodes(&out);
            if nodes.is_empty() {
                break;
            }
            out.clear();
            for n in nodes {
                c.on_message(
                    SimTime::ZERO,
                    n,
                    Message::Central(CentralMsg::Ack {
                        flow: FlowId(0),
                        node: n,
                        round,
                    }),
                    &mut out,
                );
            }
            if out
                .iter()
                .any(|e| matches!(e, CtrlEffect::UpdateComplete { .. }))
            {
                break;
            }
            round += 1;
            total_rounds += 1;
            assert!(total_rounds < 10, "did not converge");
        }
        // Fresh chain of 2 + ingress flip = 3 rounds.
        assert_eq!(total_rounds, 3);
        assert_eq!(c.completed, vec![(FlowId(0), Version(2))]);
    }

    #[test]
    fn loop_risk_defers_upstream_node() {
        // Fig. 1: v2's new parent v3 is fresh; updating v2 before the
        // backward dependency resolves would loop. Round 1 must not
        // contain v2 (whose flip creates 2->3->4->2 with old rules).
        let u = update(&[0, 4, 2, 7], &[0, 1, 2, 3, 4, 5, 6, 7]);
        let mut c = CentralController::new();
        let mut out = Vec::new();
        c.start_update(SimTime::ZERO, &[u], &mut out);
        let nodes = sent_nodes(&out);
        assert!(!nodes.contains(&NodeId(2)), "round 1 was {nodes:?}");
        // Downstream fresh nodes adjacent to ruled parents do go.
        assert!(nodes.contains(&NodeId(6)));
    }

    #[test]
    fn stale_acks_are_ignored() {
        let mut c = CentralController::new();
        let mut out = Vec::new();
        c.start_update(
            SimTime::ZERO,
            &[update(&[0, 1, 5], &[0, 2, 3, 5])],
            &mut out,
        );
        out.clear();
        c.on_message(
            SimTime::ZERO,
            NodeId(3),
            Message::Central(CentralMsg::Ack {
                flow: FlowId(0),
                node: NodeId(3),
                round: 99,
            }),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn congestion_awareness_defers_capacity_violations() {
        // Node 0 moves flow onto link (0,2) with free capacity 0.5 < 1.0.
        let mut cap = BTreeMap::new();
        cap.insert((NodeId(0), NodeId(2)), 0.5);
        let mut c = CentralController::with_congestion(cap);
        let mut out = Vec::new();
        c.start_update(SimTime::ZERO, &[update(&[0, 1, 2], &[0, 2])], &mut out);
        // The only node to update is 0, and it does not fit.
        assert!(sent_nodes(&out).is_empty());
    }

    #[test]
    fn switch_logic_installs_and_acks() {
        use p4update_dataplane::Switch;
        use p4update_des::SimDuration;
        use p4update_net::TopologyBuilder;
        let mut b = TopologyBuilder::new("t");
        let v: Vec<_> = (0..3).map(|i| b.add_node(format!("n{i}"))).collect();
        b.add_link(v[0], v[1], SimDuration::from_millis(1), 10.0);
        b.add_link(v[1], v[2], SimDuration::from_millis(1), 10.0);
        let t = b.build();
        let mut sw = Switch::new(NodeId(1), &t, Box::new(CentralSwitchLogic::new()));
        let effects = sw.handle_message(
            SimTime::ZERO,
            Endpoint::Controller,
            Message::Central(CentralMsg::Install {
                flow: FlowId(0),
                next_hop: Some(NodeId(2)),
                round: 1,
                size: 1.0,
            }),
        );
        let token = match effects[0] {
            Effect::BeginInstall { token, .. } => token,
            ref o => panic!("unexpected {o:?}"),
        };
        let effects = sw.handle_installed(SimTime::ZERO, FlowId(0), token);
        assert!(matches!(
            &effects[0],
            Effect::SendController {
                msg: Message::Central(CentralMsg::Ack { node, round: 1, .. })
            } if *node == NodeId(1)
        ));
        assert_eq!(
            sw.state.uib.read(FlowId(0)).active_next_hop,
            Some(NodeId(2))
        );
    }
}
