//! # p4update-baselines
//!
//! The two state-of-the-art systems the P4Update evaluation compares
//! against (paper §9.1), reimplemented on the same switch chassis so that
//! protocol structure is the only performance variable:
//!
//! - [`central`] — **Central**: the controller computes greedy dependency
//!   rounds (Mahajan–Wattenhofer / Dionysus lineage) and drives every round
//!   through a control-plane round trip.
//! - [`ez_segway`] — **ez-Segway** (Nguyen et al., SOSR '17): the
//!   controller computes segments, dependencies, and (under congestion
//!   awareness) a global priority assignment once; switches coordinate via
//!   data-plane notifications. No verification, no fast-forward.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod central;
pub mod ez_segway;

pub use central::{CentralController, CentralSwitchLogic};
pub use ez_segway::{
    ez_prepare, ez_prepare_congestion, EzController, EzPlan, EzSegment, EzSwitchLogic,
};
