//! The ez-Segway baseline (Nguyen et al., SOSR '17), reimplemented per the
//! paper's adaptation (§9.1): the controller computes segments and their
//! dependencies once, pushes each switch its share, and the data plane
//! coordinates with "good to move" / "segment done" notifications. Unlike
//! P4Update there is **no verification** — switches trust whatever arrives —
//! and **no fast-forward** — a new update waits for the previous one.
//!
//! Congestion awareness runs entirely in the control plane: a global
//! dependency graph over all flows and links, with transitive propagation
//! and static three-level priorities ([`ez_prepare_congestion`]) — the
//! computation Fig. 8b shows P4Update avoiding.

use p4update_dataplane::{ControllerLogic, CtrlEffect, Effect, Endpoint, SwitchLogic, SwitchState};
use p4update_des::SimTime;
use p4update_messages::{EzMsg, EzPriority, EzSegmentKind, Message};
use p4update_net::{FlowId, FlowUpdate, NodeId, Version};
use std::collections::{BTreeMap, BTreeSet};

/// One segment of an ez-Segway update plan.
#[derive(Debug, Clone)]
pub struct EzSegment {
    /// Segment id, 0 at the global ingress end.
    pub id: u32,
    /// Nodes in new-path order: `[finalizer, interior.., initiator]`.
    pub nodes: Vec<NodeId>,
    /// Classification: `InLoop` segments wait for downstream segments.
    pub kind: EzSegmentKind,
    /// Segments that must complete before this one starts.
    pub depends_on: Vec<u32>,
}

/// The full prepared plan for one flow.
#[derive(Debug, Clone)]
pub struct EzPlan {
    /// Flow being updated.
    pub flow: FlowId,
    /// Segments, ingress-most first.
    pub segments: Vec<EzSegment>,
    /// Per-switch messages (one per role a node plays).
    pub msgs: Vec<(NodeId, EzMsg)>,
}

/// Compute the segments of an update: gateways are the nodes shared by the
/// old and new path; a segment between consecutive gateways is `InLoop`
/// when it does not decrease the old-path distance to the egress.
fn compute_segments(update: &FlowUpdate) -> Vec<EzSegment> {
    let new_nodes = update.new_path.nodes();
    let old_dist = |n: NodeId| -> Option<u32> {
        update
            .old_path
            .as_ref()
            .and_then(|p| p.distance_to_egress(n))
    };
    let mut gateways: Vec<(usize, NodeId, u32)> = Vec::new();
    for (i, &n) in new_nodes.iter().enumerate() {
        if let Some(d) = old_dist(n) {
            gateways.push((i, n, d));
        } else if update.old_path.is_none() && (i == 0 || i == new_nodes.len() - 1) {
            gateways.push((i, n, if i == 0 { u32::MAX } else { 0 }));
        }
    }
    let mut segments = Vec::new();
    for (sid, w) in gateways.windows(2).enumerate() {
        let (i_in, _, d_in) = w[0];
        let (i_out, _, d_out) = w[1];
        let kind = if d_in > d_out {
            EzSegmentKind::NotInLoop
        } else {
            EzSegmentKind::InLoop
        };
        segments.push(EzSegment {
            id: sid as u32,
            nodes: new_nodes[i_in..=i_out].to_vec(),
            kind,
            depends_on: Vec::new(),
        });
    }
    // InLoop segments wait for every downstream segment.
    let n = segments.len() as u32;
    for s in &mut segments {
        if s.kind == EzSegmentKind::InLoop {
            s.depends_on = (s.id + 1..n).collect();
        }
    }
    segments
}

/// Prepare one flow update without congestion awareness: segmentation,
/// dependency wiring, and the per-switch message set. This is the
/// control-plane work Fig. 8a measures for ez-Segway.
pub fn ez_prepare(update: &FlowUpdate, priority: EzPriority) -> EzPlan {
    let segments = compute_segments(update);
    let total = segments.len() as u32;
    let global_ingress = update.new_path.ingress();

    // Who must learn of each segment's completion: initiators of dependent
    // segments, plus the global ingress (whole-flow completion tracking).
    let mut notify: BTreeMap<u32, BTreeSet<NodeId>> = BTreeMap::new();
    for s in &segments {
        let initiator = *s.nodes.last().expect("segments are non-empty");
        for &dep in &s.depends_on {
            notify.entry(dep).or_default().insert(initiator);
        }
        notify.entry(s.id).or_default().insert(global_ingress);
    }

    let mut msgs = Vec::new();
    for s in &segments {
        let len = s.nodes.len();
        for (i, &node) in s.nodes.iter().enumerate() {
            let is_finalizer = i == 0;
            let is_initiator = i == len - 1;
            if is_initiator && node != update.new_path.egress() && !is_finalizer {
                // A gateway's own flip belongs to the segment where it is
                // the finalizer; as an initiator it only starts the chain.
            }
            let next_hop = update.new_path.successor(node);
            let upstream = update.new_path.predecessor(node);
            // Initiators need no rule change within this segment; their
            // Update message still configures the chain start.
            let notify_on_done = if is_finalizer {
                notify
                    .get(&s.id)
                    .map(|set| set.iter().copied().collect())
                    .unwrap_or_default()
            } else {
                Vec::new()
            };
            msgs.push((
                node,
                EzMsg::Update {
                    flow: update.flow,
                    next_hop,
                    upstream,
                    segment: s.id,
                    kind: s.kind,
                    depends_on: if is_initiator {
                        s.depends_on.clone()
                    } else {
                        Vec::new()
                    },
                    initiator: is_initiator,
                    finalizer: is_finalizer,
                    priority,
                    size: update.size,
                    notify_on_done,
                    total_segments: (node == global_ingress && is_finalizer).then_some(total),
                },
            ));
        }
    }
    EzPlan {
        flow: update.flow,
        segments,
        msgs,
    }
}

/// The centralized congestion dependency computation (Fig. 8b's target).
///
/// ez-Segway's scheduling entities are *segments*, not flows: for every
/// segment of every concurrently-updating flow, the controller determines
/// which directed links the segment's activation claims and which links
/// its deactivation releases, builds the segment-level dependency graph
/// ("segment `s` waits until segment `t` frees capacity"), computes its
/// transitive closure (deadlock detection requires visibility of wait
/// chains), and finally condenses the per-segment results into the static
/// three-level flow priorities the switches use.
pub fn ez_prepare_congestion(
    updates: &[FlowUpdate],
    capacity: &BTreeMap<(NodeId, NodeId), f64>,
) -> BTreeMap<FlowId, EzPriority> {
    // Entity table: (flow index, claimed links, released links, size).
    struct Entity {
        flow: usize,
        claims: Vec<(NodeId, NodeId)>,
        releases: Vec<(NodeId, NodeId)>,
        size: f64,
    }
    let mut entities: Vec<Entity> = Vec::new();
    for (fi, u) in updates.iter().enumerate() {
        let old_edges: Vec<(NodeId, NodeId)> = u
            .old_path
            .as_ref()
            .map(|p| p.edges().collect())
            .unwrap_or_default();
        let new_edges: Vec<(NodeId, NodeId)> = u.new_path.edges().collect();
        for seg in compute_segments(u) {
            let nodes = &seg.nodes;
            let claims: Vec<(NodeId, NodeId)> = nodes
                .windows(2)
                .map(|w| (w[0], w[1]))
                .filter(|e| !old_edges.contains(e))
                .collect();
            // Links the segment's completion vacates: old-path edges
            // between the segment's gateways that the new path abandons.
            let first = nodes[0];
            let last = *nodes.last().expect("non-empty");
            let releases: Vec<(NodeId, NodeId)> = u
                .old_path
                .as_ref()
                .map(|p| {
                    let (Some(i), Some(j)) = (p.position(first), p.position(last)) else {
                        return Vec::new();
                    };
                    let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
                    p.nodes()[lo..=hi]
                        .windows(2)
                        .map(|w| (w[0], w[1]))
                        .filter(|e| !new_edges.contains(e))
                        .collect()
                })
                .unwrap_or_default();
            entities.push(Entity {
                flow: fi,
                claims,
                releases,
                size: u.size,
            });
        }
    }

    let m = entities.len();
    // Segment-level dependency matrix: dep[i][j] = entity i waits for j.
    // The published algorithm enumerates every (link, claiming segment,
    // releasing segment) combination; no fast paths.
    let mut base = vec![false; m * m];
    for (&e, &cap) in capacity {
        let leaving: Vec<usize> = (0..m)
            .filter(|&j| entities[j].releases.contains(&e))
            .collect();
        let mut free = cap;
        for i in 0..m {
            if entities[i].claims.contains(&e) {
                if free + 1e-9 < entities[i].size {
                    for &j in &leaving {
                        if entities[i].flow != entities[j].flow {
                            base[i * m + j] = true;
                        }
                    }
                } else {
                    free -= entities[i].size;
                }
            }
        }
    }

    // Transitive closure (Floyd–Warshall style) over segments, followed by
    // ez-Segway's deadlock resolution: a cycle in the dependency graph
    // (a segment transitively waiting on itself) is broken by splitting
    // that segment's volume, and the closure is recomputed — iterating
    // until the graph is acyclic.
    let closure = |base: &[bool]| -> Vec<bool> {
        let mut dep = base.to_vec();
        for k in 0..m {
            for i in 0..m {
                if dep[i * m + k] {
                    for j in 0..m {
                        if dep[k * m + j] {
                            dep[i * m + j] = true;
                        }
                    }
                }
            }
        }
        dep
    };
    let mut dep = closure(&base);
    let mut rounds = 0;
    while rounds < m {
        let Some(c) = (0..m).find(|&i| dep[i * m + i]) else {
            break;
        };
        // Split entity c: its (halved) volume fits, so it stops waiting.
        for j in 0..m {
            base[c * m + j] = false;
        }
        dep = closure(&base);
        rounds += 1;
    }

    // Condense to flow priorities: a flow whose segment unblocks others is
    // high priority; one that both blocks and waits is medium; the rest
    // are low.
    let mut blocks = vec![false; updates.len()];
    let mut waits = vec![false; updates.len()];
    for i in 0..m {
        for j in 0..m {
            if dep[i * m + j] {
                waits[entities[i].flow] = true;
                blocks[entities[j].flow] = true;
            }
        }
    }
    updates
        .iter()
        .enumerate()
        .map(|(fi, u)| {
            let prio = match (blocks[fi], waits[fi]) {
                (true, false) => EzPriority::High,
                (true, true) => EzPriority::Medium,
                _ => EzPriority::Low,
            };
            (u.flow, prio)
        })
        .collect()
}

/// The ez-Segway controller.
pub struct EzController {
    /// Capacity view used only when congestion awareness is on.
    capacity: Option<BTreeMap<(NodeId, NodeId), f64>>,
    pending: BTreeSet<FlowId>,
    /// Updates queued behind an unfinished one for the same flow — ez-Segway
    /// cannot fast-forward (§4.2) and waits for completion.
    queued: Vec<FlowUpdate>,
    /// Completed flows (version is nominal; ez-Segway has no versioning).
    pub completed: Vec<(FlowId, Version)>,
}

impl EzController {
    /// Controller without congestion awareness.
    pub fn new() -> Self {
        EzController {
            capacity: None,
            pending: BTreeSet::new(),
            queued: Vec::new(),
            completed: Vec::new(),
        }
    }

    /// Controller with the global capacity view for priority computation.
    pub fn with_congestion(capacity: BTreeMap<(NodeId, NodeId), f64>) -> Self {
        EzController {
            capacity: Some(capacity),
            pending: BTreeSet::new(),
            queued: Vec::new(),
            completed: Vec::new(),
        }
    }

    fn dispatch(&mut self, updates: &[FlowUpdate], out: &mut Vec<CtrlEffect>) {
        let priorities = match &self.capacity {
            Some(cap) => ez_prepare_congestion(updates, cap),
            None => BTreeMap::new(),
        };
        for u in updates {
            let prio = priorities.get(&u.flow).copied().unwrap_or(EzPriority::Low);
            let plan = ez_prepare(u, prio);
            self.pending.insert(u.flow);
            for (node, msg) in plan.msgs {
                out.push(CtrlEffect::Send {
                    to: node,
                    msg: Message::Ez(msg),
                });
            }
        }
    }
}

impl Default for EzController {
    fn default() -> Self {
        Self::new()
    }
}

impl ControllerLogic for EzController {
    fn start_update(&mut self, _now: SimTime, updates: &[FlowUpdate], out: &mut Vec<CtrlEffect>) {
        // No fast-forward: an update for a flow with one still in flight
        // queues until the Done arrives (§4.2's comparison point).
        let (ready, blocked): (Vec<FlowUpdate>, Vec<FlowUpdate>) = updates
            .iter()
            .cloned()
            .partition(|u| !self.pending.contains(&u.flow));
        self.queued.extend(blocked);
        self.dispatch(&ready, out);
    }

    fn on_message(&mut self, now: SimTime, _from: NodeId, msg: Message, out: &mut Vec<CtrlEffect>) {
        let Message::Ez(EzMsg::Done { flow }) = msg else {
            return;
        };
        if self.pending.remove(&flow) {
            self.completed.push((flow, Version(2)));
            out.push(CtrlEffect::UpdateComplete {
                flow,
                version: Version(2),
            });
        }
        // Release any queued update for this flow.
        if let Some(pos) = self.queued.iter().position(|u| u.flow == flow) {
            let u = self.queued.remove(pos);
            self.start_update(now, &[u], out);
        }
    }
}

/// Per-(flow, segment) role data at a switch.
#[derive(Debug, Clone)]
struct Role {
    next_hop: Option<NodeId>,
    upstream: Option<NodeId>,
    kind: EzSegmentKind,
    depends_on: BTreeSet<u32>,
    initiator: bool,
    finalizer: bool,
    priority: EzPriority,
    size: f64,
    notify_on_done: Vec<NodeId>,
    total_segments: Option<u32>,
    /// Set once this role's action (chain start / install / flip) ran.
    acted: bool,
}

/// The ez-Segway switch logic.
pub struct EzSwitchLogic {
    roles: BTreeMap<(FlowId, u32), Role>,
    /// GoodToMove notifications that arrived before their Update message.
    early: Vec<(FlowId, u32)>,
    /// SegmentDone notifications that arrived before their Update message.
    early_done: Vec<(FlowId, u32)>,
    /// Done segments seen at this node (for dependency resolution and
    /// whole-flow tracking at the global ingress).
    done_segments: BTreeMap<FlowId, BTreeSet<u32>>,
    pending: BTreeMap<u64, (FlowId, u32)>,
    next_token: u64,
    /// Moves deferred on capacity: (flow, segment) parked per link.
    parked: BTreeMap<NodeId, Vec<(FlowId, u32)>>,
}

impl Default for EzSwitchLogic {
    fn default() -> Self {
        Self::new()
    }
}

impl EzSwitchLogic {
    /// Fresh logic.
    pub fn new() -> Self {
        EzSwitchLogic {
            roles: BTreeMap::new(),
            early: Vec::new(),
            early_done: Vec::new(),
            done_segments: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_token: 0,
            parked: BTreeMap::new(),
        }
    }

    /// Start acting on a role whose trigger fired: initiators forward the
    /// chain, others install their rule (capacity permitting).
    fn act(&mut self, state: &mut SwitchState, flow: FlowId, segment: u32, out: &mut Vec<Effect>) {
        let Some(role) = self.roles.get(&(flow, segment)) else {
            return;
        };
        if role.acted {
            return;
        }
        if role.initiator {
            // Start the in-segment chain: notify upstream.
            let up = role.upstream;
            self.roles
                .get_mut(&(flow, segment))
                .expect("role exists")
                .acted = true;
            if let Some(up) = up {
                out.push(Effect::SendSwitch {
                    to: up,
                    msg: Message::Ez(EzMsg::GoodToMove { flow, segment }),
                });
            }
            return;
        }
        // Interior or finalizer: install the new rule. Capacity gate first.
        let entry = state.uib.read(flow);
        let new_hop = role.next_hop;
        let needs_capacity = new_hop.is_some() && entry.active_next_hop != new_hop;
        if needs_capacity {
            let to = new_hop.expect("checked");
            let remaining = state.remaining_capacity(to).unwrap_or(0.0);
            let my_prio = role.priority;
            let higher_waiting = self.parked.get(&to).into_iter().flatten().any(|&(f, s)| {
                self.roles
                    .get(&(f, s))
                    .is_some_and(|r| r.priority > my_prio)
            });
            if remaining + 1e-9 < role.size || higher_waiting {
                let q = self.parked.entry(to).or_default();
                if !q.contains(&(flow, segment)) {
                    q.push((flow, segment));
                }
                return;
            }
            state.reserve_capacity(to, role.size);
        }
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, (flow, segment));
        self.roles
            .get_mut(&(flow, segment))
            .expect("role exists")
            .acted = true;
        out.push(Effect::BeginInstall { flow, token });
    }

    /// A segment this node's roles may depend on completed.
    fn on_segment_done(
        &mut self,
        state: &mut SwitchState,
        flow: FlowId,
        segment: u32,
        out: &mut Vec<Effect>,
    ) {
        self.done_segments.entry(flow).or_default().insert(segment);

        // Unblock initiators of dependent InLoop segments.
        let ready: Vec<u32> = self
            .roles
            .iter()
            .filter(|(&(f, _), r)| f == flow && r.initiator && !r.acted && !r.depends_on.is_empty())
            .filter(|(_, r)| {
                let done = self.done_segments.get(&flow).expect("inserted above");
                r.depends_on.iter().all(|d| done.contains(d))
            })
            .map(|(&(_, s), _)| s)
            .collect();
        for s in ready {
            self.act(state, flow, s, out);
        }

        // Whole-flow completion tracking at the global ingress.
        self.check_flow_complete(state, flow, out);
    }

    fn check_flow_complete(
        &mut self,
        state: &mut SwitchState,
        flow: FlowId,
        out: &mut Vec<Effect>,
    ) {
        let Some(total) = self
            .roles
            .iter()
            .find(|(&(f, _), r)| f == flow && r.total_segments.is_some())
            .and_then(|(_, r)| r.total_segments)
        else {
            return;
        };
        let done = self.done_segments.get(&flow).map_or(0, |s| s.len() as u32);
        if done >= total {
            let _ = state;
            out.push(Effect::SendController {
                msg: Message::Ez(EzMsg::Done { flow }),
            });
        }
    }

    /// Retry parked moves for a link after capacity was released, highest
    /// priority first.
    fn retry_parked(&mut self, state: &mut SwitchState, link: NodeId, out: &mut Vec<Effect>) {
        let Some(mut q) = self.parked.remove(&link) else {
            return;
        };
        q.sort_by_key(|&(f, s)| {
            std::cmp::Reverse(
                self.roles
                    .get(&(f, s))
                    .map_or(EzPriority::Low, |r| r.priority),
            )
        });
        for (f, s) in q {
            self.act(state, f, s, out);
        }
    }
}

impl SwitchLogic for EzSwitchLogic {
    fn parked_messages(&self) -> usize {
        // Notifications buffered ahead of their Update message spin in the
        // pipeline just like P4Update's waiting UNMs.
        self.early.len() + self.early_done.len()
    }

    fn on_control(
        &mut self,
        _now: SimTime,
        state: &mut SwitchState,
        _from: Endpoint,
        msg: Message,
        out: &mut Vec<Effect>,
    ) {
        let Message::Ez(msg) = msg else {
            return;
        };
        match msg {
            EzMsg::Update {
                flow,
                next_hop,
                upstream,
                segment,
                kind,
                depends_on,
                initiator,
                finalizer,
                priority,
                size,
                notify_on_done,
                total_segments,
            } => {
                self.roles.insert(
                    (flow, segment),
                    Role {
                        next_hop,
                        upstream,
                        kind,
                        depends_on: depends_on.into_iter().collect(),
                        initiator,
                        finalizer,
                        priority,
                        size,
                        notify_on_done,
                        total_segments,
                        acted: false,
                    },
                );
                if state.uib.read(flow).flow_size == 0.0 {
                    state.uib.update(flow, |e| e.flow_size = size);
                }
                // Initiators of independent segments start immediately;
                // dependent ones may already be satisfied by early dones.
                let role = self.roles.get(&(flow, segment)).expect("just inserted");
                if role.initiator {
                    let deps_met = role.depends_on.iter().all(|d| {
                        self.done_segments
                            .get(&flow)
                            .is_some_and(|set| set.contains(d))
                    });
                    if role.kind == EzSegmentKind::NotInLoop || deps_met {
                        self.act(state, flow, segment, out);
                    }
                }
                // A GoodToMove that raced ahead of this Update can fire now.
                if let Some(pos) = self
                    .early
                    .iter()
                    .position(|&(f, s)| f == flow && s == segment)
                {
                    self.early.remove(pos);
                    self.act(state, flow, segment, out);
                }
                if let Some(pos) = self.early_done.iter().position(|&(f, _)| f == flow) {
                    let (f, s) = self.early_done.remove(pos);
                    self.on_segment_done(state, f, s, out);
                }
            }
            EzMsg::GoodToMove { flow, segment } => {
                if self.roles.contains_key(&(flow, segment)) {
                    self.act(state, flow, segment, out);
                } else {
                    self.early.push((flow, segment));
                }
            }
            EzMsg::SegmentDone { flow, segment } => {
                if self.roles.keys().any(|&(f, _)| f == flow) {
                    self.on_segment_done(state, flow, segment, out);
                } else {
                    self.early_done.push((flow, segment));
                }
            }
            EzMsg::Done { .. } => {}
        }
    }

    fn on_installed(
        &mut self,
        _now: SimTime,
        state: &mut SwitchState,
        flow: FlowId,
        token: u64,
        out: &mut Vec<Effect>,
    ) {
        let Some((f, segment)) = self.pending.remove(&token) else {
            return;
        };
        debug_assert_eq!(f, flow);
        let Some(role) = self.roles.get(&(flow, segment)).cloned() else {
            return;
        };
        // Move capacity off the old link and flip the rule.
        let entry = state.uib.read(flow);
        let old_link = entry.active_next_hop;
        if let Some(old) = old_link {
            if role.next_hop != Some(old) {
                state.release_capacity(old, entry.flow_size.max(role.size));
            }
        }
        state.uib.update(flow, |e| {
            e.applied_version = Version(e.applied_version.0.max(1) + 1);
            e.active_next_hop = role.next_hop;
        });

        if role.finalizer {
            // Segment complete: notify dependents and the global ingress.
            for &target in &role.notify_on_done {
                if target == state.id {
                    self.on_segment_done(state, flow, segment, out);
                } else {
                    out.push(Effect::SendSwitch {
                        to: target,
                        msg: Message::Ez(EzMsg::SegmentDone { flow, segment }),
                    });
                }
            }
        } else {
            // Interior: pass the chain upstream.
            if let Some(up) = role.upstream {
                out.push(Effect::SendSwitch {
                    to: up,
                    msg: Message::Ez(EzMsg::GoodToMove { flow, segment }),
                });
            }
        }

        if let Some(old) = old_link {
            if role.next_hop != Some(old) {
                self.retry_parked(state, old, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4update_net::Path;

    fn path(ids: &[u32]) -> Path {
        Path::new(ids.iter().map(|&i| NodeId(i)).collect())
    }

    fn fig1_update() -> FlowUpdate {
        FlowUpdate::new(
            FlowId(0),
            Some(path(&[0, 4, 2, 7])),
            path(&[0, 1, 2, 3, 4, 5, 6, 7]),
            1.0,
        )
    }

    #[test]
    fn segments_classify_like_the_paper() {
        let segs = compute_segments(&fig1_update());
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].kind, EzSegmentKind::NotInLoop);
        assert_eq!(segs[1].kind, EzSegmentKind::InLoop);
        assert_eq!(segs[2].kind, EzSegmentKind::NotInLoop);
        // The InLoop segment depends on everything downstream.
        assert_eq!(segs[1].depends_on, vec![2]);
        assert!(segs[0].depends_on.is_empty());
    }

    #[test]
    fn plan_marks_roles_and_notifications() {
        let plan = ez_prepare(&fig1_update(), EzPriority::Low);
        // One message per (node, segment) membership: 3+3+4 = 10.
        assert_eq!(plan.msgs.len(), 10);
        // The global ingress carries the total segment count.
        let ingress_msg = plan
            .msgs
            .iter()
            .find_map(|(n, m)| match m {
                EzMsg::Update {
                    total_segments: Some(t),
                    ..
                } if *n == NodeId(0) => Some(*t),
                _ => None,
            })
            .expect("ingress message with total");
        assert_eq!(ingress_msg, 3);
        // Segment 2's finalizer (v4) must notify segment 1's initiator
        // (also v4 — self-notification) and the global ingress.
        let v4_finalizer_notify = plan
            .msgs
            .iter()
            .find_map(|(n, m)| match m {
                EzMsg::Update {
                    segment: 2,
                    finalizer: true,
                    notify_on_done,
                    ..
                } if *n == NodeId(4) => Some(notify_on_done.clone()),
                _ => None,
            })
            .expect("v4 finalizer message");
        assert!(v4_finalizer_notify.contains(&NodeId(0)));
        assert!(v4_finalizer_notify.contains(&NodeId(4)));
    }

    #[test]
    fn congestion_priorities_form_three_levels() {
        // f0 leaves link (0,1); f1 needs (0,1); f2 independent.
        let mut cap = BTreeMap::new();
        cap.insert((NodeId(0), NodeId(1)), 1.0);
        cap.insert((NodeId(0), NodeId(2)), 10.0);
        cap.insert((NodeId(1), NodeId(3)), 10.0);
        cap.insert((NodeId(2), NodeId(3)), 10.0);
        let f0 = FlowUpdate::new(FlowId(0), Some(path(&[0, 1, 3])), path(&[0, 2, 3]), 1.0);
        let f1 = FlowUpdate::new(FlowId(1), Some(path(&[0, 2, 3])), path(&[0, 1, 3]), 1.0);
        let f2 = FlowUpdate::new(FlowId(2), Some(path(&[2, 3])), path(&[2, 3]), 1.0);
        // Seed capacity as if old paths are allocated: (0,1) holds f0 → 0
        // free. f1 wants in → depends on f0.
        cap.insert((NodeId(0), NodeId(1)), 0.0);
        let prios = ez_prepare_congestion(&[f0, f1, f2], &cap);
        assert_eq!(prios[&FlowId(0)], EzPriority::High);
        assert_eq!(prios[&FlowId(2)], EzPriority::Low);
        assert_eq!(prios[&FlowId(1)], EzPriority::Low);
    }

    #[test]
    fn controller_queues_second_update_for_same_flow() {
        let mut c = EzController::new();
        let mut out = Vec::new();
        c.start_update(SimTime::ZERO, &[fig1_update()], &mut out);
        let first_count = out.len();
        assert!(first_count > 0);
        out.clear();
        // Second update while the first is pending: nothing goes out.
        c.start_update(SimTime::ZERO, &[fig1_update()], &mut out);
        assert!(out.is_empty());
        // Done releases the queued update.
        c.on_message(
            SimTime::ZERO,
            NodeId(0),
            Message::Ez(EzMsg::Done { flow: FlowId(0) }),
            &mut out,
        );
        assert!(out
            .iter()
            .any(|e| matches!(e, CtrlEffect::UpdateComplete { .. })));
        assert!(out.iter().any(|e| matches!(e, CtrlEffect::Send { .. })));
    }

    #[test]
    fn switch_chain_installs_upstream() {
        use p4update_dataplane::Switch;
        use p4update_des::SimDuration;
        use p4update_net::TopologyBuilder;
        // Segment: 0 (finalizer) - 1 (interior) - 2 (initiator/egress).
        let mut b = TopologyBuilder::new("t");
        let v: Vec<_> = (0..3).map(|i| b.add_node(format!("n{i}"))).collect();
        b.add_link(v[0], v[1], SimDuration::from_millis(1), 10.0);
        b.add_link(v[1], v[2], SimDuration::from_millis(1), 10.0);
        let t = b.build();
        let mut s1 = Switch::new(NodeId(1), &t, Box::new(EzSwitchLogic::new()));

        let upd = Message::Ez(EzMsg::Update {
            flow: FlowId(0),
            next_hop: Some(NodeId(2)),
            upstream: Some(NodeId(0)),
            segment: 0,
            kind: EzSegmentKind::NotInLoop,
            depends_on: vec![],
            initiator: false,
            finalizer: false,
            priority: EzPriority::Low,
            size: 1.0,
            notify_on_done: vec![],
            total_segments: None,
        });
        let effects = s1.handle_message(SimTime::ZERO, Endpoint::Controller, upd);
        assert!(effects.is_empty(), "interior waits for GoodToMove");
        let effects = s1.handle_message(
            SimTime::ZERO,
            Endpoint::Switch(NodeId(2)),
            Message::Ez(EzMsg::GoodToMove {
                flow: FlowId(0),
                segment: 0,
            }),
        );
        let token = match effects[0] {
            Effect::BeginInstall { token, .. } => token,
            ref o => panic!("unexpected {o:?}"),
        };
        let effects = s1.handle_installed(SimTime::ZERO, FlowId(0), token);
        assert!(matches!(
            &effects[0],
            Effect::SendSwitch { to, msg: Message::Ez(EzMsg::GoodToMove { .. }) }
                if *to == NodeId(0)
        ));
        assert_eq!(
            s1.state.uib.read(FlowId(0)).active_next_hop,
            Some(NodeId(2))
        );
    }

    #[test]
    fn good_to_move_before_update_is_buffered() {
        use p4update_dataplane::Switch;
        use p4update_des::SimDuration;
        use p4update_net::TopologyBuilder;
        let mut b = TopologyBuilder::new("t");
        let v: Vec<_> = (0..3).map(|i| b.add_node(format!("n{i}"))).collect();
        b.add_link(v[0], v[1], SimDuration::from_millis(1), 10.0);
        b.add_link(v[1], v[2], SimDuration::from_millis(1), 10.0);
        let t = b.build();
        let mut s1 = Switch::new(NodeId(1), &t, Box::new(EzSwitchLogic::new()));
        let effects = s1.handle_message(
            SimTime::ZERO,
            Endpoint::Switch(NodeId(2)),
            Message::Ez(EzMsg::GoodToMove {
                flow: FlowId(0),
                segment: 0,
            }),
        );
        assert!(effects.is_empty());
        let upd = Message::Ez(EzMsg::Update {
            flow: FlowId(0),
            next_hop: Some(NodeId(2)),
            upstream: Some(NodeId(0)),
            segment: 0,
            kind: EzSegmentKind::NotInLoop,
            depends_on: vec![],
            initiator: false,
            finalizer: false,
            priority: EzPriority::Low,
            size: 1.0,
            notify_on_done: vec![],
            total_segments: None,
        });
        let effects = s1.handle_message(SimTime::ZERO, Endpoint::Controller, upd);
        assert!(matches!(effects[0], Effect::BeginInstall { .. }));
    }
}
