//! Path representation and routing algorithms: Dijkstra shortest paths and
//! Yen's k-shortest loopless paths (the multi-flow scenario routes each flow
//! on its shortest path and migrates it to the 2nd-shortest, §9.1).

use crate::graph::{NodeId, Topology};
use p4update_des::SimDuration;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simple (loop-free) path through the topology, as an ordered node list
/// from ingress to egress. Consecutive nodes are guaranteed adjacent when the
/// path was produced by the algorithms in this module; [`Path::validate`]
/// checks arbitrary inputs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    nodes: Vec<NodeId>,
}

impl Path {
    /// Wrap an ordered node list. Panics on fewer than 2 nodes or repeated
    /// nodes (paths are simple by definition in the update model).
    pub fn new(nodes: Vec<NodeId>) -> Self {
        assert!(nodes.len() >= 2, "a path needs at least ingress and egress");
        let mut seen = nodes.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), nodes.len(), "path visits a node twice");
        Path { nodes }
    }

    /// Ordered nodes, ingress first.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The ingress (source) node.
    pub fn ingress(&self) -> NodeId {
        self.nodes[0]
    }

    /// The egress (destination) node.
    pub fn egress(&self) -> NodeId {
        *self.nodes.last().expect("non-empty by construction")
    }

    /// Number of hops (edges).
    pub fn hop_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Whether `v` lies on the path.
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    /// Position of `v` on the path (0 = ingress).
    pub fn position(&self, v: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == v)
    }

    /// Hop distance from `v` to the egress along this path — the paper's
    /// distance label `D` (egress has distance 0).
    pub fn distance_to_egress(&self, v: NodeId) -> Option<u32> {
        self.position(v).map(|p| (self.nodes.len() - 1 - p) as u32)
    }

    /// The node `v` forwards to on this path (its *parent* / successor in
    /// the paper's terminology), `None` for the egress.
    pub fn successor(&self, v: NodeId) -> Option<NodeId> {
        let p = self.position(v)?;
        self.nodes.get(p + 1).copied()
    }

    /// The node that forwards to `v` (its *child* / predecessor), `None` for
    /// the ingress.
    pub fn predecessor(&self, v: NodeId) -> Option<NodeId> {
        let p = self.position(v)?;
        p.checked_sub(1).map(|i| self.nodes[i])
    }

    /// Directed edges `(from, to)` along the path.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes.windows(2).map(|w| (w[0], w[1]))
    }

    /// Sum of link latencies along the path.
    pub fn total_latency(&self, topo: &Topology) -> SimDuration {
        self.edges().fold(SimDuration::ZERO, |acc, (a, b)| {
            acc + topo
                .latency_between(a, b)
                .expect("path edge must be a topology link")
        })
    }

    /// Check that every consecutive pair is adjacent in `topo`.
    pub fn validate(&self, topo: &Topology) -> bool {
        self.edges().all(|(a, b)| topo.link_between(a, b).is_some())
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap on cost, tie-broken by node id for determinism
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("costs are finite")
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Latency-weighted shortest-path distances (in milliseconds) from `src` to
/// every node; `f64::INFINITY` for unreachable nodes.
pub fn latency_distances_from(topo: &Topology, src: NodeId) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; topo.node_count()];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: src,
    });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if cost > dist[node.index()] {
            continue;
        }
        for &(next, link) in topo.neighbors(node) {
            let w = topo.link(link).latency.as_millis_f64();
            let nd = cost + w;
            if nd < dist[next.index()] {
                dist[next.index()] = nd;
                heap.push(HeapEntry {
                    cost: nd,
                    node: next,
                });
            }
        }
    }
    dist
}

/// Dijkstra over link latency, with an edge filter (needed by Yen's spur
/// computation). Ties broken deterministically by node id.
fn shortest_path_filtered(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    banned_nodes: &[bool],
    banned_edges: &[(NodeId, NodeId)],
) -> Option<Path> {
    let n = topo.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    if banned_nodes[src.index()] || banned_nodes[dst.index()] {
        return None;
    }
    dist[src.index()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: src,
    });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if cost > dist[node.index()] {
            continue;
        }
        if node == dst {
            break;
        }
        for &(next, link) in topo.neighbors(node) {
            if banned_nodes[next.index()] {
                continue;
            }
            if banned_edges
                .iter()
                .any(|&(a, b)| (a == node && b == next) || (a == next && b == node))
            {
                continue;
            }
            let w = topo.link(link).latency.as_millis_f64();
            let nd = cost + w;
            if nd < dist[next.index()]
                || (nd == dist[next.index()] && prev[next.index()].is_some_and(|p| node < p))
            {
                dist[next.index()] = nd;
                prev[next.index()] = Some(node);
                heap.push(HeapEntry {
                    cost: nd,
                    node: next,
                });
            }
        }
    }
    if !dist[dst.index()].is_finite() {
        return None;
    }
    let mut nodes = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = prev[cur.index()].expect("reachable node has a predecessor");
        nodes.push(cur);
    }
    nodes.reverse();
    Some(Path::new(nodes))
}

/// Latency-weighted shortest path from `src` to `dst`.
pub fn shortest_path(topo: &Topology, src: NodeId, dst: NodeId) -> Option<Path> {
    if src == dst {
        return None;
    }
    shortest_path_filtered(topo, src, dst, &vec![false; topo.node_count()], &[])
}

/// Yen's algorithm: the `k` shortest loopless paths from `src` to `dst`, in
/// nondecreasing latency order. Returns fewer than `k` if the graph does not
/// contain that many distinct simple paths.
pub fn k_shortest_paths(topo: &Topology, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    let Some(first) = shortest_path(topo, src, dst) else {
        return Vec::new();
    };
    let mut result = vec![first];
    let mut candidates: Vec<(f64, Path)> = Vec::new();

    while result.len() < k {
        let last = result.last().expect("result non-empty").clone();
        // Each node of the previous path (except egress) is a spur point.
        for spur_idx in 0..last.nodes().len() - 1 {
            let spur_node = last.nodes()[spur_idx];
            let root: Vec<NodeId> = last.nodes()[..=spur_idx].to_vec();

            // Ban edges that would recreate an already-found path with the
            // same root, and ban root nodes (except the spur) to keep the
            // total path simple.
            let mut banned_edges = Vec::new();
            for p in result
                .iter()
                .map(Path::nodes)
                .chain(candidates.iter().map(|(_, p)| p.nodes()))
            {
                if p.len() > spur_idx + 1 && p[..=spur_idx] == root[..] {
                    banned_edges.push((p[spur_idx], p[spur_idx + 1]));
                }
            }
            let mut banned_nodes = vec![false; topo.node_count()];
            for &v in &root[..spur_idx] {
                banned_nodes[v.index()] = true;
            }

            if let Some(spur) =
                shortest_path_filtered(topo, spur_node, dst, &banned_nodes, &banned_edges)
            {
                let mut total = root.clone();
                total.extend_from_slice(&spur.nodes()[1..]);
                let path = Path::new(total);
                let cost = path.total_latency(topo).as_millis_f64();
                if !candidates.iter().any(|(_, p)| *p == path) && !result.contains(&path) {
                    candidates.push((cost, path));
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Pop the cheapest candidate (deterministic tie-break on node list).
        candidates.sort_by(|(c1, p1), (c2, p2)| {
            c1.partial_cmp(c2)
                .expect("finite")
                .then_with(|| p1.nodes().cmp(p2.nodes()))
        });
        result.push(candidates.remove(0).1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TopologyBuilder;

    /// Diamond: 0-1-3 (fast) and 0-2-3 (slow), plus direct 0-3 (slowest).
    fn diamond() -> Topology {
        let mut b = TopologyBuilder::new("diamond");
        let v: Vec<_> = (0..4).map(|i| b.add_node(format!("n{i}"))).collect();
        b.add_link(v[0], v[1], SimDuration::from_millis(1), 10.0);
        b.add_link(v[1], v[3], SimDuration::from_millis(1), 10.0);
        b.add_link(v[0], v[2], SimDuration::from_millis(2), 10.0);
        b.add_link(v[2], v[3], SimDuration::from_millis(2), 10.0);
        b.add_link(v[0], v[3], SimDuration::from_millis(10), 10.0);
        b.build()
    }

    #[test]
    fn path_accessors() {
        let p = Path::new(vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(p.ingress(), NodeId(0));
        assert_eq!(p.egress(), NodeId(3));
        assert_eq!(p.hop_count(), 2);
        assert_eq!(p.distance_to_egress(NodeId(0)), Some(2));
        assert_eq!(p.distance_to_egress(NodeId(3)), Some(0));
        assert_eq!(p.distance_to_egress(NodeId(9)), None);
        assert_eq!(p.successor(NodeId(1)), Some(NodeId(3)));
        assert_eq!(p.successor(NodeId(3)), None);
        assert_eq!(p.predecessor(NodeId(1)), Some(NodeId(0)));
        assert_eq!(p.predecessor(NodeId(0)), None);
        assert!(p.contains(NodeId(1)));
        assert!(!p.contains(NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn looping_path_panics() {
        Path::new(vec![NodeId(0), NodeId(1), NodeId(0)]);
    }

    #[test]
    fn dijkstra_picks_the_fast_branch() {
        let t = diamond();
        let p = shortest_path(&t, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(p.total_latency(&t).as_millis_f64(), 2.0);
    }

    #[test]
    fn dijkstra_same_node_is_none() {
        let t = diamond();
        assert!(shortest_path(&t, NodeId(0), NodeId(0)).is_none());
    }

    #[test]
    fn distances_from_source() {
        let t = diamond();
        let d = latency_distances_from(&t, NodeId(0));
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], 2.0);
        assert_eq!(d[3], 2.0);
    }

    #[test]
    fn yen_orders_three_paths() {
        let t = diamond();
        let paths = k_shortest_paths(&t, NodeId(0), NodeId(3), 3);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(paths[1].nodes(), &[NodeId(0), NodeId(2), NodeId(3)]);
        assert_eq!(paths[2].nodes(), &[NodeId(0), NodeId(3)]);
        let costs: Vec<f64> = paths
            .iter()
            .map(|p| p.total_latency(&t).as_millis_f64())
            .collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn yen_returns_fewer_when_exhausted() {
        let mut b = TopologyBuilder::new("line");
        let v: Vec<_> = (0..3).map(|i| b.add_node(format!("n{i}"))).collect();
        b.add_link(v[0], v[1], SimDuration::from_millis(1), 1.0);
        b.add_link(v[1], v[2], SimDuration::from_millis(1), 1.0);
        let t = b.build();
        let paths = k_shortest_paths(&t, v[0], v[2], 5);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn yen_paths_are_simple_and_valid() {
        let t = crate::topologies::internet2();
        let paths = k_shortest_paths(&t, NodeId(0), NodeId(15), 4);
        assert!(paths.len() >= 2);
        for p in &paths {
            assert!(p.validate(&t));
        }
        // All distinct.
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                assert_ne!(paths[i], paths[j]);
            }
        }
    }

    #[test]
    fn validate_rejects_non_adjacent_hops() {
        let t = diamond();
        let p = Path::new(vec![NodeId(1), NodeId(2)]); // not adjacent
        assert!(!p.validate(&t));
    }
}
