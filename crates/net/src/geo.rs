//! Geographic latency derivation.
//!
//! WAN link latencies in the evaluation are computed from the great-circle
//! distance between sites at a propagation speed of 2·10⁵ km/s — the speed of
//! light in optical fiber (paper §9.1).

use p4update_des::SimDuration;

/// Mean Earth radius in kilometers.
const EARTH_RADIUS_KM: f64 = 6371.0;

/// Signal propagation speed through optical fiber, km/s (paper §9.1:
/// "around 2 · 10e6 km/s" is a typo for 2·10⁵ km/s, ~⅔ c).
pub const FIBER_SPEED_KM_PER_S: f64 = 2.0e5;

/// Great-circle (haversine) distance between two `(lat, lon)` points in km.
pub fn haversine_km(a: (f64, f64), b: (f64, f64)) -> f64 {
    let (lat1, lon1) = (a.0.to_radians(), a.1.to_radians());
    let (lat2, lon2) = (b.0.to_radians(), b.1.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// One-way propagation latency between two sites. A floor of 0.05 ms models
/// equipment delay on co-located sites so that no link is ever free.
pub fn propagation_latency(a: (f64, f64), b: (f64, f64)) -> SimDuration {
    let km = haversine_km(a, b);
    let secs = km / FIBER_SPEED_KM_PER_S;
    SimDuration::from_secs_f64(secs.max(0.000_05))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = (48.137, 11.575); // Munich
        assert!(haversine_km(p, p) < 1e-9);
    }

    #[test]
    fn munich_to_dortmund_is_about_477_km() {
        let munich = (48.137, 11.575);
        let dortmund = (51.514, 7.466);
        let d = haversine_km(munich, dortmund);
        assert!((d - 477.0).abs() < 15.0, "distance was {d}");
    }

    #[test]
    fn new_york_to_london_is_about_5570_km() {
        let ny = (40.713, -74.006);
        let london = (51.507, -0.128);
        let d = haversine_km(ny, london);
        assert!((d - 5570.0).abs() < 60.0, "distance was {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = (35.0, 139.0);
        let b = (-33.9, 151.2);
        assert!((haversine_km(a, b) - haversine_km(b, a)).abs() < 1e-9);
    }

    #[test]
    fn transatlantic_latency_is_tens_of_ms() {
        let ny = (40.713, -74.006);
        let london = (51.507, -0.128);
        let lat = propagation_latency(ny, london).as_millis_f64();
        // ~5570 km / 2e5 km/s ≈ 27.9 ms
        assert!((lat - 27.9).abs() < 1.0, "latency was {lat} ms");
    }

    #[test]
    fn latency_has_a_floor() {
        let p = (0.0, 0.0);
        assert!(propagation_latency(p, p).as_nanos() > 0);
    }
}
