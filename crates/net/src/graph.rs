//! The network graph: switches (nodes) and bidirectional links with
//! propagation latency and per-direction capacity.

use p4update_des::SimDuration;
use std::fmt;

/// Identifier of a switch / node. Dense, assigned in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into dense per-node arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of an undirected link (index into [`Topology::links`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Index into the topology's link table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A directed view of a link: the capacity unit the congestion model tracks.
/// Links are full-duplex; each direction has its own capacity budget and is
/// controlled exclusively by the sending endpoint (which is what makes the
/// paper's *local* congestion scheduling well-defined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DirectedLink {
    /// Transmitting endpoint.
    pub from: NodeId,
    /// Receiving endpoint.
    pub to: NodeId,
}

/// A node: a P4 switch with an optional geographic position (used to derive
/// propagation latency for WAN topologies).
#[derive(Debug, Clone)]
pub struct Node {
    /// Human-readable site name ("Chicago", "v3", ...).
    pub name: String,
    /// `(latitude, longitude)` in degrees, if the topology is geographic.
    pub position: Option<(f64, f64)>,
}

/// An undirected link between two nodes.
#[derive(Debug, Clone)]
pub struct Link {
    /// One endpoint (the lower `NodeId` by convention after normalization).
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Capacity per direction, in abstract flow-size units.
    pub capacity: f64,
}

impl Link {
    /// The endpoint opposite to `n`, or `None` if `n` is not an endpoint.
    pub fn opposite(&self, n: NodeId) -> Option<NodeId> {
        if n == self.a {
            Some(self.b)
        } else if n == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// An immutable network topology.
///
/// Construction goes through [`TopologyBuilder`]; the built topology
/// precomputes adjacency so path algorithms and the simulator can look up
/// neighbors in O(degree).
#[derive(Debug, Clone)]
pub struct Topology {
    /// Descriptive name ("B4", "Internet2", "fat-tree-k4", ...).
    pub name: String,
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// adjacency[v] = sorted list of (neighbor, link id)
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
}

impl Topology {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All node ids, in order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Node metadata.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Find a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Link metadata.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Neighbors of `v` with the connecting link, sorted by neighbor id.
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, LinkId)] {
        &self.adjacency[v.index()]
    }

    /// The link between `a` and `b`, if they are adjacent. Binary search
    /// over `a`'s sorted neighbor list — a couple of cache lines even on
    /// the largest fat-trees, where this sits on the per-packet hot path
    /// (`transit` resolves every switch-to-switch hop through it).
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        let adj = self.adjacency.get(a.index())?;
        adj.binary_search_by_key(&b, |&(n, _)| n)
            .ok()
            .map(|i| adj[i].1)
    }

    /// One-way latency between two *adjacent* nodes.
    pub fn latency_between(&self, a: NodeId, b: NodeId) -> Option<SimDuration> {
        self.link_between(a, b).map(|l| self.link(l).latency)
    }

    /// True if the graph is connected (and non-empty).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return false;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(w, _) in self.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.nodes.len()
    }

    /// The node minimizing the maximum shortest-path latency to all others —
    /// where the evaluation places the controller ("the physical controller
    /// resides at the centroid node, to minimize worst-case control
    /// latency", §9.1).
    pub fn centroid(&self) -> NodeId {
        let mut best = NodeId(0);
        let mut best_ecc = f64::INFINITY;
        for v in self.node_ids() {
            let dist = crate::path::latency_distances_from(self, v);
            let ecc = dist.iter().copied().fold(0.0f64, |acc, d| {
                if d.is_finite() {
                    acc.max(d)
                } else {
                    f64::INFINITY
                }
            });
            if ecc < best_ecc {
                best_ecc = ecc;
                best = v;
            }
        }
        best
    }
}

/// Builder for [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    name: String,
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Normalized endpoint pairs already linked — duplicate detection must
    /// be O(1) per link or hyper-scale topologies (ft32768: 1.1M links)
    /// take quadratic time to even build.
    seen: std::collections::HashSet<(NodeId, NodeId)>,
}

impl TopologyBuilder {
    /// Start a topology with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TopologyBuilder {
            name: name.into(),
            nodes: Vec::new(),
            links: Vec::new(),
            seen: std::collections::HashSet::new(),
        }
    }

    /// Add a node without coordinates; returns its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        self.nodes.push(Node {
            name: name.into(),
            position: None,
        });
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// Add a node with `(latitude, longitude)` coordinates; returns its id.
    pub fn add_site(&mut self, name: impl Into<String>, lat: f64, lon: f64) -> NodeId {
        self.nodes.push(Node {
            name: name.into(),
            position: Some((lat, lon)),
        });
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// Add an undirected link with explicit latency and capacity.
    ///
    /// # Panics
    /// Panics on self-loops, unknown endpoints, or duplicate links — all of
    /// which indicate a topology definition bug.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, latency: SimDuration, capacity: f64) {
        assert!(a != b, "self-loop {a}");
        assert!(a.index() < self.nodes.len(), "unknown endpoint {a}");
        assert!(b.index() < self.nodes.len(), "unknown endpoint {b}");
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        assert!(self.seen.insert((a, b)), "duplicate link {a}-{b}");
        self.links.push(Link {
            a,
            b,
            latency,
            capacity,
        });
    }

    /// Add a link whose latency is derived from the endpoints' geographic
    /// distance at signal speed 2·10⁵ km/s (the paper's optical-propagation
    /// assumption, §9.1). Both endpoints must have coordinates.
    pub fn add_geo_link(&mut self, a: NodeId, b: NodeId, capacity: f64) {
        let pa = self.nodes[a.index()]
            .position
            .expect("geo link endpoint without coordinates");
        let pb = self.nodes[b.index()]
            .position
            .expect("geo link endpoint without coordinates");
        let latency = crate::geo::propagation_latency(pa, pb);
        self.add_link(a, b, latency, capacity);
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links added so far.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Position of an already-added node.
    pub fn position(&self, id: NodeId) -> Option<(f64, f64)> {
        self.nodes[id.index()].position
    }

    /// True if a link between `a` and `b` exists already.
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.links.iter().any(|l| l.a == a && l.b == b)
    }

    /// Finalize into an immutable [`Topology`].
    pub fn build(self) -> Topology {
        let mut adjacency = vec![Vec::new(); self.nodes.len()];
        for (i, link) in self.links.iter().enumerate() {
            let id = LinkId(i as u32);
            adjacency[link.a.index()].push((link.b, id));
            adjacency[link.b.index()].push((link.a, id));
        }
        for adj in &mut adjacency {
            adj.sort_unstable_by_key(|&(n, _)| n);
        }
        Topology {
            name: self.name,
            nodes: self.nodes,
            links: self.links,
            adjacency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut b = TopologyBuilder::new("tri");
        let v0 = b.add_node("a");
        let v1 = b.add_node("b");
        let v2 = b.add_node("c");
        b.add_link(v0, v1, SimDuration::from_millis(1), 10.0);
        b.add_link(v1, v2, SimDuration::from_millis(2), 10.0);
        b.add_link(v0, v2, SimDuration::from_millis(3), 10.0);
        b.build()
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let t = triangle();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 3);
        assert_eq!(t.node(NodeId(1)).name, "b");
        assert_eq!(t.node_by_name("c"), Some(NodeId(2)));
        assert_eq!(t.node_by_name("zz"), None);
    }

    #[test]
    fn adjacency_is_symmetric_and_sorted() {
        let t = triangle();
        for v in t.node_ids() {
            for &(w, l) in t.neighbors(v) {
                assert!(t.neighbors(w).iter().any(|&(x, l2)| x == v && l2 == l));
            }
            let ids: Vec<_> = t.neighbors(v).iter().map(|&(n, _)| n).collect();
            let mut sorted = ids.clone();
            sorted.sort();
            assert_eq!(ids, sorted);
        }
    }

    #[test]
    fn link_lookup_is_order_independent() {
        let t = triangle();
        assert_eq!(
            t.link_between(NodeId(0), NodeId(2)),
            t.link_between(NodeId(2), NodeId(0))
        );
        assert_eq!(
            t.latency_between(NodeId(1), NodeId(2)),
            Some(SimDuration::from_millis(2))
        );
        assert_eq!(t.link_between(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn opposite_endpoint() {
        let t = triangle();
        let l = t.link(t.link_between(NodeId(0), NodeId(1)).unwrap());
        assert_eq!(l.opposite(NodeId(0)), Some(NodeId(1)));
        assert_eq!(l.opposite(NodeId(1)), Some(NodeId(0)));
        assert_eq!(l.opposite(NodeId(2)), None);
    }

    #[test]
    fn connectivity() {
        let t = triangle();
        assert!(t.is_connected());
        let mut b = TopologyBuilder::new("disc");
        b.add_node("a");
        b.add_node("b");
        assert!(!b.build().is_connected());
        let empty = TopologyBuilder::new("empty").build();
        assert!(!empty.is_connected());
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_link_panics() {
        let mut b = TopologyBuilder::new("dup");
        let v0 = b.add_node("a");
        let v1 = b.add_node("b");
        b.add_link(v0, v1, SimDuration::ZERO, 1.0);
        b.add_link(v1, v0, SimDuration::ZERO, 1.0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut b = TopologyBuilder::new("loop");
        let v0 = b.add_node("a");
        b.add_link(v0, v0, SimDuration::ZERO, 1.0);
    }

    #[test]
    fn centroid_of_a_path_is_the_middle() {
        let mut b = TopologyBuilder::new("path");
        let ids: Vec<_> = (0..5).map(|i| b.add_node(format!("n{i}"))).collect();
        for w in ids.windows(2) {
            b.add_link(w[0], w[1], SimDuration::from_millis(10), 1.0);
        }
        assert_eq!(b.build().centroid(), NodeId(2));
    }
}
