//! # p4update-net
//!
//! Network topology substrate for the P4Update reproduction: the switch
//! graph with latency/capacity-annotated links, path algorithms (Dijkstra,
//! Yen's k-shortest), the flow/update model of the paper's §5, and all the
//! evaluation topologies (Fig. 1/Fig. 2 synthetics, fat-tree, B4, Internet2,
//! AttMpls, Chinanet).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod geo;
pub mod graph;
pub mod partition;
pub mod path;
pub mod topologies;

pub use flow::{Flow, FlowId, FlowUpdate, Version};
pub use graph::{DirectedLink, Link, LinkId, Node, NodeId, Topology, TopologyBuilder};
pub use partition::{
    min_cross_partition_latency, Partitioner, PodPartitioner, SinglePartition, StripePartitioner,
};
pub use path::{k_shortest_paths, latency_distances_from, shortest_path, Path};
