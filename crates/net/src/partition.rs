//! Topology partitioning for the parallel simulation engine.
//!
//! A [`Partitioner`] assigns every switch to a partition; the partitioned
//! DES engine shards its event queue along those lines and only needs to
//! synchronize when a message crosses a partition boundary. The scheme is
//! valid for *any* assignment — correctness never depends on the cut — but
//! the conservative-lookahead window the engine can run ahead by is the
//! minimum latency of any link that crosses partitions, so a good cut keeps
//! chatty neighbours together (for fat-trees: one partition per pod group,
//! the paper's natural locality unit).

use crate::graph::{NodeId, Topology};
use p4update_des::SimDuration;

/// Assigns each node of a topology to a partition in `0..partitions()`.
///
/// Implementations must be deterministic pure functions of the topology:
/// the partitioned engine re-derives the assignment on every run and the
/// byte-identical-replay contract depends on it never changing.
pub trait Partitioner {
    /// Number of partitions produced (≥ 1).
    fn partitions(&self) -> usize;
    /// The partition `node` belongs to (must be `< self.partitions()`).
    fn partition_of(&self, node: NodeId) -> usize;
}

/// The trivial single-partition assignment: every node in partition 0.
///
/// This is the fallback for topologies without exploitable structure; the
/// partitioned engine degenerates to the sequential one.
#[derive(Debug, Clone, Copy)]
pub struct SinglePartition;

impl Partitioner for SinglePartition {
    fn partitions(&self) -> usize {
        1
    }
    fn partition_of(&self, _node: NodeId) -> usize {
        0
    }
}

/// Per-pod partitioning for the synthetic fat-trees built by
/// [`crate::topologies::synthetic_fat_tree`].
///
/// Aggregation and edge switches go to `pod % target`; core switch `i`
/// goes to `i % target`. The assignment is derived from the generator's
/// node-name grammar (`core{i}`, `agg{p}_{i}`, `edge{p}_{i}`) so it needs
/// no side tables; any node outside that grammar lands in partition 0.
#[derive(Debug, Clone)]
pub struct PodPartitioner {
    target: usize,
    /// Precomputed per-node assignment (dense `NodeId` index).
    assignment: Vec<usize>,
}

impl PodPartitioner {
    /// Partition `topo` into (up to) `target` partitions. `target` is
    /// clamped to at least 1; topologies smaller than `target` simply leave
    /// some partitions empty of switches (still valid).
    pub fn new(topo: &Topology, target: usize) -> Self {
        let target = target.max(1);
        let assignment = topo
            .node_ids()
            .map(|id| Self::classify(&topo.node(id).name, target))
            .collect();
        PodPartitioner { target, assignment }
    }

    fn classify(name: &str, target: usize) -> usize {
        if let Some(rest) = name.strip_prefix("core") {
            if let Ok(i) = rest.parse::<usize>() {
                return i % target;
            }
        }
        for prefix in ["agg", "edge"] {
            if let Some(rest) = name.strip_prefix(prefix) {
                if let Some((pod, _)) = rest.split_once('_') {
                    if let Ok(p) = pod.parse::<usize>() {
                        return p % target;
                    }
                }
            }
        }
        0
    }
}

impl Partitioner for PodPartitioner {
    fn partitions(&self) -> usize {
        self.target
    }
    fn partition_of(&self, node: NodeId) -> usize {
        self.assignment[node.0 as usize]
    }
}

/// Striped (round-robin) partitioning: node `i` goes to partition
/// `i % partitions`.
///
/// Deliberately locality-oblivious — adjacent nodes usually land in
/// different partitions, so nearly every link crosses the cut. Useful as
/// an adversarial cut for correctness tests and as the fallback for
/// topologies without the fat-tree name grammar the pod partitioner
/// keys on.
#[derive(Debug, Clone, Copy)]
pub struct StripePartitioner {
    partitions: usize,
}

impl StripePartitioner {
    /// Stripe across `partitions` partitions (clamped to at least 1).
    pub fn new(partitions: usize) -> Self {
        StripePartitioner {
            partitions: partitions.max(1),
        }
    }
}

impl Partitioner for StripePartitioner {
    fn partitions(&self) -> usize {
        self.partitions
    }
    fn partition_of(&self, node: NodeId) -> usize {
        node.0 as usize % self.partitions
    }
}

/// The conservative lookahead a partitioning yields: the minimum latency of
/// any link whose endpoints live in different partitions.
///
/// Any event a partition emits toward another partition arrives at least
/// this far in the future (every inter-partition path crosses at least one
/// inter-partition link), so all partitions can safely process events within
/// a `[t, t + lookahead)` window without hearing from each other. Returns
/// `None` when no link crosses partitions (single partition, or a
/// disconnected cut) — the window is then unbounded.
pub fn min_cross_partition_latency<P: Partitioner + ?Sized>(
    topo: &Topology,
    part: &P,
) -> Option<SimDuration> {
    let mut min: Option<SimDuration> = None;
    for link in topo.links() {
        if part.partition_of(link.a) != part.partition_of(link.b) {
            let lat = link.latency;
            min = Some(match min {
                Some(m) if m <= lat => m,
                _ => lat,
            });
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    #[test]
    fn single_partition_is_trivial() {
        let topo = topologies::fig1();
        let p = SinglePartition;
        assert_eq!(p.partitions(), 1);
        for id in topo.node_ids() {
            assert_eq!(p.partition_of(id), 0);
        }
        assert_eq!(min_cross_partition_latency(&topo, &p), None);
    }

    #[test]
    fn pod_partitioner_groups_fat_tree_pods() {
        let topo = topologies::synthetic_fat_tree_64();
        let p = PodPartitioner::new(&topo, 4);
        assert_eq!(p.partitions(), 4);
        // Same-pod agg/edge switches always share a partition.
        for id in topo.node_ids() {
            let name = &topo.node(id).name;
            if let Some(rest) = name.strip_prefix("edge") {
                let pod: usize = rest.split_once('_').unwrap().0.parse().unwrap();
                let agg = topo
                    .node_by_name(&format!("agg{pod}_0"))
                    .expect("pod has agg switches");
                assert_eq!(p.partition_of(id), p.partition_of(agg), "{name}");
            }
        }
        // All partitions are populated.
        let mut seen = [false; 4];
        for id in topo.node_ids() {
            seen[p.partition_of(id)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fat_tree_cut_has_positive_lookahead() {
        let topo = topologies::synthetic_fat_tree_64();
        for target in [2, 4, 8] {
            let p = PodPartitioner::new(&topo, target);
            let la = min_cross_partition_latency(&topo, &p).expect("a multi-pod cut crosses links");
            assert!(la > SimDuration::ZERO, "zero-latency boundary link");
            // The generator's uniform link latency is 50µs; the minimum
            // cross-partition link can't beat the global minimum.
            assert_eq!(la, SimDuration::from_micros(50));
        }
    }

    #[test]
    fn stripe_partitioner_round_robins_nodes() {
        let topo = topologies::fig1();
        let p = StripePartitioner::new(3);
        assert_eq!(p.partitions(), 3);
        for id in topo.node_ids() {
            assert_eq!(p.partition_of(id), id.index() % 3);
        }
        // An adjacent-node cut crosses links, so a lookahead exists.
        assert!(min_cross_partition_latency(&topo, &p).is_some());
        assert_eq!(StripePartitioner::new(0).partitions(), 1);
    }

    #[test]
    fn unknown_names_fall_back_to_partition_zero() {
        let topo = topologies::fig1();
        let p = PodPartitioner::new(&topo, 4);
        for id in topo.node_ids() {
            assert_eq!(p.partition_of(id), 0);
        }
    }
}
