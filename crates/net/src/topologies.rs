//! The evaluation topologies (paper §9.1 and Fig. 8).
//!
//! - `fig1()` — the 8-node synthetic topology of Fig. 1 (20 ms links).
//! - `fig2_chain()` — the 5-node scenario of Fig. 2 (reordered updates).
//! - `fig4_net()` — the 6-node two-consecutive-update scenario of §4.2.
//! - `multi_gateway()` — 11-node many-gateway scenario (backward segments).
//! - `fat_tree(k)` — DC topology, switch-level fat-tree.
//! - `b4()` — Google's inter-DC WAN (12 nodes, 19 edges).
//! - `internet2()` — the US research network (16 nodes, 26 edges).
//! - `att_mpls()` — AT&T North America MPLS backbone (25 nodes, 56 edges).
//! - `chinanet()` — Chinanet backbone (38 nodes, 62 edges).
//!
//! WAN link latencies derive from great-circle distance at 2·10⁵ km/s
//! (§9.1). Node/edge counts match what the paper reports in Fig. 8. Site
//! coordinates are approximations of the real locations; for `att_mpls` and
//! `chinanet` the exact Topology-Zoo edge lists are not embedded — instead
//! [`geo_mesh`] deterministically augments a minimum spanning tree with the
//! geographically shortest remaining edges until the published edge count is
//! reached, which preserves node count, edge count, degree distribution
//! scale, and latency realism (substitution documented in DESIGN.md §2).

use crate::geo::haversine_km;
use crate::graph::{NodeId, Topology, TopologyBuilder};
use p4update_des::{SimDuration, SimRng};

/// Default per-direction link capacity for scenario topologies, in flow-size
/// units. Chosen so capacity binds only when the traffic generator aims for
/// it (multi-flow scenario).
pub const DEFAULT_CAPACITY: f64 = 1_000.0;

/// The synthetic topology of Fig. 1: 8 nodes with old path `v0 v4 v2 v7` and
/// new path `v0 v1 v2 v3 v4 v5 v6 v7`, homogeneous 20 ms link latency.
pub fn fig1() -> Topology {
    let mut b = TopologyBuilder::new("fig1");
    let v: Vec<NodeId> = (0..8).map(|i| b.add_node(format!("v{i}"))).collect();
    let lat = SimDuration::from_millis(20);
    // Old path edges.
    for &(x, y) in &[(0usize, 4usize), (4, 2), (2, 7)] {
        b.add_link(v[x], v[y], lat, DEFAULT_CAPACITY);
    }
    // New path edges.
    for w in [0usize, 1, 2, 3, 4, 5, 6, 7].windows(2) {
        b.add_link(v[w[0]], v[w[1]], lat, DEFAULT_CAPACITY);
    }
    b.build()
}

/// The old path of the Fig. 1 scenario.
pub fn fig1_old_path() -> Vec<NodeId> {
    [0u32, 4, 2, 7].map(NodeId).to_vec()
}

/// The new path of the Fig. 1 scenario.
pub fn fig1_new_path() -> Vec<NodeId> {
    (0u32..8).map(NodeId).collect()
}

/// The 5-node chain of Fig. 2 plus the shortcut links its configurations
/// (b) and (c) need. Links are 1 ms (the §4.1 demonstration runs on an
/// emulated chain with fast links, so that looped packets exhaust TTL 64
/// within the inconsistency window).
///
/// - config (a): `v0 v1 v2 v3 v4`
/// - config (b): `v0 v1 v2 v4` (shortcut `v2–v4`)
/// - config (c): `v0 v3 v1 v2 v4` (uses `v0–v3` and `v3–v1`)
pub fn fig2_chain() -> Topology {
    let mut b = TopologyBuilder::new("fig2");
    let v: Vec<NodeId> = (0..5).map(|i| b.add_node(format!("v{i}"))).collect();
    let lat = SimDuration::from_millis(1);
    for w in [0usize, 1, 2, 3, 4].windows(2) {
        b.add_link(v[w[0]], v[w[1]], lat, DEFAULT_CAPACITY);
    }
    b.add_link(v[2], v[4], lat, DEFAULT_CAPACITY); // for config (b)
    b.add_link(v[0], v[3], lat, DEFAULT_CAPACITY); // for config (c)
    b.add_link(v[3], v[1], lat, DEFAULT_CAPACITY); // for config (c)
    b.build()
}

/// The Fig. 2 chain with one twist for the schedule explorer: the detour
/// link `v3–v1` that only config (c) uses is slow (50 ms instead of
/// 1 ms). Deploying (c) from the paper's inconsistent state (`v2` still
/// on config (a) because (b)'s message was lost) races two in-band
/// chains: the one repairing `v2 → v4` and the one installing
/// `v3 → v1`. Over this topology the repair wins under the default
/// schedule — the run is clean — and only an adversarial drop or delay
/// of the repair exposes the `v3 → v1 → v2 → v3` loop, which is exactly
/// the search problem `p4update-explore` is pointed at.
pub fn fig2_chain_slow_detour() -> Topology {
    let mut b = TopologyBuilder::new("fig2-slow-detour");
    let v: Vec<NodeId> = (0..5).map(|i| b.add_node(format!("v{i}"))).collect();
    let lat = SimDuration::from_millis(1);
    for w in [0usize, 1, 2, 3, 4].windows(2) {
        b.add_link(v[w[0]], v[w[1]], lat, DEFAULT_CAPACITY);
    }
    b.add_link(v[2], v[4], lat, DEFAULT_CAPACITY); // for config (b)
    b.add_link(v[0], v[3], lat, DEFAULT_CAPACITY); // for config (c)
    b.add_link(v[3], v[1], SimDuration::from_millis(50), DEFAULT_CAPACITY); // slow detour
    b.build()
}

/// Config (a) of Fig. 2.
pub fn fig2_config_a() -> Vec<NodeId> {
    [0u32, 1, 2, 3, 4].map(NodeId).to_vec()
}

/// Config (b) of Fig. 2 (only the `v2 → v4` part changes).
pub fn fig2_config_b() -> Vec<NodeId> {
    [0u32, 1, 2, 4].map(NodeId).to_vec()
}

/// Config (c) of Fig. 2. Deploying (c) while (b) is lost leaves the mixed
/// state with the `v3 → v1 → v2 → v3` loop the paper demonstrates.
pub fn fig2_config_c() -> Vec<NodeId> {
    [0u32, 3, 1, 2, 4].map(NodeId).to_vec()
}

/// An 11-node topology whose update has *many* gateways, exercising the
/// dual-layer mechanism's backward segments (Alg. 2). The old path is the
/// chain `v0 … v5`; the new path detours through fresh nodes `v6 … v10`
/// but revisits every old node in the shuffled order
/// `v0 v6 v3 v7 v1 v8 v4 v9 v2 v10 v5`, so all six old nodes are
/// gateways and the segments alternate forward/backward:
/// `0→3` forward, `3→1` backward, `1→4` forward, `4→2` backward,
/// `2→5` forward (backward iff the ingress gateway's old distance does
/// not exceed the egress gateway's, §6.2). 5 ms links.
pub fn multi_gateway() -> Topology {
    let mut b = TopologyBuilder::new("multi-gateway");
    for i in 0..11 {
        b.add_node(format!("v{i}"));
    }
    let lat = SimDuration::from_millis(5);
    for w in multi_gateway_old_path().windows(2) {
        b.add_link(w[0], w[1], lat, DEFAULT_CAPACITY);
    }
    for w in multi_gateway_new_path().windows(2) {
        if !b.has_link(w[0], w[1]) {
            b.add_link(w[0], w[1], lat, DEFAULT_CAPACITY);
        }
    }
    b.build()
}

/// Old path of the multi-gateway scenario (the plain chain).
pub fn multi_gateway_old_path() -> Vec<NodeId> {
    [0u32, 1, 2, 3, 4, 5].map(NodeId).to_vec()
}

/// New path of the multi-gateway scenario (every old node revisited out
/// of order; see [`multi_gateway`]).
pub fn multi_gateway_new_path() -> Vec<NodeId> {
    [0u32, 6, 3, 7, 1, 8, 4, 9, 2, 10, 5].map(NodeId).to_vec()
}

/// The 6-node network for the §4.2 fast-forward scenario, 20 ms links.
/// Dense enough to host one complex (segmented) update `U2` and one simple
/// update `U3` between the same endpoints.
pub fn fig4_net() -> Topology {
    let mut b = TopologyBuilder::new("fig4");
    let v: Vec<NodeId> = (0..6).map(|i| b.add_node(format!("v{i}"))).collect();
    let lat = SimDuration::from_millis(20);
    let edges = [
        (0usize, 1usize),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (0, 2),
        (1, 3),
        (2, 4),
        (3, 5),
        (0, 5),
        (1, 5),
    ];
    for (x, y) in edges {
        b.add_link(v[x], v[y], lat, DEFAULT_CAPACITY);
    }
    b.build()
}

/// Switch-level fat-tree with parameter `k` (k pods, k²/4 core switches).
/// Node naming: `core{i}`, `agg{p}_{i}`, `edge{p}_{i}`. Intra-DC links get
/// 0.05 ms latency. `k` must be even and ≥ 2.
pub fn fat_tree(k: usize) -> Topology {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree k must be even and >= 2"
    );
    let mut b = TopologyBuilder::new(format!("fat-tree-k{k}"));
    let lat = SimDuration::from_micros(50);
    let half = k / 2;
    let cores: Vec<NodeId> = (0..half * half)
        .map(|i| b.add_node(format!("core{i}")))
        .collect();
    let mut aggs = Vec::new();
    let mut edges = Vec::new();
    for p in 0..k {
        let agg: Vec<NodeId> = (0..half)
            .map(|i| b.add_node(format!("agg{p}_{i}")))
            .collect();
        let edge: Vec<NodeId> = (0..half)
            .map(|i| b.add_node(format!("edge{p}_{i}")))
            .collect();
        // Full bipartite agg <-> edge inside the pod.
        for &a in &agg {
            for &e in &edge {
                b.add_link(a, e, lat, DEFAULT_CAPACITY);
            }
        }
        // agg i connects to cores [i*half, (i+1)*half).
        for (i, &a) in agg.iter().enumerate() {
            for j in 0..half {
                b.add_link(a, cores[i * half + j], lat, DEFAULT_CAPACITY);
            }
        }
        aggs.push(agg);
        edges.push(edge);
    }
    b.build()
}

/// Synthetic fat-tree with independently chosen core count, pod count, and
/// per-pod width — the scale knob the perf harness turns. A strict
/// [`fat_tree`]`(k)` only exists at sizes `k + k²` for even `k` (20, 80,
/// 320, …), so hitting round node budgets like 64 or 512 needs the
/// relaxed form: `cores + pods × (per_pod agg + per_pod edge)` switches,
/// full bipartite agg↔edge inside each pod, and aggregation switch `j`
/// of pod `p` uplinked to cores `(p + j) % cores` and `(p + j + 1) %
/// cores` (two distinct uplinks whenever `cores ≥ 2`; the pod offset
/// rotates coverage so `pods + per_pod ≥ cores` guarantees every core is
/// reached and the fabric stays connected and multipath). Node naming
/// matches [`fat_tree`] (`core{i}`, `agg{p}_{i}`, `edge{p}_{i}`), so
/// [`fat_tree_edge_switches`] works on both. 0.05 ms intra-DC links.
pub fn synthetic_fat_tree(cores: usize, pods: usize, per_pod: usize) -> Topology {
    assert!(cores >= 2 && pods >= 1 && per_pod >= 1);
    assert!(
        pods + per_pod >= cores,
        "too few aggregation switches to reach every core"
    );
    let total = cores + pods * 2 * per_pod;
    let mut b = TopologyBuilder::new(format!("synth-fat-tree-{total}"));
    let lat = SimDuration::from_micros(50);
    let core_ids: Vec<NodeId> = (0..cores).map(|i| b.add_node(format!("core{i}"))).collect();
    for p in 0..pods {
        let agg: Vec<NodeId> = (0..per_pod)
            .map(|i| b.add_node(format!("agg{p}_{i}")))
            .collect();
        let edge: Vec<NodeId> = (0..per_pod)
            .map(|i| b.add_node(format!("edge{p}_{i}")))
            .collect();
        for &a in &agg {
            for &e in &edge {
                b.add_link(a, e, lat, DEFAULT_CAPACITY);
            }
        }
        for (j, &a) in agg.iter().enumerate() {
            b.add_link(a, core_ids[(p + j) % cores], lat, DEFAULT_CAPACITY);
            b.add_link(a, core_ids[(p + j + 1) % cores], lat, DEFAULT_CAPACITY);
        }
    }
    b.build()
}

/// 64-switch synthetic fat-tree (8 cores, 4 pods × 7 agg + 7 edge) — the
/// mid-scale perf-harness topology.
pub fn synthetic_fat_tree_64() -> Topology {
    synthetic_fat_tree(8, 4, 7)
}

/// 512-switch synthetic fat-tree (32 cores, 8 pods × 30 agg + 30 edge) —
/// the large-scale perf-harness topology.
pub fn synthetic_fat_tree_512() -> Topology {
    synthetic_fat_tree(32, 8, 30)
}

/// 4096-switch synthetic fat-tree (64 cores, 126 pods × 16 agg + 16 edge)
/// — the beyond-ft512 scale the parallel perf harness measures.
pub fn synthetic_fat_tree_4096() -> Topology {
    synthetic_fat_tree(64, 126, 16)
}

/// 32768-switch synthetic fat-tree (128 cores, 240 pods × 68 agg + 68
/// edge) — the hyper-scale topology only the partitioned engine can run:
/// dense all-pairs path tables alone would need ~16 GiB at this node
/// count, so the harness pairs it with lazily computed tables.
pub fn synthetic_fat_tree_32768() -> Topology {
    synthetic_fat_tree(128, 240, 68)
}

/// Edge switches of a fat-tree built by [`fat_tree`] — the ingress/egress
/// candidates for DC flows.
pub fn fat_tree_edge_switches(topo: &Topology) -> Vec<NodeId> {
    topo.node_ids()
        .filter(|&v| topo.node(v).name.starts_with("edge"))
        .collect()
}

/// Google's B4 inter-DC WAN as reconstructed from Jain et al. (SIGCOMM '13):
/// 12 sites, 19 links (counts as reported in the paper's Fig. 8).
pub fn b4() -> Topology {
    let mut b = TopologyBuilder::new("B4");
    let sites: [(&str, f64, f64); 12] = [
        ("TheDalles-OR", 45.60, -121.18),
        ("CouncilBluffs-IA", 41.26, -95.86),
        ("MayesCounty-OK", 36.30, -95.32),
        ("Lenoir-NC", 35.91, -81.54),
        ("BerkeleyCounty-SC", 33.20, -80.02),
        ("Dublin-IE", 53.35, -6.26),
        ("StGhislain-BE", 50.45, 3.82),
        ("Hamina-FI", 60.57, 27.20),
        ("HongKong", 22.32, 114.17),
        ("Singapore", 1.35, 103.82),
        ("Changhua-TW", 24.08, 120.54),
        ("Tokyo-JP", 35.68, 139.69),
    ];
    let ids: Vec<NodeId> = sites
        .iter()
        .map(|&(name, lat, lon)| b.add_site(name, lat, lon))
        .collect();
    let edges: [(usize, usize); 19] = [
        // North America mesh
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (0, 2),
        (1, 3),
        // transatlantic + Europe
        (4, 5),
        (3, 5),
        (5, 6),
        (6, 7),
        (5, 7),
        (4, 6),
        // transpacific + Asia
        (0, 11),
        (0, 8),
        (1, 11),
        (11, 10),
        (10, 8),
        (8, 9),
        (10, 9),
    ];
    for (x, y) in edges {
        b.add_geo_link(ids[x], ids[y], DEFAULT_CAPACITY);
    }
    b.build()
}

/// The Internet2 US research backbone: 16 nodes, 26 edges (counts as in the
/// paper's Fig. 8).
pub fn internet2() -> Topology {
    let mut b = TopologyBuilder::new("Internet2");
    let sites: [(&str, f64, f64); 16] = [
        ("Seattle", 47.61, -122.33),
        ("Sunnyvale", 37.37, -122.04),
        ("LosAngeles", 34.05, -118.24),
        ("SaltLakeCity", 40.76, -111.89),
        ("Denver", 39.74, -104.99),
        ("ElPaso", 31.76, -106.49),
        ("Houston", 29.76, -95.37),
        ("Dallas", 32.78, -96.80),
        ("KansasCity", 39.10, -94.58),
        ("Chicago", 41.88, -87.63),
        ("Indianapolis", 39.77, -86.16),
        ("Nashville", 36.16, -86.78),
        ("Atlanta", 33.75, -84.39),
        ("Jacksonville", 30.33, -81.66),
        ("WashingtonDC", 38.91, -77.04),
        ("NewYork", 40.71, -74.01),
    ];
    let ids: Vec<NodeId> = sites
        .iter()
        .map(|&(name, lat, lon)| b.add_site(name, lat, lon))
        .collect();
    let edges: [(usize, usize); 26] = [
        (0, 1),
        (0, 3),
        (0, 9),
        (1, 2),
        (1, 3),
        (2, 3),
        (2, 5),
        (3, 4),
        (4, 7),
        (4, 8),
        (5, 6),
        (5, 7),
        (6, 7),
        (6, 13),
        (7, 8),
        (8, 9),
        (8, 11),
        (9, 10),
        (9, 15),
        (10, 11),
        (10, 14),
        (11, 12),
        (12, 13),
        (12, 14),
        (13, 14),
        (14, 15),
    ];
    for (x, y) in edges {
        b.add_geo_link(ids[x], ids[y], DEFAULT_CAPACITY);
    }
    b.build()
}

/// Deterministically build a geographic mesh: minimum spanning tree over
/// great-circle distance, then the shortest remaining site pairs until
/// `target_edges` links exist. Used to reconstruct Topology-Zoo backbones
/// where only node/edge counts and city sets are reproduced.
///
/// # Panics
/// Panics if `target_edges` is below `n - 1` (tree) or above `n(n-1)/2`.
pub fn geo_mesh(name: &str, sites: &[(&str, f64, f64)], target_edges: usize) -> Topology {
    let n = sites.len();
    assert!(
        target_edges >= n.saturating_sub(1),
        "too few edges to connect"
    );
    assert!(target_edges <= n * (n - 1) / 2, "more edges than pairs");
    let mut b = TopologyBuilder::new(name);
    let ids: Vec<NodeId> = sites
        .iter()
        .map(|&(name, lat, lon)| b.add_site(name, lat, lon))
        .collect();

    // All pairs sorted by distance (ties by index pair → deterministic).
    let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in i + 1..n {
            let d = haversine_km((sites[i].1, sites[i].2), (sites[j].1, sites[j].2));
            pairs.push((d, i, j));
        }
    }
    pairs.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite distances")
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });

    // Kruskal MST.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for &(_, i, j) in &pairs {
        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
        if ri != rj {
            parent[ri] = rj;
            b.add_geo_link(ids[i], ids[j], DEFAULT_CAPACITY);
        }
    }
    // Augment with shortest non-tree pairs.
    for &(_, i, j) in &pairs {
        if b.link_count() >= target_edges {
            break;
        }
        if !b.has_link(ids[i], ids[j]) {
            b.add_geo_link(ids[i], ids[j], DEFAULT_CAPACITY);
        }
    }
    b.build()
}

/// AT&T North America MPLS backbone (Topology Zoo "AttMpls"): 25 nodes,
/// 56 edges. City set approximates the published PoPs; see [`geo_mesh`].
pub fn att_mpls() -> Topology {
    let sites: [(&str, f64, f64); 25] = [
        ("NewYork", 40.71, -74.01),
        ("Washington", 38.91, -77.04),
        ("Atlanta", 33.75, -84.39),
        ("Orlando", 28.54, -81.38),
        ("Miami", 25.76, -80.19),
        ("Nashville", 36.16, -86.78),
        ("Chicago", 41.88, -87.63),
        ("Detroit", 42.33, -83.05),
        ("Cleveland", 41.50, -81.69),
        ("Philadelphia", 39.95, -75.17),
        ("Boston", 42.36, -71.06),
        ("StLouis", 38.63, -90.20),
        ("KansasCity", 39.10, -94.58),
        ("Dallas", 32.78, -96.80),
        ("Houston", 29.76, -95.37),
        ("SanAntonio", 29.42, -98.49),
        ("NewOrleans", 29.95, -90.07),
        ("Denver", 39.74, -104.99),
        ("Phoenix", 33.45, -112.07),
        ("Albuquerque", 35.08, -106.65),
        ("LosAngeles", 34.05, -118.24),
        ("SanDiego", 32.72, -117.16),
        ("SanFrancisco", 37.77, -122.42),
        ("Sacramento", 38.58, -121.49),
        ("Seattle", 47.61, -122.33),
    ];
    geo_mesh("AttMpls", &sites, 56)
}

/// Chinanet backbone (Topology Zoo "Chinanet"): 38 nodes, 62 edges. City
/// set approximates the provincial capitals the published map shows; see
/// [`geo_mesh`].
pub fn chinanet() -> Topology {
    let sites: [(&str, f64, f64); 38] = [
        ("Beijing", 39.90, 116.41),
        ("Shanghai", 31.23, 121.47),
        ("Guangzhou", 23.13, 113.26),
        ("Shenzhen", 22.54, 114.06),
        ("Chengdu", 30.57, 104.07),
        ("Chongqing", 29.56, 106.55),
        ("Wuhan", 30.59, 114.31),
        ("Xian", 34.34, 108.94),
        ("Nanjing", 32.06, 118.80),
        ("Hangzhou", 30.27, 120.16),
        ("Tianjin", 39.34, 117.36),
        ("Shenyang", 41.81, 123.43),
        ("Harbin", 45.80, 126.53),
        ("Changchun", 43.82, 125.32),
        ("Jinan", 36.65, 117.12),
        ("Qingdao", 36.07, 120.38),
        ("Zhengzhou", 34.75, 113.63),
        ("Changsha", 28.23, 112.94),
        ("Nanchang", 28.68, 115.86),
        ("Fuzhou", 26.07, 119.30),
        ("Xiamen", 24.48, 118.09),
        ("Kunming", 24.88, 102.83),
        ("Guiyang", 26.65, 106.63),
        ("Nanning", 22.82, 108.37),
        ("Haikou", 20.04, 110.34),
        ("Lanzhou", 36.06, 103.83),
        ("Xining", 36.62, 101.78),
        ("Urumqi", 43.83, 87.62),
        ("Lhasa", 29.65, 91.14),
        ("Yinchuan", 38.49, 106.23),
        ("Hohhot", 40.84, 111.75),
        ("Taiyuan", 37.87, 112.55),
        ("Shijiazhuang", 38.04, 114.51),
        ("Hefei", 31.82, 117.23),
        ("Wenzhou", 28.00, 120.70),
        ("Dalian", 38.91, 121.61),
        ("Suzhou", 31.30, 120.58),
        ("Dongguan", 23.02, 113.75),
    ];
    geo_mesh("Chinanet", &sites, 62)
}

/// Random connected topology for property-based tests: a random spanning
/// tree plus `extra_edges` random additional links, 1–30 ms latencies.
pub fn random_connected(rng: &mut SimRng, n: usize, extra_edges: usize) -> Topology {
    assert!(n >= 2);
    let mut b = TopologyBuilder::new(format!("random-{n}"));
    let ids: Vec<NodeId> = (0..n).map(|i| b.add_node(format!("r{i}"))).collect();
    // Random spanning tree: attach each node to a random earlier node.
    for i in 1..n {
        let j = rng.uniform_usize(i);
        let lat = SimDuration::from_millis(1 + rng.uniform_usize(30) as u64);
        b.add_link(ids[i], ids[j], lat, DEFAULT_CAPACITY);
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_edges && attempts < extra_edges * 20 {
        attempts += 1;
        let i = rng.uniform_usize(n);
        let j = rng.uniform_usize(n);
        if i != j && !b.has_link(ids[i], ids[j]) {
            let lat = SimDuration::from_millis(1 + rng.uniform_usize(30) as u64);
            b.add_link(ids[i], ids[j], lat, DEFAULT_CAPACITY);
            added += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_matches_the_paper() {
        let t = fig1();
        assert_eq!(t.node_count(), 8);
        assert!(t.is_connected());
        // Old/new paths must be routable.
        for w in fig1_old_path().windows(2) {
            assert!(t.link_between(w[0], w[1]).is_some());
        }
        for w in fig1_new_path().windows(2) {
            assert!(t.link_between(w[0], w[1]).is_some());
        }
        assert_eq!(
            t.latency_between(NodeId(0), NodeId(1)),
            Some(SimDuration::from_millis(20))
        );
    }

    #[test]
    fn fig2_configs_are_routable() {
        let t = fig2_chain();
        for cfg in [fig2_config_a(), fig2_config_b(), fig2_config_c()] {
            for w in cfg.windows(2) {
                assert!(
                    t.link_between(w[0], w[1]).is_some(),
                    "missing link {}-{}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn fig2_mixed_state_contains_the_paper_loop() {
        // With (c) deployed except v2 (still on (a)'s rule), the walk from
        // v0 is v0 -> v3 -> v1 -> v2 -> v3: a loop over v1,v2,v3.
        let next = |v: u32| -> u32 {
            match v {
                0 => 3, // (c)
                3 => 1, // (c)
                1 => 2, // (c)
                2 => 3, // still (a)
                _ => unreachable!(),
            }
        };
        let mut seen = vec![];
        let mut cur = 0;
        for _ in 0..6 {
            cur = next(cur);
            seen.push(cur);
        }
        assert_eq!(seen, vec![3, 1, 2, 3, 1, 2]);
    }

    #[test]
    fn multi_gateway_paths_are_routable_and_disjoint_in_the_middle() {
        let t = multi_gateway();
        assert_eq!(t.node_count(), 11);
        assert!(t.is_connected());
        for cfg in [multi_gateway_old_path(), multi_gateway_new_path()] {
            for w in cfg.windows(2) {
                assert!(
                    t.link_between(w[0], w[1]).is_some(),
                    "missing link {}-{}",
                    w[0],
                    w[1]
                );
            }
        }
        // Every old node reappears on the new path: all six are gateways.
        let new = multi_gateway_new_path();
        for v in multi_gateway_old_path() {
            assert!(new.contains(&v), "old node {v} must be on the new path");
        }
    }

    #[test]
    fn fat_tree_k4_has_20_switches() {
        let t = fat_tree(4);
        assert_eq!(t.node_count(), 20); // 4 core + 8 agg + 8 edge
        assert_eq!(t.link_count(), 32); // 16 pod links + 16 core links
        assert!(t.is_connected());
        assert_eq!(fat_tree_edge_switches(&t).len(), 8);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn fat_tree_odd_k_panics() {
        fat_tree(3);
    }

    #[test]
    fn synthetic_fat_trees_hit_their_node_budgets() {
        let t64 = synthetic_fat_tree_64();
        assert_eq!(t64.node_count(), 64);
        assert!(t64.is_connected());
        assert_eq!(fat_tree_edge_switches(&t64).len(), 4 * 7);

        let t512 = synthetic_fat_tree_512();
        assert_eq!(t512.node_count(), 512);
        assert!(t512.is_connected());
        assert_eq!(fat_tree_edge_switches(&t512).len(), 8 * 30);

        // Every aggregation switch has two distinct core uplinks.
        for v in t512.node_ids() {
            if t512.node(v).name.starts_with("agg") {
                let core_neighbors = t512
                    .neighbors(v)
                    .iter()
                    .filter(|&&(u, _)| t512.node(u).name.starts_with("core"))
                    .count();
                assert_eq!(core_neighbors, 2, "agg {v} uplinks");
            }
        }

        let t4096 = synthetic_fat_tree_4096();
        assert_eq!(t4096.node_count(), 4096); // 64 + 126 × (16 + 16)
        assert!(t4096.is_connected());
        assert_eq!(fat_tree_edge_switches(&t4096).len(), 126 * 16);
    }

    #[test]
    fn b4_counts_match_fig8() {
        let t = b4();
        assert_eq!(t.node_count(), 12);
        assert_eq!(t.link_count(), 19);
        assert!(t.is_connected());
    }

    #[test]
    fn internet2_counts_match_fig8() {
        let t = internet2();
        assert_eq!(t.node_count(), 16);
        assert_eq!(t.link_count(), 26);
        assert!(t.is_connected());
    }

    #[test]
    fn att_mpls_counts_match_fig8() {
        let t = att_mpls();
        assert_eq!(t.node_count(), 25);
        assert_eq!(t.link_count(), 56);
        assert!(t.is_connected());
    }

    #[test]
    fn chinanet_counts_match_fig8() {
        let t = chinanet();
        assert_eq!(t.node_count(), 38);
        assert_eq!(t.link_count(), 62);
        assert!(t.is_connected());
    }

    #[test]
    fn wan_latencies_are_physical() {
        let t = b4();
        for link in t.links() {
            let ms = link.latency.as_millis_f64();
            assert!(ms > 0.0 && ms < 120.0, "implausible WAN latency {ms} ms");
        }
        // Transpacific must be slower than intra-US.
        let td = t.node_by_name("TheDalles-OR").unwrap();
        let cb = t.node_by_name("CouncilBluffs-IA").unwrap();
        let tokyo = t.node_by_name("Tokyo-JP").unwrap();
        let us = t.latency_between(td, cb).unwrap();
        let pacific = t.latency_between(td, tokyo).unwrap();
        assert!(pacific > us.saturating_mul(2));
    }

    #[test]
    fn geo_mesh_is_deterministic() {
        let a = att_mpls();
        let b = att_mpls();
        assert_eq!(a.link_count(), b.link_count());
        for (la, lb) in a.links().iter().zip(b.links()) {
            assert_eq!((la.a, la.b), (lb.a, lb.b));
        }
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = SimRng::new(7);
        for n in [2, 5, 20] {
            let t = random_connected(&mut rng, n, n / 2);
            assert_eq!(t.node_count(), n);
            assert!(t.is_connected());
        }
    }
}
