//! The flow and update model: flows between ingress/egress switches, routed
//! along simple paths; an update migrates a flow from its old path to a new
//! one (paper §5).

use crate::graph::NodeId;
use crate::path::Path;
use std::fmt;

/// Identifier of a traffic flow. In the P4 implementation this is the hash
/// of the source–destination pair computed by the ingress switch when it
/// emits the flow-report message (Appendix B); here it is assigned by the
/// harness and carried verbatim in every message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

impl FlowId {
    /// Index into dense per-flow register arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Configuration version number. Strictly increases with each configuration
/// the controller emits for a flow; used by the data plane to reject
/// out-of-date update commands (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(pub u32);

impl Version {
    /// The pre-first-configuration version (no rules installed).
    pub const NONE: Version = Version(0);

    /// The next version.
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

/// A traffic flow: identifier, current route, and its size bound.
///
/// The congestion model assumes each flow has an immutable, ingress-enforced
/// upper size bound known to the controller (§7.4), in the same units as
/// link capacity.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Flow identifier.
    pub id: FlowId,
    /// The flow's route.
    pub path: Path,
    /// Upper bound on the flow's rate, in link-capacity units.
    pub size: f64,
}

impl Flow {
    /// Ingress switch.
    pub fn ingress(&self) -> NodeId {
        self.path.ingress()
    }

    /// Egress switch.
    pub fn egress(&self) -> NodeId {
        self.path.egress()
    }
}

/// A requested route update for one flow: migrate from `old_path` to
/// `new_path`. Old and new path share ingress and egress.
///
/// `PartialEq` (not `Eq`, because of the `f64` size) exists so batch
/// consumers can diff successive batches positionally.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowUpdate {
    /// The flow being rerouted.
    pub flow: FlowId,
    /// Current route (`None` for initial deployment of a new flow).
    pub old_path: Option<Path>,
    /// Target route.
    pub new_path: Path,
    /// Flow size bound (copied into the UIM so switches can do local
    /// capacity checks).
    pub size: f64,
}

impl FlowUpdate {
    /// Construct and sanity-check an update request.
    ///
    /// # Panics
    /// Panics if old and new paths disagree on ingress or egress — such a
    /// request is malformed at the controller, not an inconsistency the data
    /// plane is meant to catch.
    pub fn new(flow: FlowId, old_path: Option<Path>, new_path: Path, size: f64) -> Self {
        if let Some(old) = &old_path {
            assert_eq!(old.ingress(), new_path.ingress(), "ingress must match");
            assert_eq!(old.egress(), new_path.egress(), "egress must match");
        }
        FlowUpdate {
            flow,
            old_path,
            new_path,
            size,
        }
    }

    /// Nodes that need new forwarding rules: every node on the new path
    /// except the egress (which only receives).
    pub fn nodes_to_update(&self) -> impl Iterator<Item = NodeId> + '_ {
        let egress = self.new_path.egress();
        self.new_path
            .nodes()
            .iter()
            .copied()
            .filter(move |&n| n != egress)
    }

    /// True when the update does not change the path at all.
    pub fn is_noop(&self) -> bool {
        self.old_path.as_ref() == Some(&self.new_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ids: &[u32]) -> Path {
        Path::new(ids.iter().map(|&i| NodeId(i)).collect())
    }

    #[test]
    fn version_ordering_and_next() {
        assert!(Version(2) > Version(1));
        assert_eq!(Version::NONE.next(), Version(1));
        assert_eq!(Version(7).next(), Version(8));
    }

    #[test]
    fn flow_endpoints() {
        let f = Flow {
            id: FlowId(1),
            path: p(&[0, 1, 2]),
            size: 2.5,
        };
        assert_eq!(f.ingress(), NodeId(0));
        assert_eq!(f.egress(), NodeId(2));
    }

    #[test]
    fn update_nodes_exclude_egress() {
        let u = FlowUpdate::new(FlowId(0), Some(p(&[0, 4, 2, 7])), p(&[0, 1, 2, 3, 7]), 1.0);
        let nodes: Vec<_> = u.nodes_to_update().collect();
        assert_eq!(nodes, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert!(!u.is_noop());
    }

    #[test]
    fn noop_update_detected() {
        let u = FlowUpdate::new(FlowId(0), Some(p(&[0, 1])), p(&[0, 1]), 1.0);
        assert!(u.is_noop());
    }

    #[test]
    #[should_panic(expected = "egress must match")]
    fn mismatched_egress_panics() {
        FlowUpdate::new(FlowId(0), Some(p(&[0, 1, 2])), p(&[0, 3]), 1.0);
    }

    #[test]
    #[should_panic(expected = "ingress must match")]
    fn mismatched_ingress_panics() {
        FlowUpdate::new(FlowId(0), Some(p(&[1, 2])), p(&[0, 2]), 1.0);
    }

    #[test]
    fn initial_deployment_has_no_old_path() {
        let u = FlowUpdate::new(FlowId(3), None, p(&[0, 1, 2]), 1.0);
        assert!(u.old_path.is_none());
        assert!(!u.is_noop());
    }
}
