//! # p4update-pipeline
//!
//! P4 data-plane abstractions (§2.1 of the paper), the building blocks the
//! switch model composes:
//!
//! - [`RegisterArray`]: stateful per-flow storage, the mechanism behind the
//!   UIB (Table 1).
//! - [`ExactTable`]: match-action units with control-plane-installed entries
//!   and finite capacity.
//! - [`CloneEngine`]: packet cloning via configured sessions (UNM/UFM
//!   generation).
//! - [`ResubmitQueue`]: data-plane waiting via packet resubmission
//!   (Appendix B — "P4Update uses packet resubmission to check repeatedly if
//!   UIM has arrived while processing UNM").
//!
//! The abstractions are deliberately target-independent, mirroring P4's own
//! portability story; the dataplane crate instantiates them into a
//! BMv2-like software switch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod primitives;
mod register;
mod table;

pub use primitives::{CloneEngine, CloneSession, ResubmitQueue};
pub use register::RegisterArray;
pub use table::{ExactTable, TableError, TableHit};
