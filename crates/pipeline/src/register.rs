//! Register arrays: the P4 stateful-processing primitive (§2.1).
//!
//! A P4 `register` is a fixed-size array of cells, persistent across
//! packets, readable and writable from both planes. P4Update stores all
//! per-flow update state in registers indexed by the flow index (Table 1 /
//! Appendix B). This module provides a typed equivalent with the same
//! access discipline: bounds-checked indexed reads and writes plus a
//! read-modify-write helper mirroring P4's atomic register semantics on a
//! single pipeline pass.

/// A fixed-size array of typed register cells.
#[derive(Debug, Clone)]
pub struct RegisterArray<T> {
    name: &'static str,
    cells: Vec<T>,
}

impl<T: Clone + Default> RegisterArray<T> {
    /// Allocate `size` cells initialized to `T::default()`.
    pub fn new(name: &'static str, size: usize) -> Self {
        RegisterArray {
            name,
            cells: vec![T::default(); size],
        }
    }
}

impl<T> RegisterArray<T> {
    /// Allocate `size` cells initialized to `init`.
    pub fn filled(name: &'static str, size: usize, init: T) -> Self
    where
        T: Clone,
    {
        RegisterArray {
            name,
            cells: vec![init; size],
        }
    }

    /// Declared name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True for a zero-length array.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Read cell `index`.
    ///
    /// # Panics
    /// Panics with the register name on out-of-bounds access — the
    /// equivalent P4 program would read garbage or trap; a panic surfaces
    /// the logic bug instead.
    pub fn read(&self, index: usize) -> &T {
        assert!(
            index < self.cells.len(),
            "register {}[{index}] out of bounds (len {})",
            self.name,
            self.cells.len()
        );
        &self.cells[index]
    }

    /// Write cell `index`.
    pub fn write(&mut self, index: usize, value: T) {
        assert!(
            index < self.cells.len(),
            "register {}[{index}] out of bounds (len {})",
            self.name,
            self.cells.len()
        );
        self.cells[index] = value;
    }

    /// Atomic read-modify-write of one cell; returns the updated value.
    pub fn update<R>(&mut self, index: usize, f: impl FnOnce(&mut T) -> R) -> R {
        assert!(
            index < self.cells.len(),
            "register {}[{index}] out of bounds (len {})",
            self.name,
            self.cells.len()
        );
        f(&mut self.cells[index])
    }

    /// Iterate over all cells (control-plane style bulk read).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.cells.iter()
    }

    /// Grow the array to at least `size` cells, filling with `fill`.
    /// Models the control plane re-provisioning register space when more
    /// flows appear than initially sized for.
    pub fn grow_to(&mut self, size: usize, fill: T)
    where
        T: Clone,
    {
        if size > self.cells.len() {
            self.cells.resize(size, fill);
        }
    }
}

impl<T: Clone + Default> RegisterArray<T> {
    /// Grow with default fill.
    pub fn ensure(&mut self, size: usize) {
        self.grow_to(size, T::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_initialization() {
        let r: RegisterArray<u32> = RegisterArray::new("d", 4);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert_eq!(*r.read(3), 0);
        assert_eq!(r.name(), "d");
    }

    #[test]
    fn filled_initialization() {
        let r = RegisterArray::filled("cap", 3, 10.0f64);
        assert!(r.iter().all(|&c| c == 10.0));
    }

    #[test]
    fn write_then_read() {
        let mut r: RegisterArray<u32> = RegisterArray::new("v", 2);
        r.write(1, 42);
        assert_eq!(*r.read(1), 42);
        assert_eq!(*r.read(0), 0);
    }

    #[test]
    fn read_modify_write_returns_result() {
        let mut r: RegisterArray<u32> = RegisterArray::new("ctr", 1);
        let new = r.update(0, |c| {
            *c += 1;
            *c
        });
        assert_eq!(new, 1);
        assert_eq!(*r.read(0), 1);
    }

    #[test]
    #[should_panic(expected = "register v[5] out of bounds")]
    fn out_of_bounds_read_panics() {
        let r: RegisterArray<u8> = RegisterArray::new("v", 2);
        r.read(5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_write_panics() {
        let mut r: RegisterArray<u8> = RegisterArray::new("v", 2);
        r.write(2, 1);
    }

    #[test]
    fn grow_preserves_and_fills() {
        let mut r: RegisterArray<u32> = RegisterArray::new("g", 2);
        r.write(0, 5);
        r.ensure(4);
        assert_eq!(r.len(), 4);
        assert_eq!(*r.read(0), 5);
        assert_eq!(*r.read(3), 0);
        // Shrinking is a no-op.
        r.ensure(1);
        assert_eq!(r.len(), 4);
    }
}
