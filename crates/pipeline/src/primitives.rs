//! Packet-level pipeline primitives: clone sessions and resubmission.
//!
//! The P4Update prototype "intensively uses clone to generate packets in the
//! data plane" (§2.1) — UNMs and UFMs are clones of flow packets — and uses
//! packet *resubmission* to wait in the data plane: "as the P4 data plane
//! does not natively support a timer for waiting, P4Update uses packet
//! resubmission to check repeatedly if UIM has arrived while processing UNM"
//! (Appendix B). This module models both mechanisms and counts their use so
//! the overhead ablation bench can report them.

/// A clone session: binds a session id to an output port, the BMv2
/// mechanism behind the "one-to-one port-based forwarding table used to
/// determine the clone session of a UNM" (§8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CloneSession {
    /// Session identifier (as configured by the control plane).
    pub id: u32,
    /// Egress port the cloned packet leaves through.
    pub port: u32,
}

/// Clone engine: session table plus a counter of generated clones.
#[derive(Debug, Clone, Default)]
pub struct CloneEngine {
    sessions: Vec<CloneSession>,
    clones_generated: u64,
}

impl CloneEngine {
    /// Empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Configure (or reconfigure) a session.
    pub fn configure(&mut self, session: CloneSession) {
        if let Some(s) = self.sessions.iter_mut().find(|s| s.id == session.id) {
            *s = session;
        } else {
            self.sessions.push(session);
        }
    }

    /// Resolve a session to its port and count the clone. `None` when the
    /// session was never configured (the clone is silently dropped, as on
    /// BMv2).
    pub fn clone_to(&mut self, session_id: u32) -> Option<u32> {
        let port = self
            .sessions
            .iter()
            .find(|s| s.id == session_id)
            .map(|s| s.port)?;
        self.clones_generated += 1;
        Some(port)
    }

    /// Total clones generated (overhead metric).
    pub fn clones_generated(&self) -> u64 {
        self.clones_generated
    }
}

/// Resubmission queue: packets parked in the pipeline awaiting a condition.
///
/// Real resubmission spins the packet through the pipeline; the simulation
/// parks the payload keyed by what it waits for and drains it when the
/// condition arrives, counting iterations the real switch would have spent.
#[derive(Debug, Clone)]
pub struct ResubmitQueue<K, P> {
    waiting: Vec<(K, P)>,
    resubmissions: u64,
    /// Cap on parked packets, after which new arrivals are dropped —
    /// models the finite buffer of the software switch.
    capacity: usize,
}

impl<K: PartialEq + Clone, P> ResubmitQueue<K, P> {
    /// Queue with the given buffer capacity.
    pub fn new(capacity: usize) -> Self {
        ResubmitQueue {
            waiting: Vec::new(),
            resubmissions: 0,
            capacity,
        }
    }

    /// Park a payload waiting on `key`. Returns `false` (payload dropped)
    /// when the buffer is full.
    pub fn park(&mut self, key: K, payload: P) -> bool {
        if self.waiting.len() >= self.capacity {
            return false;
        }
        self.resubmissions += 1;
        self.waiting.push((key, payload));
        true
    }

    /// Drain every payload waiting on `key`, in arrival order.
    pub fn release(&mut self, key: &K) -> Vec<P> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.waiting.len() {
            if &self.waiting[i].0 == key {
                out.push(self.waiting.remove(i).1);
            } else {
                i += 1;
            }
        }
        out
    }

    /// Number of parked payloads.
    pub fn parked(&self) -> usize {
        self.waiting.len()
    }

    /// Total park operations (overhead metric: each would have been at
    /// least one resubmission pass on BMv2).
    pub fn resubmissions(&self) -> u64 {
        self.resubmissions
    }

    /// Inspect parked keys (diagnostics).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.waiting.iter().map(|(k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_sessions_resolve_ports() {
        let mut eng = CloneEngine::new();
        eng.configure(CloneSession { id: 1, port: 7 });
        eng.configure(CloneSession { id: 2, port: 9 });
        assert_eq!(eng.clone_to(1), Some(7));
        assert_eq!(eng.clone_to(2), Some(9));
        assert_eq!(eng.clone_to(3), None);
        assert_eq!(eng.clones_generated(), 2);
    }

    #[test]
    fn clone_session_reconfiguration() {
        let mut eng = CloneEngine::new();
        eng.configure(CloneSession { id: 1, port: 7 });
        eng.configure(CloneSession { id: 1, port: 8 });
        assert_eq!(eng.clone_to(1), Some(8));
    }

    #[test]
    fn park_and_release_in_order() {
        let mut q: ResubmitQueue<u32, &str> = ResubmitQueue::new(10);
        assert!(q.park(5, "a"));
        assert!(q.park(6, "b"));
        assert!(q.park(5, "c"));
        assert_eq!(q.parked(), 3);
        assert_eq!(q.release(&5), vec!["a", "c"]);
        assert_eq!(q.parked(), 1);
        assert_eq!(q.release(&5), Vec::<&str>::new());
        assert_eq!(q.release(&6), vec!["b"]);
        assert_eq!(q.resubmissions(), 3);
    }

    #[test]
    fn full_buffer_drops() {
        let mut q: ResubmitQueue<u32, u8> = ResubmitQueue::new(2);
        assert!(q.park(1, 1));
        assert!(q.park(1, 2));
        assert!(!q.park(1, 3));
        assert_eq!(q.parked(), 2);
        assert_eq!(q.release(&1), vec![1, 2]);
    }

    #[test]
    fn keys_iterates_waiting() {
        let mut q: ResubmitQueue<u32, u8> = ResubmitQueue::new(4);
        q.park(1, 0);
        q.park(2, 0);
        let keys: Vec<u32> = q.keys().copied().collect();
        assert_eq!(keys, vec![1, 2]);
    }
}
