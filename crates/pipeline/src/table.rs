//! Match-action tables (§2.1).
//!
//! A match-action unit matches a key extracted from the packet/metadata and
//! executes the bound action with the entry's parameters. Entries are
//! installed by the control plane at runtime; a miss falls through to the
//! table's default action. P4Update uses an exact-match table keyed on the
//! flow identifier to resolve a flow's register index and forwarding port.

use std::collections::HashMap;
use std::hash::Hash;

/// Outcome of looking up a key in a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableHit<'a, A> {
    /// An entry matched; its action parameters are returned.
    Hit(&'a A),
    /// No entry matched; the default action applies.
    Miss,
}

impl<'a, A> TableHit<'a, A> {
    /// The matched parameters, if any.
    pub fn hit(self) -> Option<&'a A> {
        match self {
            TableHit::Hit(a) => Some(a),
            TableHit::Miss => None,
        }
    }
}

/// An exact-match table from key `K` to action parameters `A`, with an
/// optional capacity bound (hardware tables are finite; exceeding the bound
/// is a control-plane error surfaced as `Err`).
#[derive(Debug, Clone)]
pub struct ExactTable<K, A> {
    name: &'static str,
    entries: HashMap<K, A>,
    capacity: Option<usize>,
}

/// Error inserting a table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// The table is at capacity.
    Full,
}

impl<K: Eq + Hash, A> ExactTable<K, A> {
    /// An unbounded table.
    pub fn new(name: &'static str) -> Self {
        ExactTable {
            name,
            entries: HashMap::new(),
            capacity: None,
        }
    }

    /// A table bounded to `capacity` entries.
    pub fn with_capacity_limit(name: &'static str, capacity: usize) -> Self {
        ExactTable {
            name,
            entries: HashMap::new(),
            capacity: Some(capacity),
        }
    }

    /// Declared name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Install or replace an entry. Replacement never fails; inserting a
    /// *new* entry into a full table returns [`TableError::Full`].
    pub fn insert(&mut self, key: K, params: A) -> Result<(), TableError> {
        if let Some(cap) = self.capacity {
            if self.entries.len() >= cap && !self.entries.contains_key(&key) {
                return Err(TableError::Full);
            }
        }
        self.entries.insert(key, params);
        Ok(())
    }

    /// Remove an entry, returning its parameters if present.
    pub fn remove(&mut self, key: &K) -> Option<A> {
        self.entries.remove(key)
    }

    /// Match a key.
    pub fn lookup(&self, key: &K) -> TableHit<'_, A> {
        match self.entries.get(key) {
            Some(a) => TableHit::Hit(a),
            None => TableHit::Miss,
        }
    }

    /// Mutable access to an entry's parameters (data-plane direct state
    /// update, as registers allow but tables normally do not — used only by
    /// the control-plane side of the simulation).
    pub fn lookup_mut(&mut self, key: &K) -> Option<&mut A> {
        self.entries.get_mut(key)
    }

    /// Iterate entries in unspecified order (control-plane dump).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &A)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut t: ExactTable<u32, &str> = ExactTable::new("fwd");
        t.insert(1, "port3").unwrap();
        assert_eq!(t.lookup(&1).hit(), Some(&"port3"));
        assert_eq!(t.lookup(&2).hit(), None);
        assert_eq!(t.lookup(&2), TableHit::Miss);
        assert_eq!(t.name(), "fwd");
    }

    #[test]
    fn replacement_always_succeeds() {
        let mut t: ExactTable<u32, u8> = ExactTable::with_capacity_limit("small", 1);
        t.insert(1, 10).unwrap();
        t.insert(1, 20).unwrap();
        assert_eq!(t.lookup(&1).hit(), Some(&20));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn capacity_bound_is_enforced() {
        let mut t: ExactTable<u32, u8> = ExactTable::with_capacity_limit("small", 2);
        t.insert(1, 1).unwrap();
        t.insert(2, 2).unwrap();
        assert_eq!(t.insert(3, 3), Err(TableError::Full));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_frees_capacity() {
        let mut t: ExactTable<u32, u8> = ExactTable::with_capacity_limit("small", 1);
        t.insert(1, 1).unwrap();
        assert_eq!(t.remove(&1), Some(1));
        assert_eq!(t.remove(&1), None);
        assert!(t.is_empty());
        t.insert(2, 2).unwrap();
        assert_eq!(t.lookup(&2).hit(), Some(&2));
    }

    #[test]
    fn lookup_mut_edits_in_place() {
        let mut t: ExactTable<u32, u8> = ExactTable::new("m");
        t.insert(1, 1).unwrap();
        *t.lookup_mut(&1).unwrap() = 9;
        assert_eq!(t.lookup(&1).hit(), Some(&9));
        assert!(t.lookup_mut(&7).is_none());
    }

    #[test]
    fn iteration_sees_all_entries() {
        let mut t: ExactTable<u32, u8> = ExactTable::new("it");
        for i in 0..5 {
            t.insert(i, i as u8).unwrap();
        }
        let mut keys: Vec<u32> = t.iter().map(|(&k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
    }
}
