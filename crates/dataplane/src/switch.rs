//! The switch chassis: owns the per-switch state, forwards data packets by
//! the active UIB rules, and dispatches control messages to the plugged-in
//! update logic.
//!
//! Data-packet forwarding is identical for every system under test — only
//! the control-message handling differs — so it lives here, outside the
//! pluggable logic.

use crate::logic::{DropReason, Effect, Endpoint, SwitchLogic};
use crate::state::SwitchState;
use p4update_des::SimTime;
use p4update_messages::{DataPacket, Frm, Message};
use p4update_net::{FlowId, NodeId, Topology};

/// A switch: state plus protocol logic.
pub struct Switch {
    /// Runtime state (UIB, capacities, counters).
    pub state: SwitchState,
    logic: Box<dyn SwitchLogic + Send>,
    /// FRMs already emitted, to report each new flow once.
    reported_flows: Vec<FlowId>,
    /// Two-phase-commit mode (§11): the ingress stamps each injected
    /// packet with its applied configuration version, and forwarding
    /// honors tags (tagged packets follow exactly one rule generation).
    stamp_tags: bool,
}

impl Switch {
    /// Build a switch for node `id` with the given protocol logic.
    pub fn new(id: NodeId, topo: &Topology, logic: Box<dyn SwitchLogic + Send>) -> Self {
        Switch {
            state: SwitchState::new(id, topo),
            logic,
            reported_flows: Vec::new(),
            stamp_tags: false,
        }
    }

    /// Enable the §11 two-phase-commit mode on this switch.
    pub fn enable_two_phase_commit(&mut self) {
        self.stamp_tags = true;
    }

    /// This switch's node id.
    pub fn id(&self) -> NodeId {
        self.state.id
    }

    /// A message arrived (from a neighbor switch or the controller).
    pub fn handle_message(&mut self, now: SimTime, from: Endpoint, msg: Message) -> Vec<Effect> {
        let mut out = Vec::new();
        self.handle_message_into(now, from, msg, &mut out);
        out
    }

    /// [`Self::handle_message`] writing into a caller-owned buffer — the
    /// simulator reuses one scratch `Vec` across every event so the hot
    /// loop never allocates.
    pub fn handle_message_into(
        &mut self,
        now: SimTime,
        from: Endpoint,
        msg: Message,
        out: &mut Vec<Effect>,
    ) {
        self.state.pipeline_passes += 1;
        match msg {
            Message::Data(pkt) => self.forward_data(pkt, out),
            other => self
                .logic
                .on_control(now, &mut self.state, from, other, out),
        }
    }

    /// Messages parked in this switch's pipeline (resubmission load).
    pub fn parked_messages(&self) -> usize {
        self.logic.parked_messages()
    }

    /// Diagnostic summary of the plugged-in logic.
    pub fn debug_summary(&self) -> String {
        self.logic.debug_summary()
    }

    /// A rule installation completed.
    pub fn handle_installed(&mut self, now: SimTime, flow: FlowId, token: u64) -> Vec<Effect> {
        let mut out = Vec::new();
        self.handle_installed_into(now, flow, token, &mut out);
        out
    }

    /// [`Self::handle_installed`] writing into a caller-owned buffer.
    pub fn handle_installed_into(
        &mut self,
        now: SimTime,
        flow: FlowId,
        token: u64,
        out: &mut Vec<Effect>,
    ) {
        self.state.pipeline_passes += 1;
        self.logic
            .on_installed(now, &mut self.state, flow, token, out);
    }

    /// A data packet enters the network at this switch (host-facing port).
    /// Unknown flows are reported to the controller via FRM — the ingress
    /// clones the first packet and stamps the flow id (Appendix B) — and the
    /// packet itself blackholes until rules exist.
    pub fn inject_packet(
        &mut self,
        now: SimTime,
        pkt: DataPacket,
        egress_hint: NodeId,
    ) -> Vec<Effect> {
        let mut out = Vec::new();
        self.inject_packet_into(now, pkt, egress_hint, &mut out);
        out
    }

    /// [`Self::inject_packet`] writing into a caller-owned buffer.
    pub fn inject_packet_into(
        &mut self,
        _now: SimTime,
        mut pkt: DataPacket,
        egress_hint: NodeId,
        out: &mut Vec<Effect>,
    ) {
        self.state.pipeline_passes += 1;
        let entry = self.state.uib.read(pkt.flow);
        if self.stamp_tags && pkt.tag.is_none() && entry.has_active_rule() {
            // Two-phase commit: stamp with the ingress's applied version;
            // the whole path then forwards by that one generation.
            pkt.tag = Some(entry.applied_version);
        }
        if !entry.has_active_rule() && !self.reported_flows.contains(&pkt.flow) {
            self.reported_flows.push(pkt.flow);
            out.push(Effect::SendController {
                msg: Message::Frm(Frm {
                    flow: pkt.flow,
                    ingress: self.state.id,
                    egress: egress_hint,
                }),
            });
        }
        self.forward_data(pkt, out);
    }

    /// Forward a data packet: deliver at egress, drop on missing rule
    /// (blackhole) or exhausted TTL. Tagged packets (two-phase commit,
    /// §11) forward by the rule generation matching their stamp: the
    /// active rule for the current version, the saved previous generation
    /// for the version before it.
    fn forward_data(&mut self, pkt: DataPacket, out: &mut Vec<Effect>) {
        let entry = self.state.uib.read(pkt.flow);
        if !entry.has_active_rule() {
            out.push(Effect::PacketDropped {
                pkt,
                reason: DropReason::NoRule,
            });
            return;
        }
        let next_hop = match pkt.tag {
            Some(v) if v < entry.applied_version => {
                // Only the immediately previous generation is kept; rules
                // of older generations were overwritten and cannot be
                // served consistently.
                if entry.prev_version > p4update_net::Version::NONE && v == entry.prev_version {
                    entry.prev_next_hop
                } else {
                    out.push(Effect::PacketDropped {
                        pkt,
                        reason: DropReason::NoRule,
                    });
                    return;
                }
            }
            _ => entry.active_next_hop,
        };
        match next_hop {
            None => out.push(Effect::PacketDelivered { pkt }),
            Some(next) => {
                if pkt.ttl == 0 {
                    out.push(Effect::PacketDropped {
                        pkt,
                        reason: DropReason::TtlExpired,
                    });
                } else {
                    out.push(Effect::ForwardData {
                        to: next,
                        pkt: DataPacket {
                            ttl: pkt.ttl - 1,
                            ..pkt
                        },
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4update_des::SimDuration;
    use p4update_net::{TopologyBuilder, Version};

    /// Logic that does nothing — forwarding behavior is chassis-only.
    struct NullLogic;
    impl SwitchLogic for NullLogic {
        fn on_control(
            &mut self,
            _now: SimTime,
            _state: &mut SwitchState,
            _from: Endpoint,
            _msg: Message,
            _out: &mut Vec<Effect>,
        ) {
        }
        fn on_installed(
            &mut self,
            _now: SimTime,
            _state: &mut SwitchState,
            _flow: FlowId,
            _token: u64,
            _out: &mut Vec<Effect>,
        ) {
        }
    }

    fn line3() -> Topology {
        let mut b = TopologyBuilder::new("l3");
        let v: Vec<_> = (0..3).map(|i| b.add_node(format!("n{i}"))).collect();
        b.add_link(v[0], v[1], SimDuration::from_millis(1), 10.0);
        b.add_link(v[1], v[2], SimDuration::from_millis(1), 10.0);
        b.build()
    }

    fn sw(topo: &Topology, id: u32) -> Switch {
        Switch::new(NodeId(id), topo, Box::new(NullLogic))
    }

    fn pkt(flow: u32, ttl: u8) -> DataPacket {
        DataPacket {
            flow: FlowId(flow),
            seq: 0,
            ttl,
            tag: None,
        }
    }

    #[test]
    fn unknown_flow_blackholes() {
        let t = line3();
        let mut s = sw(&t, 1);
        let effects = s.handle_message(
            SimTime::ZERO,
            Endpoint::Switch(NodeId(0)),
            Message::Data(pkt(5, 64)),
        );
        assert_eq!(
            effects,
            vec![Effect::PacketDropped {
                pkt: pkt(5, 64),
                reason: DropReason::NoRule
            }]
        );
    }

    #[test]
    fn active_rule_forwards_and_decrements_ttl() {
        let t = line3();
        let mut s = sw(&t, 1);
        s.state.uib.update(FlowId(5), |e| {
            e.applied_version = Version(1);
            e.active_next_hop = Some(NodeId(2));
        });
        let effects = s.handle_message(
            SimTime::ZERO,
            Endpoint::Switch(NodeId(0)),
            Message::Data(pkt(5, 64)),
        );
        assert_eq!(
            effects,
            vec![Effect::ForwardData {
                to: NodeId(2),
                pkt: pkt(5, 63)
            }]
        );
    }

    #[test]
    fn ttl_zero_drops() {
        let t = line3();
        let mut s = sw(&t, 1);
        s.state.uib.update(FlowId(5), |e| {
            e.applied_version = Version(1);
            e.active_next_hop = Some(NodeId(2));
        });
        let effects = s.handle_message(
            SimTime::ZERO,
            Endpoint::Switch(NodeId(0)),
            Message::Data(pkt(5, 0)),
        );
        assert_eq!(
            effects,
            vec![Effect::PacketDropped {
                pkt: pkt(5, 0),
                reason: DropReason::TtlExpired
            }]
        );
    }

    #[test]
    fn egress_delivers() {
        let t = line3();
        let mut s = sw(&t, 2);
        s.state.uib.update(FlowId(5), |e| {
            e.applied_version = Version(1);
            e.active_next_hop = None;
        });
        let effects = s.handle_message(
            SimTime::ZERO,
            Endpoint::Switch(NodeId(1)),
            Message::Data(pkt(5, 60)),
        );
        assert_eq!(effects, vec![Effect::PacketDelivered { pkt: pkt(5, 60) }]);
    }

    #[test]
    fn injection_of_unknown_flow_reports_once() {
        let t = line3();
        let mut s = sw(&t, 0);
        let effects = s.inject_packet(SimTime::ZERO, pkt(9, 64), NodeId(2));
        assert_eq!(effects.len(), 2);
        assert!(
            matches!(effects[0], Effect::SendController { msg: Message::Frm(f) } if f.flow == FlowId(9) && f.ingress == NodeId(0) && f.egress == NodeId(2))
        );
        assert!(matches!(
            effects[1],
            Effect::PacketDropped {
                reason: DropReason::NoRule,
                ..
            }
        ));
        // Second injection: no new FRM.
        let effects = s.inject_packet(SimTime::ZERO, pkt(9, 64), NodeId(2));
        assert_eq!(effects.len(), 1);
    }

    #[test]
    fn injection_with_rule_forwards_without_frm() {
        let t = line3();
        let mut s = sw(&t, 0);
        s.state.uib.update(FlowId(9), |e| {
            e.applied_version = Version(1);
            e.active_next_hop = Some(NodeId(1));
        });
        let effects = s.inject_packet(SimTime::ZERO, pkt(9, 64), NodeId(2));
        assert_eq!(
            effects,
            vec![Effect::ForwardData {
                to: NodeId(1),
                pkt: pkt(9, 63)
            }]
        );
    }

    #[test]
    fn pipeline_passes_are_counted() {
        let t = line3();
        let mut s = sw(&t, 0);
        s.handle_message(
            SimTime::ZERO,
            Endpoint::Controller,
            Message::Data(pkt(1, 1)),
        );
        s.handle_installed(SimTime::ZERO, FlowId(1), 0);
        assert_eq!(s.state.pipeline_passes, 2);
    }
}
