//! The Update Information Base (UIB): the per-flow register file of the
//! P4Update data plane (§6, Table 1 / Appendix B).
//!
//! Every field of the paper's Table 1 is a separate [`RegisterArray`]
//! indexed by the flow's register index, which an exact-match table maps
//! flow identifiers to — the same structure the P4 program uses ("the
//! distance, version number, and other helping variables are defined
//! per-flow and indexed by the flow ID", §10).
//!
//! Register groups (the paper's Table 1 plus the "other helping variables"
//! §10 mentions):
//!
//! - **staged** (`new_version`, `new_distance`, `egress_port_updated`, and
//!   the clone-session port): the labels of the highest UIM received, not
//!   yet active;
//! - **applied** (`V_n(v)`, `D_n(v)` in Algorithm 2, `egress_port`): the
//!   configuration data packets currently follow;
//! - **inheritance** (`old_version`, `old_distance` — `V_o(v)`, `D_o(v)`):
//!   the dual-layer gating layer. Single-layer flips copy the applied
//!   values here ("the old_distance and old_version will also be updated to
//!   the corresponding value in new_distance and new_version", Appendix B);
//!   dual-layer updates *inherit* downstream old distances instead, which
//!   is the loop-freedom invariant of §3.2.

use p4update_messages::UpdateKind;
use p4update_net::{FlowId, NodeId, Version};
use p4update_pipeline::{ExactTable, RegisterArray};

/// Congestion priority of a flow at this switch (§7.4): flows that must
/// move away from a contended link are raised to high priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowPriority {
    /// Default priority.
    #[default]
    Low,
    /// The flow's move frees capacity another flow is waiting for.
    High,
}

/// A consistent snapshot of one flow's UIB registers at one switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UibEntry {
    // --- staged from the highest UIM ---
    /// `new_version`: version of the highest UIM received.
    pub uim_version: Version,
    /// `new_distance`: this node's `D_n` label in that UIM.
    pub uim_distance: u32,
    /// `egress_port_updated`: staged next hop (`None` = terminate here).
    pub staged_next_hop: Option<NodeId>,
    /// Staged upstream neighbor (UNM clone-session port).
    pub staged_upstream: Option<NodeId>,
    /// Mechanism announced by the UIM.
    pub uim_kind: Option<UpdateKind>,
    // --- applied configuration ---
    /// `V_n(v)`: version of the last accepted configuration
    /// (`Version::NONE` when the switch holds no rule for the flow).
    pub applied_version: Version,
    /// `D_n(v)`: distance of the last accepted configuration.
    pub applied_distance: u32,
    /// `egress_port`: the active next hop data packets follow.
    pub active_next_hop: Option<NodeId>,
    /// Active upstream neighbor.
    pub active_upstream: Option<NodeId>,
    // --- inheritance layer (dual-layer gating) ---
    /// `V_o(v)`.
    pub old_version: Version,
    /// `D_o(v)` — the "segment ID" of §3.2's intuition.
    pub old_distance: u32,
    // --- previous generation (two-phase commit, §11) ---
    /// Version of the configuration that was active before the last flip;
    /// packets tagged with it still forward by its rule.
    pub prev_version: Version,
    /// Next hop of the previous generation (`None` = terminated here).
    pub prev_next_hop: Option<NodeId>,
    // --- misc ---
    /// Immutable flow size bound for local capacity checks.
    pub flow_size: f64,
    /// Dynamic congestion priority.
    pub priority: FlowPriority,
    /// `t`: mechanism of the last applied update.
    pub last_update_type: Option<UpdateKind>,
    /// Hop counter for dual-layer symmetry breaking (Alg. 2).
    pub counter: u32,
}

impl Default for UibEntry {
    fn default() -> Self {
        UibEntry {
            uim_version: Version::NONE,
            uim_distance: u32::MAX,
            staged_next_hop: None,
            staged_upstream: None,
            uim_kind: None,
            applied_version: Version::NONE,
            applied_distance: u32::MAX,
            active_next_hop: None,
            active_upstream: None,
            old_version: Version::NONE,
            old_distance: u32::MAX,
            prev_version: Version::NONE,
            prev_next_hop: None,
            flow_size: 0.0,
            priority: FlowPriority::Low,
            last_update_type: None,
            counter: 0,
        }
    }
}

impl UibEntry {
    /// True when the switch holds an active forwarding or terminating rule
    /// for the flow.
    pub fn has_active_rule(&self) -> bool {
        self.applied_version > Version::NONE
    }

    /// True when the active rule terminates the flow here (egress role).
    pub fn is_egress(&self) -> bool {
        self.has_active_rule() && self.active_next_hop.is_none()
    }

    /// Apply the staged configuration as a **single-layer** flip: the
    /// staged labels become the applied configuration, and the inheritance
    /// layer is reset to the applied values (Appendix B).
    pub fn apply_single(&mut self) {
        self.save_previous_generation();
        self.applied_version = self.uim_version;
        self.applied_distance = self.uim_distance;
        self.active_next_hop = self.staged_next_hop;
        self.active_upstream = self.staged_upstream;
        self.old_version = self.uim_version;
        self.old_distance = self.uim_distance;
        self.last_update_type = Some(UpdateKind::Single);
        self.counter = 0;
    }

    /// Keep the outgoing rule of the configuration being replaced, so
    /// packets stamped with its version under the two-phase-commit mode
    /// (§11) still follow it.
    fn save_previous_generation(&mut self) {
        if self.has_active_rule() {
            self.prev_version = self.applied_version;
            self.prev_next_hop = self.active_next_hop;
        }
    }

    /// Apply the staged configuration as a **dual-layer** flip, inheriting
    /// the sender's old distance/version from the verified UNM
    /// (Alg. 2 lines 11–16 and 20–23).
    pub fn apply_dual(
        &mut self,
        inherited_old_version: Version,
        inherited_old_distance: u32,
        counter: u32,
    ) {
        self.save_previous_generation();
        self.applied_version = self.uim_version;
        self.applied_distance = self.uim_distance;
        self.active_next_hop = self.staged_next_hop;
        self.active_upstream = self.staged_upstream;
        self.old_version = inherited_old_version;
        self.old_distance = inherited_old_distance;
        self.last_update_type = Some(UpdateKind::Dual);
        self.counter = counter;
    }
}

const INITIAL_FLOWS: usize = 64;

/// The full UIB: one register array per field plus the flow-index table,
/// wrapped in entry-level read/write.
#[derive(Debug, Clone)]
pub struct Uib {
    index: ExactTable<FlowId, usize>,
    next_slot: usize,
    new_version: RegisterArray<Version>,
    new_distance: RegisterArray<u32>,
    egress_port_updated: RegisterArray<Option<NodeId>>,
    staged_upstream: RegisterArray<Option<NodeId>>,
    uim_kind: RegisterArray<Option<UpdateKind>>,
    applied_version: RegisterArray<Version>,
    applied_distance: RegisterArray<u32>,
    egress_port: RegisterArray<Option<NodeId>>,
    active_upstream: RegisterArray<Option<NodeId>>,
    old_version: RegisterArray<Version>,
    old_distance: RegisterArray<u32>,
    prev_version: RegisterArray<Version>,
    prev_next_hop: RegisterArray<Option<NodeId>>,
    flow_size: RegisterArray<f64>,
    flow_priority: RegisterArray<FlowPriority>,
    last_update_type: RegisterArray<Option<UpdateKind>>,
    counter: RegisterArray<u32>,
}

impl Default for Uib {
    fn default() -> Self {
        Self::new()
    }
}

impl Uib {
    /// Fresh UIB with the default register sizing.
    pub fn new() -> Self {
        Uib {
            index: ExactTable::new("flow_index"),
            next_slot: 0,
            new_version: RegisterArray::new("new_version", INITIAL_FLOWS),
            new_distance: RegisterArray::filled("new_distance", INITIAL_FLOWS, u32::MAX),
            egress_port_updated: RegisterArray::new("egress_port_updated", INITIAL_FLOWS),
            staged_upstream: RegisterArray::new("staged_upstream", INITIAL_FLOWS),
            uim_kind: RegisterArray::new("uim_kind", INITIAL_FLOWS),
            applied_version: RegisterArray::new("applied_version", INITIAL_FLOWS),
            applied_distance: RegisterArray::filled("applied_distance", INITIAL_FLOWS, u32::MAX),
            egress_port: RegisterArray::new("egress_port", INITIAL_FLOWS),
            active_upstream: RegisterArray::new("active_upstream", INITIAL_FLOWS),
            old_version: RegisterArray::new("old_version", INITIAL_FLOWS),
            old_distance: RegisterArray::filled("old_distance", INITIAL_FLOWS, u32::MAX),
            prev_version: RegisterArray::new("prev_version", INITIAL_FLOWS),
            prev_next_hop: RegisterArray::new("prev_next_hop", INITIAL_FLOWS),
            flow_size: RegisterArray::new("flow_size", INITIAL_FLOWS),
            flow_priority: RegisterArray::new("flow_priority", INITIAL_FLOWS),
            last_update_type: RegisterArray::new("t", INITIAL_FLOWS),
            counter: RegisterArray::new("counter", INITIAL_FLOWS),
        }
    }

    /// The register index of a flow, allocating one on first use (the P4
    /// program computes this by hashing; the model allocates densely).
    fn slot(&mut self, flow: FlowId) -> usize {
        if let Some(&i) = self.index.lookup(&flow).hit() {
            return i;
        }
        let i = self.next_slot;
        self.next_slot += 1;
        self.index
            .insert(flow, i)
            .expect("flow index table is unbounded");
        self.grow(i + 1);
        i
    }

    fn grow(&mut self, size: usize) {
        self.new_version.ensure(size);
        self.new_distance.grow_to(size, u32::MAX);
        self.egress_port_updated.ensure(size);
        self.staged_upstream.ensure(size);
        self.uim_kind.ensure(size);
        self.applied_version.ensure(size);
        self.applied_distance.grow_to(size, u32::MAX);
        self.egress_port.ensure(size);
        self.active_upstream.ensure(size);
        self.old_version.ensure(size);
        self.old_distance.grow_to(size, u32::MAX);
        self.prev_version.ensure(size);
        self.prev_next_hop.ensure(size);
        self.flow_size.ensure(size);
        self.flow_priority.ensure(size);
        self.last_update_type.ensure(size);
        self.counter.ensure(size);
    }

    /// True when the flow has ever been seen at this switch.
    pub fn knows(&self, flow: FlowId) -> bool {
        self.index.lookup(&flow).hit().is_some()
    }

    /// Snapshot a flow's registers ([`UibEntry::default`] for unknown
    /// flows, matching uninitialized register contents).
    pub fn read(&self, flow: FlowId) -> UibEntry {
        let Some(&i) = self.index.lookup(&flow).hit() else {
            return UibEntry::default();
        };
        UibEntry {
            uim_version: *self.new_version.read(i),
            uim_distance: *self.new_distance.read(i),
            staged_next_hop: *self.egress_port_updated.read(i),
            staged_upstream: *self.staged_upstream.read(i),
            uim_kind: *self.uim_kind.read(i),
            applied_version: *self.applied_version.read(i),
            applied_distance: *self.applied_distance.read(i),
            active_next_hop: *self.egress_port.read(i),
            active_upstream: *self.active_upstream.read(i),
            old_version: *self.old_version.read(i),
            old_distance: *self.old_distance.read(i),
            prev_version: *self.prev_version.read(i),
            prev_next_hop: *self.prev_next_hop.read(i),
            flow_size: *self.flow_size.read(i),
            priority: *self.flow_priority.read(i),
            last_update_type: *self.last_update_type.read(i),
            counter: *self.counter.read(i),
        }
    }

    /// Write a flow's registers wholesale.
    pub fn write(&mut self, flow: FlowId, e: UibEntry) {
        let i = self.slot(flow);
        self.new_version.write(i, e.uim_version);
        self.new_distance.write(i, e.uim_distance);
        self.egress_port_updated.write(i, e.staged_next_hop);
        self.staged_upstream.write(i, e.staged_upstream);
        self.uim_kind.write(i, e.uim_kind);
        self.applied_version.write(i, e.applied_version);
        self.applied_distance.write(i, e.applied_distance);
        self.egress_port.write(i, e.active_next_hop);
        self.active_upstream.write(i, e.active_upstream);
        self.old_version.write(i, e.old_version);
        self.old_distance.write(i, e.old_distance);
        self.prev_version.write(i, e.prev_version);
        self.prev_next_hop.write(i, e.prev_next_hop);
        self.flow_size.write(i, e.flow_size);
        self.flow_priority.write(i, e.priority);
        self.last_update_type.write(i, e.last_update_type);
        self.counter.write(i, e.counter);
    }

    /// Read-modify-write a flow's registers.
    pub fn update<R>(&mut self, flow: FlowId, f: impl FnOnce(&mut UibEntry) -> R) -> R {
        let mut e = self.read(flow);
        let r = f(&mut e);
        self.write(flow, e);
        r
    }

    /// The active next hop data packets follow, if an active rule exists.
    pub fn active_next_hop(&self, flow: FlowId) -> Option<NodeId> {
        self.read(flow).active_next_hop
    }

    /// All flows with allocated slots, sorted.
    pub fn flows(&self) -> Vec<FlowId> {
        let mut v: Vec<FlowId> = self.index.iter().map(|(&f, _)| f).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_flow_reads_default() {
        let uib = Uib::new();
        let e = uib.read(FlowId(7));
        assert_eq!(e, UibEntry::default());
        assert!(!e.has_active_rule());
        assert!(!e.is_egress());
        assert!(!uib.knows(FlowId(7)));
    }

    #[test]
    fn write_read_roundtrip() {
        let mut uib = Uib::new();
        let entry = UibEntry {
            uim_version: Version(2),
            uim_distance: 3,
            staged_next_hop: Some(NodeId(4)),
            staged_upstream: Some(NodeId(1)),
            uim_kind: Some(UpdateKind::Dual),
            applied_version: Version(1),
            applied_distance: 2,
            active_next_hop: Some(NodeId(5)),
            active_upstream: None,
            old_version: Version(1),
            old_distance: 2,
            prev_version: Version(1),
            prev_next_hop: Some(NodeId(6)),
            flow_size: 1.5,
            priority: FlowPriority::High,
            last_update_type: Some(UpdateKind::Single),
            counter: 9,
        };
        uib.write(FlowId(3), entry);
        assert_eq!(uib.read(FlowId(3)), entry);
        assert!(uib.knows(FlowId(3)));
        assert_eq!(uib.active_next_hop(FlowId(3)), Some(NodeId(5)));
    }

    #[test]
    fn egress_role_detection() {
        let mut uib = Uib::new();
        uib.update(FlowId(0), |e| {
            e.applied_version = Version(1);
            e.active_next_hop = None;
        });
        assert!(uib.read(FlowId(0)).is_egress());
        uib.update(FlowId(0), |e| e.active_next_hop = Some(NodeId(2)));
        assert!(!uib.read(FlowId(0)).is_egress());
        assert!(uib.read(FlowId(0)).has_active_rule());
    }

    #[test]
    fn apply_single_resets_inheritance_layer() {
        let mut e = UibEntry {
            uim_version: Version(3),
            uim_distance: 4,
            staged_next_hop: Some(NodeId(9)),
            staged_upstream: Some(NodeId(8)),
            old_version: Version(1),
            old_distance: 0, // inherited by a past dual-layer run
            last_update_type: Some(UpdateKind::Dual),
            counter: 5,
            ..UibEntry::default()
        };
        e.apply_single();
        assert_eq!(e.applied_version, Version(3));
        assert_eq!(e.applied_distance, 4);
        assert_eq!(e.active_next_hop, Some(NodeId(9)));
        assert_eq!(e.active_upstream, Some(NodeId(8)));
        // Appendix B: old_* take the new values at a single-layer flip.
        assert_eq!(e.old_version, Version(3));
        assert_eq!(e.old_distance, 4);
        assert_eq!(e.last_update_type, Some(UpdateKind::Single));
        assert_eq!(e.counter, 0);
    }

    #[test]
    fn apply_dual_inherits_old_distance() {
        let mut e = UibEntry {
            uim_version: Version(2),
            uim_distance: 5,
            staged_next_hop: Some(NodeId(3)),
            old_version: Version(1),
            old_distance: 1,
            ..UibEntry::default()
        };
        e.apply_dual(Version(1), 0, 4);
        assert_eq!(e.applied_version, Version(2));
        assert_eq!(e.applied_distance, 5);
        // Inheritance layer takes the UNM's values, not the staged ones.
        assert_eq!(e.old_version, Version(1));
        assert_eq!(e.old_distance, 0);
        assert_eq!(e.counter, 4);
        assert_eq!(e.last_update_type, Some(UpdateKind::Dual));
    }

    #[test]
    fn update_closure_result_propagates() {
        let mut uib = Uib::new();
        let was_known = uib.update(FlowId(1), |e| {
            let known = e.has_active_rule();
            e.applied_version = Version(1);
            known
        });
        assert!(!was_known);
        assert!(uib.read(FlowId(1)).has_active_rule());
    }

    #[test]
    fn registers_grow_past_initial_sizing() {
        let mut uib = Uib::new();
        for i in 0..200 {
            uib.update(FlowId(i), |e| e.uim_distance = i);
        }
        assert_eq!(uib.read(FlowId(150)).uim_distance, 150);
        assert_eq!(uib.flows().len(), 200);
    }

    #[test]
    fn flows_are_sorted() {
        let mut uib = Uib::new();
        for i in [5u32, 1, 3] {
            uib.update(FlowId(i), |_| ());
        }
        assert_eq!(uib.flows(), vec![FlowId(1), FlowId(3), FlowId(5)]);
    }
}
