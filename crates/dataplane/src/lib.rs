//! # p4update-dataplane
//!
//! The BMv2-like switch model the reproduction runs on:
//!
//! - [`Uib`] / [`UibEntry`]: the Update Information Base — the per-flow
//!   register file of Table 1, built from `p4update-pipeline` register
//!   arrays and an exact-match flow-index table.
//! - [`SwitchState`]: UIB plus outgoing-link capacity accounting (the local
//!   knowledge the congestion scheduler of §7.4 relies on).
//! - [`Switch`]: the chassis — forwards data packets by the active rules
//!   (shared across all systems under test) and dispatches control traffic
//!   to a pluggable [`SwitchLogic`].
//! - [`SwitchLogic`] / [`ControllerLogic`]: the interface each system
//!   (P4Update, ez-Segway, Central) implements; all timing is applied by
//!   the harness to the returned [`Effect`]s, so protocol differences are
//!   the only source of measured performance differences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod logic;
mod state;
mod switch;
mod uib;

pub use logic::{ControllerLogic, CtrlEffect, DropReason, Effect, Endpoint, SwitchLogic};
pub use state::SwitchState;
pub use switch::Switch;
pub use uib::{FlowPriority, Uib, UibEntry};
