//! Per-switch runtime state: UIB registers, outgoing-link capacity
//! accounting, and pipeline overhead counters.

use crate::uib::Uib;
use p4update_net::{NodeId, Topology};
use std::collections::BTreeMap;

/// The mutable state of one switch, shared between the chassis (data-packet
//  forwarding) and the pluggable update logic.
#[derive(Debug, Clone)]
pub struct SwitchState {
    /// This switch's identity.
    pub id: NodeId,
    /// The per-flow register file.
    pub uib: Uib,
    /// Remaining capacity on each outgoing directed link `(self → neighbor)`
    /// in flow-size units. The sending endpoint exclusively controls its
    /// direction, which is what makes the paper's local congestion
    /// scheduling sound (§7.4).
    capacity: BTreeMap<NodeId, f64>,
    /// Pipeline passes executed (overhead metric; each message handled is
    /// at least one pass, resubmissions add more).
    pub pipeline_passes: u64,
}

impl SwitchState {
    /// State for switch `id` in `topo`, with full capacity on every
    /// outgoing link.
    pub fn new(id: NodeId, topo: &Topology) -> Self {
        let capacity = topo
            .neighbors(id)
            .iter()
            .map(|&(n, l)| (n, topo.link(l).capacity))
            .collect();
        SwitchState {
            id,
            uib: Uib::new(),
            capacity,
            pipeline_passes: 0,
        }
    }

    /// Remaining capacity toward `neighbor` (`None` if not adjacent).
    pub fn remaining_capacity(&self, neighbor: NodeId) -> Option<f64> {
        self.capacity.get(&neighbor).copied()
    }

    /// Whether `size` units fit on the link toward `neighbor`. Non-adjacent
    /// targets never fit.
    pub fn capacity_suffices(&self, neighbor: NodeId, size: f64) -> bool {
        self.remaining_capacity(neighbor)
            .is_some_and(|c| c + 1e-9 >= size)
    }

    /// Reserve `size` units toward `neighbor`. Returns `false` (and
    /// reserves nothing) when capacity is insufficient.
    pub fn reserve_capacity(&mut self, neighbor: NodeId, size: f64) -> bool {
        match self.capacity.get_mut(&neighbor) {
            Some(c) if *c + 1e-9 >= size => {
                *c -= size;
                true
            }
            _ => false,
        }
    }

    /// Release `size` units toward `neighbor` (no-op for non-neighbors).
    /// Clamps at the link's nominal capacity is deliberately *not* applied:
    /// releases must balance reserves, and over-release indicates a logic
    /// bug that the consistency checker will flag.
    pub fn release_capacity(&mut self, neighbor: NodeId, size: f64) {
        if let Some(c) = self.capacity.get_mut(&neighbor) {
            *c += size;
        }
    }

    /// Neighbors with tracked capacity (the switch's ports).
    pub fn neighbors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.capacity.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4update_des::SimDuration;
    use p4update_net::TopologyBuilder;

    fn line3() -> Topology {
        let mut b = TopologyBuilder::new("l3");
        let v: Vec<_> = (0..3).map(|i| b.add_node(format!("n{i}"))).collect();
        b.add_link(v[0], v[1], SimDuration::from_millis(1), 10.0);
        b.add_link(v[1], v[2], SimDuration::from_millis(1), 4.0);
        b.build()
    }

    #[test]
    fn capacity_initialized_from_topology() {
        let t = line3();
        let s = SwitchState::new(NodeId(1), &t);
        assert_eq!(s.remaining_capacity(NodeId(0)), Some(10.0));
        assert_eq!(s.remaining_capacity(NodeId(2)), Some(4.0));
        assert_eq!(s.remaining_capacity(NodeId(1)), None);
        assert_eq!(
            s.neighbors().collect::<Vec<_>>(),
            vec![NodeId(0), NodeId(2)]
        );
    }

    #[test]
    fn reserve_and_release() {
        let t = line3();
        let mut s = SwitchState::new(NodeId(1), &t);
        assert!(s.reserve_capacity(NodeId(2), 3.0));
        assert_eq!(s.remaining_capacity(NodeId(2)), Some(1.0));
        assert!(!s.reserve_capacity(NodeId(2), 2.0));
        assert_eq!(s.remaining_capacity(NodeId(2)), Some(1.0));
        s.release_capacity(NodeId(2), 3.0);
        assert_eq!(s.remaining_capacity(NodeId(2)), Some(4.0));
    }

    #[test]
    fn capacity_check_tolerates_float_noise() {
        let t = line3();
        let mut s = SwitchState::new(NodeId(1), &t);
        assert!(s.reserve_capacity(NodeId(2), 4.0));
        assert!(s.capacity_suffices(NodeId(2), 0.0));
        assert!(!s.capacity_suffices(NodeId(2), 0.1));
    }

    #[test]
    fn exact_fill_is_allowed() {
        let t = line3();
        let mut s = SwitchState::new(NodeId(0), &t);
        assert!(s.capacity_suffices(NodeId(1), 10.0));
        assert!(s.reserve_capacity(NodeId(1), 10.0));
        assert!(!s.reserve_capacity(NodeId(1), 0.5));
    }

    #[test]
    fn non_neighbor_operations_are_safe() {
        let t = line3();
        let mut s = SwitchState::new(NodeId(0), &t);
        assert!(!s.capacity_suffices(NodeId(2), 0.1));
        assert!(!s.reserve_capacity(NodeId(2), 1.0));
        s.release_capacity(NodeId(2), 1.0); // no-op
        assert_eq!(s.remaining_capacity(NodeId(2)), None);
    }
}
