//! The pluggable update-logic interface.
//!
//! Every system the evaluation compares — P4Update (SL and DL), ez-Segway,
//! and Central — is a [`SwitchLogic`] implementation on the switch side and
//! a [`ControllerLogic`] implementation on the controller side. The chassis
//! and the simulation harness are shared, so differences in measured update
//! time come from the protocols themselves, not the substrate.

use crate::state::SwitchState;
use p4update_des::SimTime;
use p4update_messages::{DataPacket, Message, RejectReason};
use p4update_net::{FlowId, FlowUpdate, NodeId, Version};

/// Where a message came from / goes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Another switch.
    Switch(NodeId),
    /// The controller.
    Controller,
}

/// Why a data packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// TTL reached zero (the Fig. 2 loop-death mechanism).
    TtlExpired,
    /// No matching forwarding rule: a blackhole.
    NoRule,
}

/// An action requested by switch logic, executed (and timed) by the
/// harness.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Send a message to another switch. Adjacent targets take one link
    /// hop; non-adjacent targets are routed along the latency-shortest
    /// path (in-band multi-hop control traffic).
    SendSwitch {
        /// Destination switch.
        to: NodeId,
        /// Payload.
        msg: Message,
    },
    /// Send a message to the controller (takes the control-plane latency
    /// of this switch plus controller queueing).
    SendController {
        /// Payload.
        msg: Message,
    },
    /// Begin installing a rule; completes after the scenario's
    /// rule-installation delay, upon which the logic receives
    /// [`SwitchLogic::on_installed`] with the same token.
    BeginInstall {
        /// Flow whose rule is being written.
        flow: FlowId,
        /// Opaque token the logic uses to resume its continuation.
        token: u64,
    },
    /// A data packet reached its egress here and leaves the network.
    PacketDelivered {
        /// The delivered packet.
        pkt: DataPacket,
    },
    /// A data packet died here.
    PacketDropped {
        /// The dropped packet.
        pkt: DataPacket,
        /// Why it died.
        reason: DropReason,
    },
    /// Forward a data packet to an adjacent switch.
    ForwardData {
        /// Next hop.
        to: NodeId,
        /// The packet (TTL already decremented).
        pkt: DataPacket,
    },
}

/// Switch-side protocol logic.
pub trait SwitchLogic {
    /// Handle a control-plane or switch-to-switch message.
    fn on_control(
        &mut self,
        now: SimTime,
        state: &mut SwitchState,
        from: Endpoint,
        msg: Message,
        out: &mut Vec<Effect>,
    );

    /// A rule installation requested via [`Effect::BeginInstall`] finished.
    fn on_installed(
        &mut self,
        now: SimTime,
        state: &mut SwitchState,
        flow: FlowId,
        token: u64,
        out: &mut Vec<Effect>,
    );

    /// Number of messages currently parked in the pipeline waiting for a
    /// condition. On BMv2, each parked message resubmits through the
    /// pipeline repeatedly ("P4Update uses packet resubmission to check
    /// repeatedly if UIM has arrived", Appendix B), consuming forwarding
    /// capacity; the harness charges pipeline time per parked message per
    /// poll round.
    fn parked_messages(&self) -> usize {
        0
    }

    /// One-line diagnostic summary of the logic's internal state.
    fn debug_summary(&self) -> String {
        String::new()
    }
}

/// An action requested by controller logic.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlEffect {
    /// Send a message to a switch (takes that switch's control latency).
    Send {
        /// Destination switch.
        to: NodeId,
        /// Payload.
        msg: Message,
    },
    /// Metric hook: the controller considers this flow's update finished.
    UpdateComplete {
        /// The finished flow.
        flow: FlowId,
        /// Version that completed.
        version: Version,
    },
    /// Metric hook: a switch reported an inconsistent update.
    AlarmRaised {
        /// The flow concerned.
        flow: FlowId,
        /// The switch's reason.
        reason: RejectReason,
    },
}

/// Controller-side protocol logic.
pub trait ControllerLogic {
    /// Kick off a batch of flow updates (one scenario trigger). The harness
    /// has already charged preparation cost; this emits the resulting
    /// messages.
    fn start_update(&mut self, now: SimTime, updates: &[FlowUpdate], out: &mut Vec<CtrlEffect>);

    /// Handle a message arriving from a switch.
    fn on_message(&mut self, now: SimTime, from: NodeId, msg: Message, out: &mut Vec<CtrlEffect>);

    /// Periodic recovery tick (§11 "Failures in the Update Process"): the
    /// controller may re-trigger updates whose feedback never arrived.
    /// Returns `true` while the timer should keep firing.
    fn on_timer(&mut self, now: SimTime, out: &mut Vec<CtrlEffect>) -> bool {
        let _ = (now, out);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_equality() {
        assert_eq!(Endpoint::Switch(NodeId(1)), Endpoint::Switch(NodeId(1)));
        assert_ne!(Endpoint::Switch(NodeId(1)), Endpoint::Controller);
    }

    #[test]
    fn effects_are_comparable() {
        let a = Effect::BeginInstall {
            flow: FlowId(1),
            token: 3,
        };
        assert_eq!(
            a,
            Effect::BeginInstall {
                flow: FlowId(1),
                token: 3
            }
        );
    }
}
