//! Chassis-level tests for the §11 two-phase-commit forwarding: tagged
//! packets follow exactly one rule generation.

use p4update_dataplane::{DropReason, Effect, Endpoint, Switch, SwitchLogic, SwitchState};
use p4update_des::{SimDuration, SimTime};
use p4update_messages::{DataPacket, Message};
use p4update_net::{FlowId, NodeId, Topology, TopologyBuilder, Version};

struct NullLogic;
impl SwitchLogic for NullLogic {
    fn on_control(
        &mut self,
        _now: SimTime,
        _state: &mut SwitchState,
        _from: Endpoint,
        _msg: Message,
        _out: &mut Vec<Effect>,
    ) {
    }
    fn on_installed(
        &mut self,
        _now: SimTime,
        _state: &mut SwitchState,
        _flow: FlowId,
        _token: u64,
        _out: &mut Vec<Effect>,
    ) {
    }
}

fn star4() -> Topology {
    let mut b = TopologyBuilder::new("star");
    let v: Vec<NodeId> = (0..4).map(|i| b.add_node(format!("n{i}"))).collect();
    for &n in &v[1..] {
        b.add_link(v[0], n, SimDuration::from_millis(1), 10.0);
    }
    b.build()
}

/// A switch with generation 2 active (-> n2) and generation 1 saved
/// (-> n1).
fn two_generation_switch() -> Switch {
    let topo = star4();
    let mut sw = Switch::new(NodeId(0), &topo, Box::new(NullLogic));
    sw.state.uib.update(FlowId(0), |e| {
        e.uim_version = Version(1);
        e.uim_distance = 1;
        e.staged_next_hop = Some(NodeId(1));
        e.apply_single(); // generation 1 -> n1
        e.uim_version = Version(2);
        e.uim_distance = 1;
        e.staged_next_hop = Some(NodeId(2));
        e.apply_single(); // generation 2 -> n2, previous saved
    });
    sw
}

fn pkt(tag: Option<u32>) -> DataPacket {
    DataPacket {
        flow: FlowId(0),
        seq: 0,
        ttl: 64,
        tag: tag.map(Version),
    }
}

fn forward_target(sw: &mut Switch, p: DataPacket) -> Option<NodeId> {
    let effects = sw.handle_message(SimTime::ZERO, Endpoint::Switch(NodeId(3)), Message::Data(p));
    match effects.as_slice() {
        [Effect::ForwardData { to, .. }] => Some(*to),
        _ => None,
    }
}

#[test]
fn untagged_packets_follow_the_active_generation() {
    let mut sw = two_generation_switch();
    assert_eq!(forward_target(&mut sw, pkt(None)), Some(NodeId(2)));
}

#[test]
fn current_tag_follows_the_active_generation() {
    let mut sw = two_generation_switch();
    assert_eq!(forward_target(&mut sw, pkt(Some(2))), Some(NodeId(2)));
}

#[test]
fn previous_tag_follows_the_saved_generation() {
    let mut sw = two_generation_switch();
    assert_eq!(forward_target(&mut sw, pkt(Some(1))), Some(NodeId(1)));
}

#[test]
fn future_tag_follows_the_active_generation() {
    // A tag ahead of this switch (it has not applied that version yet)
    // forwards by the newest rule it has — the chain upstream guarantees
    // rules exist downstream before the ingress stamps the new version.
    let mut sw = two_generation_switch();
    assert_eq!(forward_target(&mut sw, pkt(Some(3))), Some(NodeId(2)));
}

#[test]
fn ancient_tag_is_dropped_as_blackhole() {
    // Only one previous generation is kept; versions older than it cannot
    // be served consistently and are dropped.
    let topo = star4();
    let mut sw = Switch::new(NodeId(0), &topo, Box::new(NullLogic));
    sw.state.uib.update(FlowId(0), |e| {
        for (v, hop) in [(1u32, 1u32), (2, 2), (3, 1)] {
            e.uim_version = Version(v);
            e.uim_distance = 1;
            e.staged_next_hop = Some(NodeId(hop));
            e.apply_single();
        }
    });
    let effects = sw.handle_message(
        SimTime::ZERO,
        Endpoint::Switch(NodeId(3)),
        Message::Data(pkt(Some(1))),
    );
    assert!(matches!(
        effects.as_slice(),
        [Effect::PacketDropped {
            reason: DropReason::NoRule,
            ..
        }]
    ));
}

#[test]
fn stamping_happens_at_injection_when_enabled() {
    let mut sw = two_generation_switch();
    sw.enable_two_phase_commit();
    let effects = sw.inject_packet(SimTime::ZERO, pkt(None), NodeId(2));
    match effects.as_slice() {
        [Effect::ForwardData { pkt, .. }] => {
            assert_eq!(pkt.tag, Some(Version(2)), "ingress must stamp");
        }
        other => panic!("unexpected effects {other:?}"),
    }
}

#[test]
fn no_stamping_without_the_mode() {
    let mut sw = two_generation_switch();
    let effects = sw.inject_packet(SimTime::ZERO, pkt(None), NodeId(2));
    match effects.as_slice() {
        [Effect::ForwardData { pkt, .. }] => assert_eq!(pkt.tag, None),
        other => panic!("unexpected effects {other:?}"),
    }
}
