//! # p4update-perf
//!
//! Dependency-free performance harness. Drives gravity-model multi-flow
//! updates over four topology scales (Fig.-1-size, 64-, 512- and
//! 4096-switch synthetic fat-trees) for each system under test —
//! single-label and dual-label P4Update, ez-Segway, and the central
//! two-phase baseline — with streaming metrics sinks so memory stays
//! O(1) in packet count, and emits the `BENCH_p4update.json` baseline
//! (events/sec, peak queue depth, p50/p99 flow-completion times).
//!
//! `examples/perf.rs` is the CLI entry point; `scripts/check.sh` runs
//! its `--smoke` mode plus schema validation of the committed artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod runner;
pub mod workload;

pub use json::{strip_timing, validate_report, Json, EXPECTED_SYSTEMS, SCHEMA};
pub use runner::{
    ft32768_probe, overhead_smoke, run_bench, run_scale, scales, systems, LOAD_FACTOR,
};
pub use workload::{bench_plans, bench_workload};
