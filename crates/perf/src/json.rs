//! Benchmark-artifact schema and validation for `BENCH_p4update.json`.
//!
//! The JSON value/emitter/parser itself lives in `p4update-analysis`
//! (shared with the on-disk dataset format) and is re-exported here; this
//! module owns the artifact layout: the schema tag, the validator the
//! gate script runs, and the timing-stripping used for thread-count
//! byte-equality checks.

pub use p4update_analysis::Json;

// ---------------------------------------------------------------------------
// Benchmark-artifact schema (v4) and validation.

/// Schema tag of the emitted artifact; bump on layout changes. `v2` added
/// the mandatory top-level `thread_scaling` section, the per-system
/// `stranded_flows` counter, and the ft4096 scale; the `analysis` section
/// (plans/sec of the static batch verifier) is mandatory as of PR 6. `v3`
/// splits `thread_scaling` into `run_level` (fork-join over independent
/// runs) and `in_run` (the windowed partitioned engine inside one run)
/// halves and adds the mandatory `partitioning` section: the
/// deterministic shape — partition count, conservative lookahead, window
/// count, per-partition event counts — of a fixed-cut partitioned
/// execution, including the parallel-only ft32768 scale in full
/// artifacts. `v4` adds the mandatory `overhead` section: the per-window
/// cost of the windowed engine versus the sequential baseline — window
/// counts, events per window, and wall ratios at partitions ∈ {1, 4}
/// with coalescing/serial phases on and off — and requires the coalesced
/// window count to undercut the fixed-window count at least fivefold.
pub const SCHEMA: &str = "p4update-bench-v4";

/// The systems every scale must report, in artifact order.
pub const EXPECTED_SYSTEMS: [&str; 4] = ["p4update-sl", "p4update-dl", "ez-segway", "central"];

/// Validate a benchmark artifact: schema tag (superseded v1/v2/v3
/// artifacts are rejected by name), at least `min_scales` scales with no
/// duplicate scale entries, exactly the four expected systems per scale
/// with no duplicates, a well-formed two-level `thread_scaling` section,
/// a well-formed mandatory `partitioning` section (full artifacts must
/// carry the ft4096 and ft32768 entries), a well-formed mandatory
/// `overhead` section (windows, events-per-window and wall ratios at
/// partitions ∈ {1, 4} × coalescing on/off, with the coalesced runs
/// using at most a fifth of the fixed-window counts), a well-formed
/// `analysis` section (full artifacts must carry ft512 and ft4096
/// analysis scales), and finite, plausible numbers throughout. This is
/// what the gate script runs against both the smoke output and the
/// committed baseline.
pub fn validate_report(doc: &Json, min_scales: usize) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some("p4update-bench-v1") => {
            return Err(format!(
                "schema p4update-bench-v1 is obsolete (no thread_scaling section); \
                 regenerate the artifact as {SCHEMA}"
            ));
        }
        Some("p4update-bench-v2") => {
            return Err(format!(
                "schema p4update-bench-v2 is obsolete (flat thread_scaling, no \
                 partitioning section); regenerate the artifact as {SCHEMA}"
            ));
        }
        Some("p4update-bench-v3") => {
            return Err(format!(
                "schema p4update-bench-v3 is obsolete (no overhead section); \
                 regenerate the artifact as {SCHEMA}"
            ));
        }
        other => return Err(format!("schema tag must be {SCHEMA:?}, got {other:?}")),
    }
    doc.get("load_factor")
        .and_then(Json::as_f64)
        .filter(|l| (0.0..=1.0).contains(l))
        .ok_or("load_factor must be in [0, 1]")?;
    let ts = doc.get("thread_scaling").ok_or(
        "missing thread_scaling section (required since p4update-bench-v2; \
         older artifacts must be regenerated)",
    )?;
    validate_run_level_scaling(
        ts.get("run_level")
            .ok_or("thread_scaling: missing run_level half (flat v2 layout?)")?,
    )?;
    validate_in_run_scaling(
        ts.get("in_run")
            .ok_or("thread_scaling: missing in_run half (flat v2 layout?)")?,
    )?;
    validate_partitioning(
        doc.get("partitioning").ok_or(
            "missing partitioning section (required by p4update-bench-v3; \
             older artifacts must be regenerated)",
        )?,
        min_scales,
    )?;
    validate_overhead(doc.get("overhead").ok_or(
        "missing overhead section (required by p4update-bench-v4; \
         older artifacts must be regenerated)",
    )?)?;
    validate_analysis(
        doc.get("analysis")
            .ok_or("missing analysis section (plans/sec of the static batch verifier)")?,
        min_scales,
    )?;
    let scales = doc
        .get("scales")
        .and_then(Json::as_arr)
        .ok_or("missing scales array")?;
    if scales.len() < min_scales {
        return Err(format!(
            "need at least {min_scales} scales, found {}",
            scales.len()
        ));
    }
    let mut seen_scales: Vec<&str> = Vec::new();
    for scale in scales {
        let name = scale
            .get("scale")
            .and_then(Json::as_str)
            .ok_or("scale missing name")?;
        if seen_scales.contains(&name) {
            return Err(format!("duplicate scale entry {name:?}"));
        }
        seen_scales.push(name);
        for key in ["nodes", "links", "flows"] {
            scale
                .get(key)
                .and_then(Json::as_f64)
                .filter(|&v| v.is_finite() && v > 0.0)
                .ok_or_else(|| format!("{name}: {key} must be a positive number"))?;
        }
        let systems = scale
            .get("systems")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{name}: missing systems array"))?;
        let labels: Vec<&str> = systems
            .iter()
            .filter_map(|s| s.get("system").and_then(Json::as_str))
            .collect();
        for (i, label) in labels.iter().enumerate() {
            if labels[..i].contains(label) {
                return Err(format!("{name}: duplicate system entry {label:?}"));
            }
        }
        if labels != EXPECTED_SYSTEMS {
            return Err(format!(
                "{name}: systems must be {EXPECTED_SYSTEMS:?}, got {labels:?}"
            ));
        }
        for sys in systems {
            let label = sys.get("system").and_then(Json::as_str).unwrap_or("?");
            for key in [
                "runs",
                "events",
                "events_per_sec",
                "peak_queue_depth",
                "fct_p50_ms",
                "fct_p99_ms",
            ] {
                sys.get(key)
                    .and_then(Json::as_f64)
                    .filter(|&v| v.is_finite() && v > 0.0)
                    .ok_or_else(|| format!("{name}/{label}: {key} must be a positive number"))?;
            }
            // Stranded flows: non-negative, and consistent with the
            // completion rate (stranded > 0 ⇔ rate < 1 for these runs).
            sys.get("stranded_flows")
                .and_then(Json::as_f64)
                .filter(|&v| v.is_finite() && v >= 0.0)
                .ok_or_else(|| format!("{name}/{label}: stranded_flows must be present and ≥ 0"))?;
            let (p50, p99) = (
                sys.get("fct_p50_ms").and_then(Json::as_f64).unwrap_or(0.0),
                sys.get("fct_p99_ms").and_then(Json::as_f64).unwrap_or(0.0),
            );
            if p99 < p50 {
                return Err(format!("{name}/{label}: p99 < p50"));
            }
            // ez-Segway can strand individual flows under contention (it
            // retries forever); everything else must finish everything. A
            // rate below 0.95 means the run itself is broken.
            let rate = sys
                .get("completion_rate")
                .and_then(Json::as_f64)
                .filter(|r| (0.0..=1.0).contains(r))
                .ok_or_else(|| format!("{name}/{label}: completion_rate must be in [0, 1]"))?;
            if rate < 0.95 {
                return Err(format!("{name}/{label}: completion_rate {rate} below 0.95"));
            }
        }
    }
    Ok(())
}

fn validate_run_level_scaling(ts: &Json) -> Result<(), String> {
    ts.get("scale")
        .and_then(Json::as_str)
        .ok_or("thread_scaling/run_level: missing scale")?;
    ts.get("system")
        .and_then(Json::as_str)
        .ok_or("thread_scaling/run_level: missing system")?;
    for key in ["runs", "parallelism_available"] {
        ts.get(key)
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v >= 1.0)
            .ok_or_else(|| format!("thread_scaling/run_level: {key} must be ≥ 1"))?;
    }
    let points = ts
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("thread_scaling/run_level: missing points array")?;
    if points.is_empty() {
        return Err("thread_scaling/run_level: points must be non-empty".into());
    }
    let mut last_threads = 0.0;
    for p in points {
        let threads = p
            .get("threads")
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v >= 1.0)
            .ok_or("thread_scaling/run_level: point missing threads")?;
        if threads <= last_threads {
            return Err(
                "thread_scaling/run_level: points must have increasing thread counts".into(),
            );
        }
        last_threads = threads;
        for key in ["wall_secs", "speedup"] {
            p.get(key)
                .and_then(Json::as_f64)
                .filter(|&v| v.is_finite() && v > 0.0)
                .ok_or_else(|| format!("thread_scaling/run_level: point {key} must be positive"))?;
        }
    }
    Ok(())
}

/// Validate the `in_run` half: points climb in (partitions, threads)
/// lexicographic order and carry positive wall/speedup numbers. Speedup
/// is *not* required to exceed 1 — on a single-core machine it honestly
/// won't, and `parallelism_available` is right there for the reader to
/// judge the numbers against.
fn validate_in_run_scaling(ts: &Json) -> Result<(), String> {
    ts.get("scale")
        .and_then(Json::as_str)
        .ok_or("thread_scaling/in_run: missing scale")?;
    ts.get("system")
        .and_then(Json::as_str)
        .ok_or("thread_scaling/in_run: missing system")?;
    for key in ["events", "parallelism_available"] {
        ts.get(key)
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v >= 1.0)
            .ok_or_else(|| format!("thread_scaling/in_run: {key} must be ≥ 1"))?;
    }
    let points = ts
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("thread_scaling/in_run: missing points array")?;
    if points.is_empty() {
        return Err("thread_scaling/in_run: points must be non-empty".into());
    }
    let mut last = (0.0, 0.0);
    for p in points {
        let mut pt = (0.0, 0.0);
        for (key, slot) in [("partitions", &mut pt.0), ("threads", &mut pt.1)] {
            *slot = p
                .get(key)
                .and_then(Json::as_f64)
                .filter(|&v| v.is_finite() && v >= 1.0)
                .ok_or_else(|| format!("thread_scaling/in_run: point {key} must be ≥ 1"))?;
        }
        if pt <= last {
            return Err("thread_scaling/in_run: points must climb in (partitions, threads)".into());
        }
        last = pt;
        for key in ["wall_secs", "speedup"] {
            p.get(key)
                .and_then(Json::as_f64)
                .filter(|&v| v.is_finite() && v > 0.0)
                .ok_or_else(|| format!("thread_scaling/in_run: point {key} must be positive"))?;
        }
    }
    Ok(())
}

/// Validate the mandatory `partitioning` section: per-scale entries of
/// the fixed-cut partitioned execution. The per-partition event counts
/// must be one per switch partition plus one controller shard and must
/// add up exactly to the entry's event total — the section *is* the
/// determinism claim in artifact form, so the arithmetic has to close.
/// Full artifacts (`min_scales ≥ 4`) must report ft4096 and the
/// parallel-only ft32768.
fn validate_partitioning(section: &Json, min_scales: usize) -> Result<(), String> {
    let scales = section
        .get("scales")
        .and_then(Json::as_arr)
        .ok_or("partitioning: missing scales array")?;
    if scales.is_empty() {
        return Err("partitioning: scales must be non-empty".into());
    }
    let mut names: Vec<&str> = Vec::new();
    for entry in scales {
        let name = entry
            .get("scale")
            .and_then(Json::as_str)
            .ok_or("partitioning: scale missing name")?;
        if names.contains(&name) {
            return Err(format!("partitioning: duplicate scale entry {name:?}"));
        }
        names.push(name);
        for key in ["nodes", "flows", "windows", "events"] {
            entry
                .get(key)
                .and_then(Json::as_f64)
                .filter(|&v| v.is_finite() && v >= 1.0)
                .ok_or_else(|| format!("partitioning/{name}: {key} must be ≥ 1"))?;
        }
        let partitions = entry
            .get("partitions")
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v >= 1.0)
            .ok_or_else(|| format!("partitioning/{name}: partitions must be ≥ 1"))?;
        entry
            .get("lookahead_ms")
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v > 0.0)
            .ok_or_else(|| format!("partitioning/{name}: lookahead_ms must be positive"))?;
        let per = entry
            .get("per_partition_events")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("partitioning/{name}: missing per_partition_events"))?;
        if per.len() != partitions as usize + 1 {
            return Err(format!(
                "partitioning/{name}: per_partition_events must have {} entries \
                 ({partitions} partitions + controller shard), found {}",
                partitions as usize + 1,
                per.len()
            ));
        }
        let mut sum = 0.0;
        for v in per {
            sum += v
                .as_f64()
                .filter(|&v| v.is_finite() && v >= 0.0)
                .ok_or_else(|| {
                    format!("partitioning/{name}: per_partition_events entries must be ≥ 0")
                })?;
        }
        let events = entry.get("events").and_then(Json::as_f64).unwrap_or(0.0);
        if sum != events {
            return Err(format!(
                "partitioning/{name}: per_partition_events sum {sum} ≠ events {events}"
            ));
        }
        // Wall-clock fields are optional (the ft32768 entry carries them;
        // strip_timing removes them) but must be positive when present.
        for key in ["wall_secs", "events_per_sec"] {
            if let Some(v) = entry.get(key) {
                v.as_f64()
                    .filter(|&v| v.is_finite() && v > 0.0)
                    .ok_or_else(|| format!("partitioning/{name}: {key} must be positive"))?;
            }
        }
    }
    if min_scales >= 4 {
        for required in ["ft4096", "ft32768"] {
            if !names.contains(&required) {
                return Err(format!(
                    "partitioning: full artifacts must report scale {required:?}"
                ));
            }
        }
    }
    Ok(())
}

/// The (partitions, coalescing) grid every `overhead` section must
/// report, in artifact order.
const OVERHEAD_POINTS: [(f64, bool); 4] = [(1.0, true), (1.0, false), (4.0, true), (4.0, false)];

/// Validate the mandatory `overhead` section: one scale's dual-layer
/// workload through the windowed engine at partitions ∈ {1, 4} with
/// coalescing/serial phases on and off, against the sequential run of
/// the same world. Window counts and events-per-window are deterministic
/// (they survive [`strip_timing`]); wall fields are optional after
/// stripping but must be positive when present. The validator also pins
/// the section's reason to exist: at every partition count, the
/// coalesced run must use at most a fifth of the fixed-window run's
/// windows.
fn validate_overhead(section: &Json) -> Result<(), String> {
    for key in ["scale", "system"] {
        section
            .get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("overhead: missing {key}"))?;
    }
    section
        .get("events")
        .and_then(Json::as_f64)
        .filter(|&v| v.is_finite() && v >= 1.0)
        .ok_or("overhead: events must be ≥ 1")?;
    if let Some(v) = section.get("sequential_wall_secs") {
        v.as_f64()
            .filter(|&v| v.is_finite() && v > 0.0)
            .ok_or("overhead: sequential_wall_secs must be positive")?;
    }
    let points = section
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("overhead: missing points array")?;
    if points.len() != OVERHEAD_POINTS.len() {
        return Err(format!(
            "overhead: points must cover the (partitions, coalescing) grid \
             {OVERHEAD_POINTS:?}, found {} points",
            points.len()
        ));
    }
    let mut windows = [0.0f64; 4];
    for (i, (p, &(want_parts, want_coal))) in points.iter().zip(&OVERHEAD_POINTS).enumerate() {
        let parts = p
            .get("partitions")
            .and_then(Json::as_f64)
            .ok_or("overhead: point missing partitions")?;
        let coal = p
            .get("coalescing")
            .and_then(Json::as_bool)
            .ok_or("overhead: point missing coalescing")?;
        if (parts, coal) != (want_parts, want_coal) {
            return Err(format!(
                "overhead: point {i} must be partitions {want_parts}, coalescing \
                 {want_coal}; found partitions {parts}, coalescing {coal}"
            ));
        }
        windows[i] = p
            .get("windows")
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v >= 1.0)
            .ok_or("overhead: point windows must be ≥ 1")?;
        p.get("events_per_window")
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v > 0.0)
            .ok_or("overhead: point events_per_window must be positive")?;
        for key in ["wall_secs", "wall_ratio_vs_sequential"] {
            if let Some(v) = p.get(key) {
                v.as_f64()
                    .filter(|&v| v.is_finite() && v > 0.0)
                    .ok_or_else(|| format!("overhead: point {key} must be positive"))?;
            }
        }
    }
    // Windows are [1p on, 1p off, 4p on, 4p off]; coalescing must buy at
    // least a 5x reduction at both partition counts.
    for (on, off, label) in [(windows[0], windows[1], 1), (windows[2], windows[3], 4)] {
        if on * 5.0 > off {
            return Err(format!(
                "overhead: coalescing at {label} partition(s) reduced windows only \
                 {off} -> {on} (must be at least 5x)"
            ));
        }
    }
    Ok(())
}

/// Validate the `analysis` section: per-scale plans/sec points of the
/// batch verifier at increasing worker counts, zero analyzer errors on
/// generated workloads (the analyzer-clean half of the cross-validation
/// invariant), and an incremental pass that re-linted strictly fewer
/// plans than the batch holds. A full artifact (`min_scales ≥ 4`) must
/// report ft512 and ft4096.
fn validate_analysis(section: &Json, min_scales: usize) -> Result<(), String> {
    let scales = section
        .get("scales")
        .and_then(Json::as_arr)
        .ok_or("analysis: missing scales array")?;
    if scales.is_empty() {
        return Err("analysis: scales must be non-empty".into());
    }
    let mut names: Vec<&str> = Vec::new();
    for entry in scales {
        let name = entry
            .get("scale")
            .and_then(Json::as_str)
            .ok_or("analysis: scale missing name")?;
        if names.contains(&name) {
            return Err(format!("analysis: duplicate scale entry {name:?}"));
        }
        names.push(name);
        let plans = entry
            .get("plans")
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v >= 1.0)
            .ok_or_else(|| format!("analysis/{name}: plans must be ≥ 1"))?;
        let errors = entry
            .get("errors")
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v >= 0.0)
            .ok_or_else(|| format!("analysis/{name}: errors must be present and ≥ 0"))?;
        if errors != 0.0 {
            return Err(format!(
                "analysis/{name}: generated workloads must be analyzer-clean, found {errors} error(s)"
            ));
        }
        entry
            .get("warnings")
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v >= 0.0)
            .ok_or_else(|| format!("analysis/{name}: warnings must be present and ≥ 0"))?;
        let relinted = entry
            .get("incremental_relinted")
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v >= 1.0)
            .ok_or_else(|| format!("analysis/{name}: incremental_relinted must be ≥ 1"))?;
        if relinted >= plans {
            return Err(format!(
                "analysis/{name}: incremental pass re-linted {relinted} of {plans} plans \
                 (must be strictly fewer)"
            ));
        }
        let points = entry
            .get("points")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("analysis/{name}: missing points array"))?;
        if points.is_empty() {
            return Err(format!("analysis/{name}: points must be non-empty"));
        }
        let mut last_workers = 0.0;
        for p in points {
            let workers = p
                .get("workers")
                .and_then(Json::as_f64)
                .filter(|&v| v.is_finite() && v >= 1.0)
                .ok_or_else(|| format!("analysis/{name}: point missing workers"))?;
            if workers <= last_workers {
                return Err(format!(
                    "analysis/{name}: points must have increasing worker counts"
                ));
            }
            last_workers = workers;
            for key in ["wall_secs", "plans_per_sec"] {
                p.get(key)
                    .and_then(Json::as_f64)
                    .filter(|&v| v.is_finite() && v > 0.0)
                    .ok_or_else(|| format!("analysis/{name}: point {key} must be positive"))?;
            }
        }
    }
    if min_scales >= 4 {
        for required in ["ft512", "ft4096"] {
            if !names.contains(&required) {
                return Err(format!(
                    "analysis: full artifacts must report scale {required:?}"
                ));
            }
        }
    }
    Ok(())
}

/// A copy of the artifact with every wall-clock-derived field removed:
/// per-system `wall_secs` and `events_per_sec`, the same fields inside
/// `partitioning` entries, the `overhead` section's
/// `sequential_wall_secs` and per-point `wall_secs` /
/// `wall_ratio_vs_sequential`, and the whole `thread_scaling` and
/// `analysis` sections (both report throughput). The `partitioning` and
/// `overhead` sections themselves *stay* — partition count, lookahead,
/// window counts, per-partition event counts and events-per-window are
/// pure functions of (workload, seed, cut, coalescing setting), probed
/// at fixed settings, so they are part of the determinism contract. What
/// remains must be byte-identical for two runs of the same build
/// *regardless of thread count, `--partitions`, or `--no-coalescing`*;
/// the gate script enforces exactly that for `--threads 1` vs
/// `--threads 4`, for `--partitions 1` vs `--partitions 4`, and for
/// coalescing on vs off. (Lint-output byte-equality across worker counts
/// is enforced separately on `p4update_lint --dataset` output.)
pub fn strip_timing(doc: &Json) -> Json {
    fn strip_system(sys: &Json) -> Json {
        match sys {
            Json::Obj(members) => Json::Obj(
                members
                    .iter()
                    .filter(|(k, _)| k != "wall_secs" && k != "events_per_sec")
                    .cloned()
                    .collect(),
            ),
            other => other.clone(),
        }
    }
    fn strip_partitioning(section: &Json) -> Json {
        match section {
            Json::Obj(members) => Json::Obj(
                members
                    .iter()
                    .map(|(k, v)| {
                        let v = if k == "scales" {
                            match v {
                                Json::Arr(items) => {
                                    Json::Arr(items.iter().map(strip_system).collect())
                                }
                                other => other.clone(),
                            }
                        } else {
                            v.clone()
                        };
                        (k.clone(), v)
                    })
                    .collect(),
            ),
            other => other.clone(),
        }
    }
    fn strip_overhead(section: &Json) -> Json {
        fn strip_point(p: &Json) -> Json {
            match p {
                Json::Obj(members) => Json::Obj(
                    members
                        .iter()
                        .filter(|(k, _)| k != "wall_secs" && k != "wall_ratio_vs_sequential")
                        .cloned()
                        .collect(),
                ),
                other => other.clone(),
            }
        }
        match section {
            Json::Obj(members) => Json::Obj(
                members
                    .iter()
                    .filter(|(k, _)| k != "sequential_wall_secs")
                    .map(|(k, v)| {
                        let v = if k == "points" {
                            match v {
                                Json::Arr(items) => {
                                    Json::Arr(items.iter().map(strip_point).collect())
                                }
                                other => other.clone(),
                            }
                        } else {
                            v.clone()
                        };
                        (k.clone(), v)
                    })
                    .collect(),
            ),
            other => other.clone(),
        }
    }
    fn strip_scale(scale: &Json) -> Json {
        match scale {
            Json::Obj(members) => Json::Obj(
                members
                    .iter()
                    .map(|(k, v)| {
                        let v = if k == "systems" {
                            match v {
                                Json::Arr(items) => {
                                    Json::Arr(items.iter().map(strip_system).collect())
                                }
                                other => other.clone(),
                            }
                        } else {
                            v.clone()
                        };
                        (k.clone(), v)
                    })
                    .collect(),
            ),
            other => other.clone(),
        }
    }
    match doc {
        Json::Obj(members) => Json::Obj(
            members
                .iter()
                .filter(|(k, _)| k != "thread_scaling" && k != "analysis")
                .map(|(k, v)| {
                    let v = if k == "scales" {
                        match v {
                            Json::Arr(items) => Json::Arr(items.iter().map(strip_scale).collect()),
                            other => other.clone(),
                        }
                    } else if k == "partitioning" {
                        strip_partitioning(v)
                    } else if k == "overhead" {
                        strip_overhead(v)
                    } else {
                        v.clone()
                    };
                    (k.clone(), v)
                })
                .collect(),
        ),
        other => other.clone(),
    }
}
