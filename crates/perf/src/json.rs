//! Benchmark-artifact schema and validation for `BENCH_p4update.json`.
//!
//! The JSON value/emitter/parser itself lives in `p4update-analysis`
//! (shared with the on-disk dataset format) and is re-exported here; this
//! module owns the artifact layout: the schema tag, the validator the
//! gate script runs, and the timing-stripping used for thread-count
//! byte-equality checks.

pub use p4update_analysis::Json;

// ---------------------------------------------------------------------------
// Benchmark-artifact schema (v2) and validation.

/// Schema tag of the emitted artifact; bump on layout changes. `v2` added
/// the mandatory top-level `thread_scaling` section, the per-system
/// `stranded_flows` counter, and the ft4096 scale; the `analysis` section
/// (plans/sec of the static batch verifier) is mandatory as of PR 6.
pub const SCHEMA: &str = "p4update-bench-v2";

/// The systems every scale must report, in artifact order.
pub const EXPECTED_SYSTEMS: [&str; 4] = ["p4update-sl", "p4update-dl", "ez-segway", "central"];

/// Validate a benchmark artifact: schema tag (v1 artifacts — which lack
/// `thread_scaling` — are rejected), at least `min_scales` scales with no
/// duplicate scale entries, exactly the four expected systems per scale
/// with no duplicates, a well-formed `thread_scaling` section, a
/// well-formed `analysis` section (full artifacts must carry ft512 and
/// ft4096 analysis scales), and finite, plausible numbers throughout.
/// This is what the gate script runs against both the smoke output and
/// the committed baseline.
pub fn validate_report(doc: &Json, min_scales: usize) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some("p4update-bench-v1") => {
            return Err(format!(
                "schema p4update-bench-v1 is obsolete (no thread_scaling section); \
                 regenerate the artifact as {SCHEMA}"
            ));
        }
        other => return Err(format!("schema tag must be {SCHEMA:?}, got {other:?}")),
    }
    doc.get("load_factor")
        .and_then(Json::as_f64)
        .filter(|l| (0.0..=1.0).contains(l))
        .ok_or("load_factor must be in [0, 1]")?;
    validate_thread_scaling(doc.get("thread_scaling").ok_or(
        "missing thread_scaling section (required by p4update-bench-v2; \
         v1 artifacts must be regenerated)",
    )?)?;
    validate_analysis(
        doc.get("analysis")
            .ok_or("missing analysis section (plans/sec of the static batch verifier)")?,
        min_scales,
    )?;
    let scales = doc
        .get("scales")
        .and_then(Json::as_arr)
        .ok_or("missing scales array")?;
    if scales.len() < min_scales {
        return Err(format!(
            "need at least {min_scales} scales, found {}",
            scales.len()
        ));
    }
    let mut seen_scales: Vec<&str> = Vec::new();
    for scale in scales {
        let name = scale
            .get("scale")
            .and_then(Json::as_str)
            .ok_or("scale missing name")?;
        if seen_scales.contains(&name) {
            return Err(format!("duplicate scale entry {name:?}"));
        }
        seen_scales.push(name);
        for key in ["nodes", "links", "flows"] {
            scale
                .get(key)
                .and_then(Json::as_f64)
                .filter(|&v| v.is_finite() && v > 0.0)
                .ok_or_else(|| format!("{name}: {key} must be a positive number"))?;
        }
        let systems = scale
            .get("systems")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{name}: missing systems array"))?;
        let labels: Vec<&str> = systems
            .iter()
            .filter_map(|s| s.get("system").and_then(Json::as_str))
            .collect();
        for (i, label) in labels.iter().enumerate() {
            if labels[..i].contains(label) {
                return Err(format!("{name}: duplicate system entry {label:?}"));
            }
        }
        if labels != EXPECTED_SYSTEMS {
            return Err(format!(
                "{name}: systems must be {EXPECTED_SYSTEMS:?}, got {labels:?}"
            ));
        }
        for sys in systems {
            let label = sys.get("system").and_then(Json::as_str).unwrap_or("?");
            for key in [
                "runs",
                "events",
                "events_per_sec",
                "peak_queue_depth",
                "fct_p50_ms",
                "fct_p99_ms",
            ] {
                sys.get(key)
                    .and_then(Json::as_f64)
                    .filter(|&v| v.is_finite() && v > 0.0)
                    .ok_or_else(|| format!("{name}/{label}: {key} must be a positive number"))?;
            }
            // Stranded flows: non-negative, and consistent with the
            // completion rate (stranded > 0 ⇔ rate < 1 for these runs).
            sys.get("stranded_flows")
                .and_then(Json::as_f64)
                .filter(|&v| v.is_finite() && v >= 0.0)
                .ok_or_else(|| format!("{name}/{label}: stranded_flows must be present and ≥ 0"))?;
            let (p50, p99) = (
                sys.get("fct_p50_ms").and_then(Json::as_f64).unwrap_or(0.0),
                sys.get("fct_p99_ms").and_then(Json::as_f64).unwrap_or(0.0),
            );
            if p99 < p50 {
                return Err(format!("{name}/{label}: p99 < p50"));
            }
            // ez-Segway can strand individual flows under contention (it
            // retries forever); everything else must finish everything. A
            // rate below 0.95 means the run itself is broken.
            let rate = sys
                .get("completion_rate")
                .and_then(Json::as_f64)
                .filter(|r| (0.0..=1.0).contains(r))
                .ok_or_else(|| format!("{name}/{label}: completion_rate must be in [0, 1]"))?;
            if rate < 0.95 {
                return Err(format!("{name}/{label}: completion_rate {rate} below 0.95"));
            }
        }
    }
    Ok(())
}

fn validate_thread_scaling(ts: &Json) -> Result<(), String> {
    ts.get("scale")
        .and_then(Json::as_str)
        .ok_or("thread_scaling: missing scale")?;
    ts.get("system")
        .and_then(Json::as_str)
        .ok_or("thread_scaling: missing system")?;
    for key in ["runs", "parallelism_available"] {
        ts.get(key)
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v >= 1.0)
            .ok_or_else(|| format!("thread_scaling: {key} must be ≥ 1"))?;
    }
    let points = ts
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("thread_scaling: missing points array")?;
    if points.is_empty() {
        return Err("thread_scaling: points must be non-empty".into());
    }
    let mut last_threads = 0.0;
    for p in points {
        let threads = p
            .get("threads")
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v >= 1.0)
            .ok_or("thread_scaling: point missing threads")?;
        if threads <= last_threads {
            return Err("thread_scaling: points must have increasing thread counts".into());
        }
        last_threads = threads;
        for key in ["wall_secs", "speedup"] {
            p.get(key)
                .and_then(Json::as_f64)
                .filter(|&v| v.is_finite() && v > 0.0)
                .ok_or_else(|| format!("thread_scaling: point {key} must be positive"))?;
        }
    }
    Ok(())
}

/// Validate the `analysis` section: per-scale plans/sec points of the
/// batch verifier at increasing worker counts, zero analyzer errors on
/// generated workloads (the analyzer-clean half of the cross-validation
/// invariant), and an incremental pass that re-linted strictly fewer
/// plans than the batch holds. A full artifact (`min_scales ≥ 4`) must
/// report ft512 and ft4096.
fn validate_analysis(section: &Json, min_scales: usize) -> Result<(), String> {
    let scales = section
        .get("scales")
        .and_then(Json::as_arr)
        .ok_or("analysis: missing scales array")?;
    if scales.is_empty() {
        return Err("analysis: scales must be non-empty".into());
    }
    let mut names: Vec<&str> = Vec::new();
    for entry in scales {
        let name = entry
            .get("scale")
            .and_then(Json::as_str)
            .ok_or("analysis: scale missing name")?;
        if names.contains(&name) {
            return Err(format!("analysis: duplicate scale entry {name:?}"));
        }
        names.push(name);
        let plans = entry
            .get("plans")
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v >= 1.0)
            .ok_or_else(|| format!("analysis/{name}: plans must be ≥ 1"))?;
        let errors = entry
            .get("errors")
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v >= 0.0)
            .ok_or_else(|| format!("analysis/{name}: errors must be present and ≥ 0"))?;
        if errors != 0.0 {
            return Err(format!(
                "analysis/{name}: generated workloads must be analyzer-clean, found {errors} error(s)"
            ));
        }
        entry
            .get("warnings")
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v >= 0.0)
            .ok_or_else(|| format!("analysis/{name}: warnings must be present and ≥ 0"))?;
        let relinted = entry
            .get("incremental_relinted")
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v >= 1.0)
            .ok_or_else(|| format!("analysis/{name}: incremental_relinted must be ≥ 1"))?;
        if relinted >= plans {
            return Err(format!(
                "analysis/{name}: incremental pass re-linted {relinted} of {plans} plans \
                 (must be strictly fewer)"
            ));
        }
        let points = entry
            .get("points")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("analysis/{name}: missing points array"))?;
        if points.is_empty() {
            return Err(format!("analysis/{name}: points must be non-empty"));
        }
        let mut last_workers = 0.0;
        for p in points {
            let workers = p
                .get("workers")
                .and_then(Json::as_f64)
                .filter(|&v| v.is_finite() && v >= 1.0)
                .ok_or_else(|| format!("analysis/{name}: point missing workers"))?;
            if workers <= last_workers {
                return Err(format!(
                    "analysis/{name}: points must have increasing worker counts"
                ));
            }
            last_workers = workers;
            for key in ["wall_secs", "plans_per_sec"] {
                p.get(key)
                    .and_then(Json::as_f64)
                    .filter(|&v| v.is_finite() && v > 0.0)
                    .ok_or_else(|| format!("analysis/{name}: point {key} must be positive"))?;
            }
        }
    }
    if min_scales >= 4 {
        for required in ["ft512", "ft4096"] {
            if !names.contains(&required) {
                return Err(format!(
                    "analysis: full artifacts must report scale {required:?}"
                ));
            }
        }
    }
    Ok(())
}

/// A copy of the artifact with every wall-clock-derived field removed:
/// per-system `wall_secs` and `events_per_sec`, and the whole
/// `thread_scaling` and `analysis` sections (both report throughput).
/// What remains — event counts, queue depths, completion percentiles,
/// stranding — is a pure function of (workload, seed), so two runs of the
/// same build must emit byte-identical stripped artifacts *regardless of
/// thread count*; the gate script enforces exactly that for `--threads 1`
/// vs `--threads 4`. (Lint-output byte-equality across worker counts is
/// enforced separately on `p4update_lint --dataset` output.)
pub fn strip_timing(doc: &Json) -> Json {
    fn strip_system(sys: &Json) -> Json {
        match sys {
            Json::Obj(members) => Json::Obj(
                members
                    .iter()
                    .filter(|(k, _)| k != "wall_secs" && k != "events_per_sec")
                    .cloned()
                    .collect(),
            ),
            other => other.clone(),
        }
    }
    fn strip_scale(scale: &Json) -> Json {
        match scale {
            Json::Obj(members) => Json::Obj(
                members
                    .iter()
                    .map(|(k, v)| {
                        let v = if k == "systems" {
                            match v {
                                Json::Arr(items) => {
                                    Json::Arr(items.iter().map(strip_system).collect())
                                }
                                other => other.clone(),
                            }
                        } else {
                            v.clone()
                        };
                        (k.clone(), v)
                    })
                    .collect(),
            ),
            other => other.clone(),
        }
    }
    match doc {
        Json::Obj(members) => Json::Obj(
            members
                .iter()
                .filter(|(k, _)| k != "thread_scaling" && k != "analysis")
                .map(|(k, v)| {
                    let v = if k == "scales" {
                        match v {
                            Json::Arr(items) => Json::Arr(items.iter().map(strip_scale).collect()),
                            other => other.clone(),
                        }
                    } else {
                        v.clone()
                    };
                    (k.clone(), v)
                })
                .collect(),
        ),
        other => other.clone(),
    }
}
