//! A minimal JSON value, emitter, and parser — just enough to write the
//! `BENCH_p4update.json` artifact and validate it when read back. The
//! workspace builds fully offline, so this is hand-rolled rather than a
//! serde dependency.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (emitted in shortest round-trip form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on emit.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    /// Parse one JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/inf; null is the honest spelling
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            c as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid keyword at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one full UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' (found {other:?})")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            other => return Err(format!("expected ',' or '}}' (found {other:?})")),
        }
    }
}

// ---------------------------------------------------------------------------
// Benchmark-artifact schema (v2) and validation.

/// Schema tag of the emitted artifact; bump on layout changes. `v2` added
/// the mandatory top-level `thread_scaling` section, the per-system
/// `stranded_flows` counter, and the ft4096 scale.
pub const SCHEMA: &str = "p4update-bench-v2";

/// The systems every scale must report, in artifact order.
pub const EXPECTED_SYSTEMS: [&str; 4] = ["p4update-sl", "p4update-dl", "ez-segway", "central"];

/// Validate a benchmark artifact: schema tag (v1 artifacts — which lack
/// `thread_scaling` — are rejected), at least `min_scales` scales with no
/// duplicate scale entries, exactly the four expected systems per scale
/// with no duplicates, a well-formed `thread_scaling` section, and finite,
/// plausible numbers throughout. This is what the gate script runs against
/// both the smoke output and the committed baseline.
pub fn validate_report(doc: &Json, min_scales: usize) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some("p4update-bench-v1") => {
            return Err(format!(
                "schema p4update-bench-v1 is obsolete (no thread_scaling section); \
                 regenerate the artifact as {SCHEMA}"
            ));
        }
        other => return Err(format!("schema tag must be {SCHEMA:?}, got {other:?}")),
    }
    doc.get("load_factor")
        .and_then(Json::as_f64)
        .filter(|l| (0.0..=1.0).contains(l))
        .ok_or("load_factor must be in [0, 1]")?;
    validate_thread_scaling(doc.get("thread_scaling").ok_or(
        "missing thread_scaling section (required by p4update-bench-v2; \
         v1 artifacts must be regenerated)",
    )?)?;
    let scales = doc
        .get("scales")
        .and_then(Json::as_arr)
        .ok_or("missing scales array")?;
    if scales.len() < min_scales {
        return Err(format!(
            "need at least {min_scales} scales, found {}",
            scales.len()
        ));
    }
    let mut seen_scales: Vec<&str> = Vec::new();
    for scale in scales {
        let name = scale
            .get("scale")
            .and_then(Json::as_str)
            .ok_or("scale missing name")?;
        if seen_scales.contains(&name) {
            return Err(format!("duplicate scale entry {name:?}"));
        }
        seen_scales.push(name);
        for key in ["nodes", "links", "flows"] {
            scale
                .get(key)
                .and_then(Json::as_f64)
                .filter(|&v| v.is_finite() && v > 0.0)
                .ok_or_else(|| format!("{name}: {key} must be a positive number"))?;
        }
        let systems = scale
            .get("systems")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{name}: missing systems array"))?;
        let labels: Vec<&str> = systems
            .iter()
            .filter_map(|s| s.get("system").and_then(Json::as_str))
            .collect();
        for (i, label) in labels.iter().enumerate() {
            if labels[..i].contains(label) {
                return Err(format!("{name}: duplicate system entry {label:?}"));
            }
        }
        if labels != EXPECTED_SYSTEMS {
            return Err(format!(
                "{name}: systems must be {EXPECTED_SYSTEMS:?}, got {labels:?}"
            ));
        }
        for sys in systems {
            let label = sys.get("system").and_then(Json::as_str).unwrap_or("?");
            for key in [
                "runs",
                "events",
                "events_per_sec",
                "peak_queue_depth",
                "fct_p50_ms",
                "fct_p99_ms",
            ] {
                sys.get(key)
                    .and_then(Json::as_f64)
                    .filter(|&v| v.is_finite() && v > 0.0)
                    .ok_or_else(|| format!("{name}/{label}: {key} must be a positive number"))?;
            }
            // Stranded flows: non-negative, and consistent with the
            // completion rate (stranded > 0 ⇔ rate < 1 for these runs).
            sys.get("stranded_flows")
                .and_then(Json::as_f64)
                .filter(|&v| v.is_finite() && v >= 0.0)
                .ok_or_else(|| format!("{name}/{label}: stranded_flows must be present and ≥ 0"))?;
            let (p50, p99) = (
                sys.get("fct_p50_ms").and_then(Json::as_f64).unwrap_or(0.0),
                sys.get("fct_p99_ms").and_then(Json::as_f64).unwrap_or(0.0),
            );
            if p99 < p50 {
                return Err(format!("{name}/{label}: p99 < p50"));
            }
            // ez-Segway can strand individual flows under contention (it
            // retries forever); everything else must finish everything. A
            // rate below 0.95 means the run itself is broken.
            let rate = sys
                .get("completion_rate")
                .and_then(Json::as_f64)
                .filter(|r| (0.0..=1.0).contains(r))
                .ok_or_else(|| format!("{name}/{label}: completion_rate must be in [0, 1]"))?;
            if rate < 0.95 {
                return Err(format!("{name}/{label}: completion_rate {rate} below 0.95"));
            }
        }
    }
    Ok(())
}

fn validate_thread_scaling(ts: &Json) -> Result<(), String> {
    ts.get("scale")
        .and_then(Json::as_str)
        .ok_or("thread_scaling: missing scale")?;
    ts.get("system")
        .and_then(Json::as_str)
        .ok_or("thread_scaling: missing system")?;
    for key in ["runs", "parallelism_available"] {
        ts.get(key)
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v >= 1.0)
            .ok_or_else(|| format!("thread_scaling: {key} must be ≥ 1"))?;
    }
    let points = ts
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("thread_scaling: missing points array")?;
    if points.is_empty() {
        return Err("thread_scaling: points must be non-empty".into());
    }
    let mut last_threads = 0.0;
    for p in points {
        let threads = p
            .get("threads")
            .and_then(Json::as_f64)
            .filter(|&v| v.is_finite() && v >= 1.0)
            .ok_or("thread_scaling: point missing threads")?;
        if threads <= last_threads {
            return Err("thread_scaling: points must have increasing thread counts".into());
        }
        last_threads = threads;
        for key in ["wall_secs", "speedup"] {
            p.get(key)
                .and_then(Json::as_f64)
                .filter(|&v| v.is_finite() && v > 0.0)
                .ok_or_else(|| format!("thread_scaling: point {key} must be positive"))?;
        }
    }
    Ok(())
}

/// A copy of the artifact with every wall-clock-derived field removed:
/// per-system `wall_secs` and `events_per_sec`, and the whole
/// `thread_scaling` section. What remains — event counts, queue depths,
/// completion percentiles, stranding — is a pure function of (workload,
/// seed), so two runs of the same build must emit byte-identical stripped
/// artifacts *regardless of thread count*; the gate script enforces
/// exactly that for `--threads 1` vs `--threads 4`.
pub fn strip_timing(doc: &Json) -> Json {
    fn strip_system(sys: &Json) -> Json {
        match sys {
            Json::Obj(members) => Json::Obj(
                members
                    .iter()
                    .filter(|(k, _)| k != "wall_secs" && k != "events_per_sec")
                    .cloned()
                    .collect(),
            ),
            other => other.clone(),
        }
    }
    fn strip_scale(scale: &Json) -> Json {
        match scale {
            Json::Obj(members) => Json::Obj(
                members
                    .iter()
                    .map(|(k, v)| {
                        let v = if k == "systems" {
                            match v {
                                Json::Arr(items) => {
                                    Json::Arr(items.iter().map(strip_system).collect())
                                }
                                other => other.clone(),
                            }
                        } else {
                            v.clone()
                        };
                        (k.clone(), v)
                    })
                    .collect(),
            ),
            other => other.clone(),
        }
    }
    match doc {
        Json::Obj(members) => Json::Obj(
            members
                .iter()
                .filter(|(k, _)| k != "thread_scaling")
                .map(|(k, v)| {
                    let v = if k == "scales" {
                        match v {
                            Json::Arr(items) => Json::Arr(items.iter().map(strip_scale).collect()),
                            other => other.clone(),
                        }
                    } else {
                        v.clone()
                    };
                    (k.clone(), v)
                })
                .collect(),
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("v1".into())),
            ("n".into(), Json::Num(42.0)),
            ("ratio".into(), Json::Num(1.5)),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Str("two\n\"quoted\"".into())]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("n").and_then(Json::as_f64), Some(42.0));
        assert_eq!(back.get("schema").and_then(Json::as_str), Some("v1"));
        assert_eq!(back.get("items").and_then(Json::as_arr).unwrap().len(), 2);
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Json::Num(3.0).to_string_pretty(), "3\n");
        assert_eq!(Json::Num(3.25).to_string_pretty(), "3.25\n");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{} trailing",
            "[1 2]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_negative_and_exponent_numbers() {
        let v = Json::parse("[-1.5e3, 0.25]").unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0].as_f64(), Some(-1500.0));
        assert_eq!(items[1].as_f64(), Some(0.25));
    }
}
