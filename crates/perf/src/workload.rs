//! The shared perf workload recipe: gravity-model multi-flow updates at
//! [`crate::runner::LOAD_FACTOR`] of link capacity, one update per
//! switch, with the feasibility acceptance loop of §9.1. This is the
//! same recipe the criterion benches use, rehoused here so the offline
//! workspace (which excludes `crates/bench`) can drive it too.

use p4update_core::{prepare_update, PreparedUpdate, Strategy};
use p4update_des::SimRng;
use p4update_net::{FlowId, Topology, Version};
use p4update_traffic::{multi_flow, Workload};
use std::collections::BTreeMap;

/// Deterministic benchmark workload for `seed`: the updates plus the
/// post-allocation free capacity the congestion-aware controllers need.
pub fn bench_workload(topo: &Topology, seed: u64) -> Workload {
    let mut rng = SimRng::new(seed);
    multi_flow(topo, &mut rng, crate::runner::LOAD_FACTOR)
}

/// Prepare a workload as an analyzable plan batch, replicating the
/// controller's version assignment: migrations move from installed
/// version 1 to version 2, fresh deployments start at version 1. Returns
/// the batch plus the installed-version context the analyzer should lint
/// against.
pub fn bench_plans(workload: &Workload) -> (Vec<PreparedUpdate>, BTreeMap<FlowId, Version>) {
    let mut installed = BTreeMap::new();
    let plans = workload
        .updates
        .iter()
        .map(|u| {
            let version = if u.old_path.is_some() {
                installed.insert(u.flow, Version(1));
                Version(2)
            } else {
                Version(1)
            };
            prepare_update(u, version, Strategy::Auto)
        })
        .collect();
    (plans, installed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4update_net::topologies;

    #[test]
    fn workload_is_deterministic_and_covers_every_switch() {
        let topo = topologies::fig1();
        let a = bench_workload(&topo, 7);
        let b = bench_workload(&topo, 7);
        assert_eq!(a.updates.len(), topo.node_count());
        assert_eq!(
            a.updates.iter().map(|u| u.flow).collect::<Vec<_>>(),
            b.updates.iter().map(|u| u.flow).collect::<Vec<_>>()
        );
        assert_eq!(a.free_capacity, b.free_capacity);
    }

    #[test]
    fn workload_generates_on_the_synthetic_fat_trees() {
        let topo = topologies::synthetic_fat_tree_64();
        let w = bench_workload(&topo, 1);
        assert_eq!(w.updates.len(), 64);
        assert!(w.updates.iter().all(|u| u.old_path.is_some()));
    }
}
