//! The scale runner: drives multi-flow updates over four topology
//! scales for every system under test and aggregates the measurements
//! the `BENCH_p4update.json` baseline records.
//!
//! Runs are independent simulations, so the runner shards the
//! (system × seed) grid across a `std::thread::scope` pool. Each run is
//! a pure function of (workload, seed); results are merged in job-index
//! order, so everything except wall-clock-derived fields is byte
//! identical for any `--threads` value (see [`crate::json::strip_timing`]).

use crate::json::{Json, EXPECTED_SYSTEMS, SCHEMA};
use crate::workload::bench_workload;
use p4update_core::Strategy;
use p4update_des::{Samples, SimDuration, SimTime};
use p4update_net::{topologies, FlowId, FlowUpdate, Path, PodPartitioner, Topology};
use p4update_sim::{
    simulation, Event, NetworkSim, PartitionedSim, PathTables, SimConfig, StreamingMetrics, System,
    TimingConfig,
};
use p4update_traffic::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The gravity-model load factor all perf runs use (§9.1's near-capacity
/// multi-flow setting).
pub const LOAD_FACTOR: f64 = 0.55;

/// The four systems every scale measures, labeled per
/// [`EXPECTED_SYSTEMS`] so the emitted artifact and the validator can
/// never drift apart.
pub fn systems() -> [(&'static str, System); 4] {
    [
        (EXPECTED_SYSTEMS[0], System::P4Update(Strategy::ForceSingle)),
        (EXPECTED_SYSTEMS[1], System::P4Update(Strategy::ForceDual)),
        (EXPECTED_SYSTEMS[2], System::EzSegway { congestion: true }),
        (EXPECTED_SYSTEMS[3], System::Central { congestion: true }),
    ]
}

/// One topology scale of the benchmark.
pub struct Scale {
    /// Artifact label ("fig1", "ft64", "ft512", "ft4096").
    pub name: &'static str,
    /// Topology constructor.
    pub build: fn() -> Topology,
    /// Timing model for this scale.
    pub timing: fn(&Topology) -> TimingConfig,
    /// Seeds to run per system at full fidelity.
    pub full_runs: u64,
    /// Seeds to run per system in smoke mode (0 = skipped).
    pub smoke_runs: u64,
}

fn wan_timing(topo: &Topology) -> TimingConfig {
    TimingConfig::wan_multi_flow(topo.centroid())
}

fn dc_timing(_topo: &Topology) -> TimingConfig {
    TimingConfig::fat_tree()
}

/// The benchmark's four scales: Fig.-1-size, 64-, 512- and 4096-switch.
pub fn scales() -> [Scale; 4] {
    [
        Scale {
            name: "fig1",
            build: topologies::fig1,
            timing: wan_timing,
            full_runs: 20,
            smoke_runs: 2,
        },
        Scale {
            name: "ft64",
            build: topologies::synthetic_fat_tree_64,
            timing: dc_timing,
            full_runs: 5,
            smoke_runs: 1,
        },
        Scale {
            name: "ft512",
            build: topologies::synthetic_fat_tree_512,
            timing: dc_timing,
            // Enough seeds that steady-state throughput dominates the
            // cold first run — a single ft512 run is ~10 ms of event
            // loop, which is timer-noise territory.
            full_runs: 8,
            smoke_runs: 0,
        },
        Scale {
            name: "ft4096",
            build: topologies::synthetic_fat_tree_4096,
            timing: dc_timing,
            full_runs: 1,
            smoke_runs: 0,
        },
    ]
}

/// Measurements of one (scale, system) cell, aggregated over seeds.
pub struct SystemResult {
    /// Artifact label of the system.
    pub system: &'static str,
    /// Seeds run.
    pub runs: u64,
    /// Total events delivered across runs.
    pub events: u64,
    /// Total wall-clock seconds spent inside the event loop.
    pub wall_secs: f64,
    /// Largest pending-event high-water mark over all runs.
    pub peak_queue_depth: usize,
    /// Median flow-completion time (ms since trigger), across all flows
    /// of all runs.
    pub fct_p50_ms: f64,
    /// 99th-percentile flow-completion time (ms).
    pub fct_p99_ms: f64,
    /// Flows that completed inside the horizon, across all runs.
    pub completed_flows: u64,
    /// Flows attempted across all runs (`flows × runs`).
    pub total_flows: u64,
    /// Flows stranded without completing across all runs (ez-Segway's
    /// circular capacity waits; zero for every other system).
    pub stranded_flows: u64,
}

/// Measurements of one topology scale.
pub struct ScaleResult {
    /// Scale label.
    pub scale: &'static str,
    /// Switch count.
    pub nodes: usize,
    /// Link count.
    pub links: usize,
    /// Flows updated per run (one per switch, gravity model).
    pub flows: usize,
    /// Per-system cells.
    pub systems: Vec<SystemResult>,
}

/// What one (topology, system, seed) run measured.
struct RunMeasure {
    events: u64,
    peak: usize,
    fct_ms: Vec<f64>,
    stranded: u64,
    wall: std::time::Duration,
}

/// Deterministic fork-join map: evaluate `f(0..jobs)` on up to `threads`
/// workers and return the results in input order. Workers pull job
/// indices from a shared atomic counter (so stragglers don't idle a
/// lane) and stash `(index, result)` pairs locally; the merge sorts by
/// index, so the output is identical for any thread count — the whole
/// determinism argument for the parallel runner rests on each `f(i)`
/// being a pure function of `i`.
pub(crate) fn parallel_map<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, jobs.max(1));
    if threads == 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(jobs);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            indexed.extend(h.join().expect("perf worker panicked"));
        }
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

/// Assemble a bench world: initial paths installed, the whole workload
/// queued as one batch. Shared by the sequential and partitioned run
/// paths so both engines see byte-identical starting states.
fn build_world(
    topo: &Topology,
    tables: &Arc<PathTables>,
    workload: &Workload,
    timing: TimingConfig,
    system: System,
    seed: u64,
) -> (NetworkSim, usize) {
    let config = SimConfig::new(timing, seed).with_analysis_gate(false);
    let mut world = NetworkSim::with_path_tables(
        topo.clone(),
        system,
        config,
        Some(workload.free_capacity.clone()),
        Arc::clone(tables),
    )
    .with_metrics_sink(Box::new(StreamingMetrics::new()));
    for u in &workload.updates {
        if let Some(old) = &u.old_path {
            world.install_initial_path(u.flow, old, u.size);
        }
    }
    let batch = world.add_batch(workload.updates.clone());
    (world, batch)
}

/// Engine selection for a grid run: the partition count (1 routes
/// through the sequential engine) and, for the windowed engine, whether
/// window coalescing/serial phases are enabled.
#[derive(Clone, Copy)]
struct Engine {
    partitions: usize,
    coalescing: bool,
}

/// The bench event-loop horizon.
fn horizon() -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(600)
}

/// Run one (topology, system) cell for one seed. A flow missing from the
/// completion-time list failed to finish inside the horizon (ez-Segway
/// can strand flows under contention); such flows are recorded as
/// stranded. Workload and path-table construction happen outside the
/// timed section; `wall` covers only the event loop.
///
/// With `partitions > 1` the run goes through the windowed
/// [`PartitionedSim`] engine (pod-partitioned, single in-run worker —
/// run-level parallelism owns the cores here) with window
/// coalescing/serial phases per `coalescing`; the engine's
/// byte-identical-merge guarantee means every measured field except
/// `wall` is the same either way, which
/// `partition_count_does_not_change_the_canonical_artifact` and
/// `coalescing_does_not_change_the_canonical_artifact` pin.
fn run_once(
    topo: &Topology,
    tables: &Arc<PathTables>,
    workload: &Workload,
    timing: TimingConfig,
    system: System,
    seed: u64,
    engine: Engine,
) -> RunMeasure {
    let (world, batch) = build_world(topo, tables, workload, timing, system, seed);
    let (events, peak, mut world, wall) = if engine.partitions > 1 {
        let part = PodPartitioner::new(topo, engine.partitions);
        let mut sim = PartitionedSim::new(world, &part, 1)
            .expect("bench configs satisfy the partitioned-engine preconditions")
            .with_coalescing(engine.coalescing);
        sim.schedule_at(SimTime::ZERO, Event::Trigger { batch });
        let start = std::time::Instant::now();
        sim.run_until(horizon())
            .expect("pod cut violated its own lookahead");
        let wall = start.elapsed();
        let (events, peak) = (sim.events_delivered(), sim.peak_queue_depth());
        (events, peak, sim.into_world(), wall)
    } else {
        let mut sim = simulation(world);
        sim.schedule_at(SimTime::ZERO, Event::Trigger { batch });
        let start = std::time::Instant::now();
        let _ = sim.run_until(horizon());
        let wall = start.elapsed();
        let (events, peak) = (sim.events_delivered(), sim.peak_queue_depth());
        (events, peak, sim.into_world(), wall)
    };
    let stranded = world.record_stranded_flows().len() as u64;
    let flows: Vec<FlowId> = workload.updates.iter().map(|u| u.flow).collect();
    let mut fct_ms = Vec::with_capacity(flows.len());
    for &f in &flows {
        let t = world
            .sink()
            .completions()
            .iter()
            .filter(|&&(_, g, _)| g == f)
            .map(|&(t, _, _)| t)
            .max();
        if let Some(t) = t {
            fct_ms.push(t.as_millis_f64());
        }
    }
    RunMeasure {
        events,
        peak,
        fct_ms,
        stranded,
        wall,
    }
}

/// Run one scale for every system, sharding the (system × seed) grid
/// over `threads` workers. Path tables are computed once per topology
/// and workloads once per seed (both system-independent), then shared
/// read-only across the pool.
pub fn run_scale(
    scale: &Scale,
    runs: u64,
    threads: usize,
    partitions: usize,
    coalescing: bool,
) -> ScaleResult {
    let topo = (scale.build)();
    let timing = (scale.timing)(&topo);
    let tables = Arc::new(PathTables::compute(&topo));
    let flows = topo.node_count();
    // One workload per seed, shared by all four systems (the gravity
    // model depends only on topology and seed). Generation itself is
    // deterministic per index, so it parallelizes like the runs do.
    let workloads: Vec<Workload> = parallel_map(runs as usize, threads, |i| {
        bench_workload(&topo, 1 + i as u64)
    });
    let grid = systems();
    let measures = parallel_map(grid.len() * runs as usize, threads, |job| {
        let (sys_idx, seed_idx) = (job / runs as usize, job % runs as usize);
        run_once(
            &topo,
            &tables,
            &workloads[seed_idx],
            timing,
            grid[sys_idx].1,
            1 + seed_idx as u64,
            Engine {
                partitions,
                coalescing,
            },
        )
    });
    let mut results = Vec::new();
    for (sys_idx, &(label, _)) in grid.iter().enumerate() {
        let mut events = 0u64;
        let mut wall = std::time::Duration::ZERO;
        let mut peak = 0usize;
        let mut stranded = 0u64;
        let mut fct = Samples::new();
        for m in &measures[sys_idx * runs as usize..(sys_idx + 1) * runs as usize] {
            events += m.events;
            wall += m.wall;
            peak = peak.max(m.peak);
            stranded += m.stranded;
            for &t in &m.fct_ms {
                fct.push(t);
            }
        }
        let ps = fct.percentiles(&[50.0, 99.0]);
        results.push(SystemResult {
            system: label,
            runs,
            events,
            wall_secs: wall.as_secs_f64(),
            peak_queue_depth: peak,
            fct_p50_ms: ps[0],
            fct_p99_ms: ps[1],
            completed_flows: fct.len() as u64,
            total_flows: flows as u64 * runs,
            stranded_flows: stranded,
        });
    }
    ScaleResult {
        scale: scale.name,
        nodes: topo.node_count(),
        links: topo.link_count(),
        flows,
        systems: results,
    }
}

fn parallelism_available() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
}

/// Measure run-level thread scaling: the same (scale, system, seeds)
/// cell timed end to end at 1, 2 and 4 workers. Wall times are
/// inherently machine-dependent (and meaningless on a single-core box —
/// `parallelism_available` records what the machine offered), which is
/// why [`crate::json::strip_timing`] drops the whole `thread_scaling`
/// section from the canonical artifact. Emitted as the `run_level` half
/// of that section, next to [`in_run_scaling_probe`]'s `in_run` half.
fn run_level_scaling_probe(smoke: bool) -> Json {
    let all = scales();
    // ft64 for the baseline, fig1 for CI smoke — big enough to amortize
    // thread spawn, small enough to run three times over.
    let scale = if smoke { &all[0] } else { &all[1] };
    let runs = 4u64;
    let system = systems()[0];
    let topo = (scale.build)();
    let timing = (scale.timing)(&topo);
    let tables = Arc::new(PathTables::compute(&topo));
    let workloads: Vec<Workload> = (0..runs).map(|i| bench_workload(&topo, 1 + i)).collect();
    let mut points = Vec::new();
    let mut base_secs = 0.0;
    for threads in [1usize, 2, 4] {
        let start = std::time::Instant::now();
        let _ = parallel_map(runs as usize, threads, |i| {
            run_once(
                &topo,
                &tables,
                &workloads[i],
                timing,
                system.1,
                1 + i as u64,
                Engine {
                    partitions: 1,
                    coalescing: true,
                },
            )
        });
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        if threads == 1 {
            base_secs = secs;
        }
        points.push(Json::Obj(vec![
            ("threads".into(), Json::Num(threads as f64)),
            ("wall_secs".into(), Json::Num(secs)),
            ("speedup".into(), Json::Num(base_secs / secs)),
        ]));
    }
    Json::Obj(vec![
        ("scale".into(), Json::Str(scale.name.into())),
        ("system".into(), Json::Str(system.0.into())),
        ("runs".into(), Json::Num(runs as f64)),
        (
            "parallelism_available".into(),
            Json::Num(parallelism_available() as f64),
        ),
        ("points".into(), Json::Arr(points)),
    ])
}

/// Measure *in-run* scaling: one simulation of one seed through the
/// windowed [`PartitionedSim`] engine at increasing (partitions,
/// threads), against the single-partition single-thread run of the same
/// world as baseline. The merged event order — and therefore every
/// measurement except wall time — is byte-identical at every point; the
/// only thing this probe varies is how many OS threads chew the shard
/// windows. On a single-core machine (`parallelism_available: 1`) the
/// honest expectation is speedup ≤ 1 — threads just interleave and pay
/// the windowing overhead; the numbers are recorded as measured, not
/// massaged. ft4096 for the baseline (the acceptance-scale topology),
/// ft64 for CI smoke.
fn in_run_scaling_probe(smoke: bool) -> Json {
    let all = scales();
    let scale = if smoke { &all[1] } else { &all[3] };
    let system = systems()[1]; // dual-layer: the paper's full protocol
    let topo = (scale.build)();
    let timing = (scale.timing)(&topo);
    let tables = Arc::new(PathTables::compute(&topo));
    let workload = bench_workload(&topo, 1);
    let mut points = Vec::new();
    let mut base_secs = 0.0;
    let mut base_events = 0u64;
    for (partitions, threads) in [(1usize, 1usize), (4, 2), (4, 4)] {
        let (world, batch) = build_world(&topo, &tables, &workload, timing, system.1, 1);
        let part = PodPartitioner::new(&topo, partitions);
        let mut sim = PartitionedSim::new(world, &part, threads)
            .expect("bench configs satisfy the partitioned-engine preconditions");
        sim.schedule_at(SimTime::ZERO, Event::Trigger { batch });
        let start = std::time::Instant::now();
        sim.run_until(horizon())
            .expect("pod cut violated its own lookahead");
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        if points.is_empty() {
            base_secs = secs;
            base_events = sim.events_delivered();
        } else {
            assert_eq!(
                sim.events_delivered(),
                base_events,
                "partitioned run diverged from its own baseline"
            );
        }
        points.push(Json::Obj(vec![
            ("partitions".into(), Json::Num(partitions as f64)),
            ("threads".into(), Json::Num(threads as f64)),
            ("wall_secs".into(), Json::Num(secs)),
            ("speedup".into(), Json::Num(base_secs / secs)),
        ]));
    }
    Json::Obj(vec![
        ("scale".into(), Json::Str(scale.name.into())),
        ("system".into(), Json::Str(system.0.into())),
        ("events".into(), Json::Num(base_events as f64)),
        (
            "parallelism_available".into(),
            Json::Num(parallelism_available() as f64),
        ),
        ("points".into(), Json::Arr(points)),
    ])
}

/// One entry of the artifact's mandatory `partitioning` section: run the
/// scale's seed-1 dual-layer workload through [`PartitionedSim`] at a
/// *fixed* partition count and record the deterministic shape of the
/// partitioned execution — lookahead, window count, per-shard event
/// counts. Every field is a pure function of (topology, workload, cut),
/// so the section is byte-identical no matter what `--partitions` or
/// `--threads` the artifact was generated with.
fn partition_entry(scale: &Scale, partitions: usize) -> Json {
    let topo = (scale.build)();
    let timing = (scale.timing)(&topo);
    let tables = Arc::new(PathTables::compute(&topo));
    let workload = bench_workload(&topo, 1);
    let system = systems()[1];
    let (world, batch) = build_world(&topo, &tables, &workload, timing, system.1, 1);
    let part = PodPartitioner::new(&topo, partitions);
    let mut sim = PartitionedSim::new(world, &part, 1)
        .expect("bench configs satisfy the partitioned-engine preconditions");
    sim.schedule_at(SimTime::ZERO, Event::Trigger { batch });
    sim.run_until(horizon())
        .expect("pod cut violated its own lookahead");
    let per_partition: Vec<Json> = sim
        .shard_events()
        .iter()
        .map(|&n| Json::Num(n as f64))
        .collect();
    Json::Obj(vec![
        ("scale".into(), Json::Str(scale.name.into())),
        ("nodes".into(), Json::Num(topo.node_count() as f64)),
        ("flows".into(), Json::Num(workload.updates.len() as f64)),
        ("partitions".into(), Json::Num(sim.partitions() as f64)),
        (
            "lookahead_ms".into(),
            Json::Num(sim.lookahead().as_millis_f64()),
        ),
        ("windows".into(), Json::Num(sim.windows() as f64)),
        ("events".into(), Json::Num(sim.events_delivered() as f64)),
        ("per_partition_events".into(), Json::Arr(per_partition)),
    ])
}

/// The fixed partition count the `partitioning` section is probed at —
/// independent of `--partitions` so the artifact is reproducible.
const PROBE_PARTITIONS: usize = 4;

/// The artifact's mandatory `partitioning` section: the deterministic
/// execution shape of the windowed engine on ft64 (smoke) or ft4096 plus
/// the parallel-only ft32768 scale (full).
fn partitioning_probe(smoke: bool) -> Json {
    let all = scales();
    let mut entries = Vec::new();
    if smoke {
        entries.push(partition_entry(&all[1], PROBE_PARTITIONS));
    } else {
        entries.push(partition_entry(&all[3], PROBE_PARTITIONS));
        entries.push(ft32768_probe(192));
    }
    Json::Obj(vec![("scales".into(), Json::Arr(entries))])
}

/// One timed windowed run for the `overhead` section: the scale's seed-1
/// dual-layer workload at a fixed (partitions, coalescing) setting on a
/// single in-run worker. Returns (wall seconds, windows, events).
fn overhead_run(
    topo: &Topology,
    tables: &Arc<PathTables>,
    workload: &Workload,
    timing: TimingConfig,
    partitions: usize,
    coalescing: bool,
) -> (f64, u64, u64) {
    let (world, batch) = build_world(topo, tables, workload, timing, systems()[1].1, 1);
    let part = PodPartitioner::new(topo, partitions);
    let mut sim = PartitionedSim::new(world, &part, 1)
        .expect("bench configs satisfy the partitioned-engine preconditions")
        .with_coalescing(coalescing);
    sim.schedule_at(SimTime::ZERO, Event::Trigger { batch });
    let start = std::time::Instant::now();
    sim.run_until(horizon())
        .expect("pod cut violated its own lookahead");
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (secs, sim.windows(), sim.events_delivered())
}

/// The artifact's mandatory `overhead` section for one scale: the
/// sequential baseline timed against the windowed engine at
/// partitions ∈ {1, 4} with coalescing/serial phases on and off. Window
/// counts and events-per-window are pure functions of (workload, seed,
/// cut, coalescing) — the engine's round decisions are front-driven, so
/// they are thread- and machine-invariant and survive
/// [`crate::json::strip_timing`]; the wall fields are measurements and
/// get stripped. The section quantifies what the coalesced/serial-phase
/// machinery buys: the barrier count collapses while the event stream —
/// asserted here against the sequential run — stays byte-identical.
fn overhead_section(scale: &Scale) -> Json {
    let topo = (scale.build)();
    let timing = (scale.timing)(&topo);
    let tables = Arc::new(PathTables::compute(&topo));
    let workload = bench_workload(&topo, 1);
    let system = systems()[1];

    let (world, batch) = build_world(&topo, &tables, &workload, timing, system.1, 1);
    let mut sim = simulation(world);
    sim.schedule_at(SimTime::ZERO, Event::Trigger { batch });
    let start = std::time::Instant::now();
    let _ = sim.run_until(horizon());
    let seq_secs = start.elapsed().as_secs_f64().max(1e-9);
    let seq_events = sim.events_delivered();

    let mut points = Vec::new();
    for (partitions, coalescing) in [(1usize, true), (1, false), (4, true), (4, false)] {
        let (secs, windows, events) =
            overhead_run(&topo, &tables, &workload, timing, partitions, coalescing);
        assert_eq!(
            events, seq_events,
            "windowed run diverged from the sequential baseline"
        );
        points.push(Json::Obj(vec![
            ("partitions".into(), Json::Num(partitions as f64)),
            ("coalescing".into(), Json::Bool(coalescing)),
            ("windows".into(), Json::Num(windows as f64)),
            (
                "events_per_window".into(),
                Json::Num((events as f64 / windows.max(1) as f64).round()),
            ),
            ("wall_secs".into(), Json::Num(secs)),
            (
                "wall_ratio_vs_sequential".into(),
                Json::Num(secs / seq_secs),
            ),
        ]));
    }
    Json::Obj(vec![
        ("scale".into(), Json::Str(scale.name.into())),
        ("system".into(), Json::Str(system.0.into())),
        ("events".into(), Json::Num(seq_events as f64)),
        ("sequential_wall_secs".into(), Json::Num(seq_secs)),
        ("points".into(), Json::Arr(points)),
    ])
}

/// The `overhead` section: ft4096 (the acceptance scale) for the full
/// artifact, ft64 for CI smoke.
fn overhead_probe(smoke: bool) -> Json {
    let all = scales();
    overhead_section(if smoke { &all[1] } else { &all[3] })
}

/// The gate script's FAST-skippable overhead smoke: the ft512 `overhead`
/// section, measured live. `scripts/check.sh` fails the gate when the
/// 4-partition coalescing-on wall ratio exceeds 3x the sequential run
/// (the committed full artifact must show ≤ 2x on ft4096; the looser
/// smoke bound absorbs CI machine noise at the smaller scale).
pub fn overhead_smoke() -> Json {
    overhead_section(&scales()[2])
}

/// Hand-rolled cross-pod migrations for the 32768-switch fat-tree.
///
/// The gravity-model workload generator runs Yen's k-shortest-paths per
/// flow — prohibitive on a 1.1M-link graph — so this derives valid
/// old/new routes directly from the generator's wiring rules
/// (`agg{p}_{j}` uplinks to cores `(p+j) % cores` and `(p+j+1) % cores`;
/// pods are internally complete bipartite): flow `i` moves from
/// `edge{i}_0 → agg{i}_1 → core{(i+1)%128} → agg{i+1}_0 → edge{i+1}_0`
/// to the disjoint-spine `agg{i}_2 → core{(i+2)%128} → agg{i+1}_1`
/// route. Every hop exists by construction; `install_initial_path`
/// re-validates each path against the real topology anyway.
fn ft32768_updates(topo: &Topology, flows: usize) -> Vec<FlowUpdate> {
    let node = |name: String| topo.node_by_name(&name).expect("fat-tree grammar name");
    (0..flows)
        .map(|i| {
            let (a, b) = (i, i + 1);
            let old = Path::new(vec![
                node(format!("edge{a}_0")),
                node(format!("agg{a}_1")),
                node(format!("core{}", (a + 1) % 128)),
                node(format!("agg{b}_0")),
                node(format!("edge{b}_0")),
            ]);
            let new = Path::new(vec![
                node(format!("edge{a}_0")),
                node(format!("agg{a}_2")),
                node(format!("core{}", (a + 2) % 128)),
                node(format!("agg{b}_1")),
                node(format!("edge{b}_0")),
            ]);
            FlowUpdate::new(FlowId(i as u32), Some(old), new, 1.0)
        })
        .collect()
}

/// The 32768-switch scale — feasible only through the partitioned
/// stack: dense all-pairs path tables would need ~16 GiB (the run uses
/// [`PathTables::lazy`], and the NormalMs control model never touches a
/// row), and the sharded windowed engine keeps per-partition state. Runs
/// `flows` cross-pod migrations (192 for the baseline artifact; CI smoke
/// uses fewer via `--ft32768-smoke`) under the dual-layer protocol on an
/// 8-way pod cut and reports the same deterministic shape as
/// [`partition_entry`] plus wall-clock throughput (which
/// [`crate::json::strip_timing`] removes).
pub fn ft32768_probe(flows: usize) -> Json {
    let topo = topologies::synthetic_fat_tree_32768();
    let tables = Arc::new(PathTables::lazy(topo.clone()));
    let updates = ft32768_updates(&topo, flows);
    let config = SimConfig::new(TimingConfig::fat_tree(), 1).with_analysis_gate(false);
    let mut world = NetworkSim::with_path_tables(
        topo.clone(),
        systems()[1].1,
        config,
        None,
        Arc::clone(&tables),
    )
    .with_metrics_sink(Box::new(StreamingMetrics::new()));
    for u in &updates {
        if let Some(old) = &u.old_path {
            world.install_initial_path(u.flow, old, u.size);
        }
    }
    let batch = world.add_batch(updates.clone());
    let part = PodPartitioner::new(&topo, 8);
    let mut sim = PartitionedSim::new(world, &part, 1)
        .expect("fat-tree timing satisfies the partitioned-engine preconditions");
    sim.schedule_at(SimTime::ZERO, Event::Trigger { batch });
    let start = std::time::Instant::now();
    sim.run_until(horizon())
        .expect("pod cut violated its own lookahead");
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let events = sim.events_delivered();
    let per_partition: Vec<Json> = sim
        .shard_events()
        .iter()
        .map(|&n| Json::Num(n as f64))
        .collect();
    Json::Obj(vec![
        ("scale".into(), Json::Str("ft32768".into())),
        ("nodes".into(), Json::Num(topo.node_count() as f64)),
        ("flows".into(), Json::Num(flows as f64)),
        ("partitions".into(), Json::Num(sim.partitions() as f64)),
        (
            "lookahead_ms".into(),
            Json::Num(sim.lookahead().as_millis_f64()),
        ),
        ("windows".into(), Json::Num(sim.windows() as f64)),
        ("events".into(), Json::Num(events as f64)),
        ("per_partition_events".into(), Json::Arr(per_partition)),
        ("wall_secs".into(), Json::Num(secs)),
        (
            "events_per_sec".into(),
            Json::Num((events as f64 / secs).round()),
        ),
    ])
}

/// Measure the static batch verifier's throughput: prepare one bench
/// workload as a plan batch per analysis scale (ft512 and ft4096 for the
/// baseline, ft64 for CI smoke), lint it with
/// [`p4update_analysis::BatchAnalyzer`] at 1, 2 and 4 workers, and run
/// one single-plan delta through the incremental path. Emitted as the
/// artifact's `analysis` section: plans/sec per worker count, the
/// diagnostic tally (generated workloads must be analyzer-clean — the
/// static half of the analyzer-clean ↔ checker-clean cross-validation),
/// and how many plans the incremental pass actually re-linted.
fn analysis_probe(smoke: bool) -> Json {
    use p4update_analysis::{AnalysisContext, BatchAnalyzer, PlanDelta};
    let all = scales();
    let probe_scales: Vec<&Scale> = if smoke {
        vec![&all[1]] // ft64
    } else {
        vec![&all[2], &all[3]] // ft512, ft4096
    };
    let mut entries = Vec::new();
    for scale in probe_scales {
        let topo = (scale.build)();
        let workload = crate::workload::bench_workload(&topo, 1);
        let (plans, installed) = crate::workload::bench_plans(&workload);
        let ctx = AnalysisContext::with_installed(Some(&topo), installed);
        let mut points = Vec::new();
        let mut baseline = None;
        let mut tally = (0usize, 0usize);
        for workers in [1usize, 2, 4] {
            let engine = BatchAnalyzer::new(workers);
            let start = std::time::Instant::now();
            let analysis = engine.analyze(&plans, &ctx);
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            points.push(Json::Obj(vec![
                ("workers".into(), Json::Num(workers as f64)),
                ("wall_secs".into(), Json::Num(secs)),
                (
                    "plans_per_sec".into(),
                    Json::Num((plans.len() as f64 / secs).round()),
                ),
            ]));
            let errors = analysis
                .diagnostics()
                .iter()
                .filter(|d| d.is_error())
                .count();
            tally = (errors, analysis.diagnostics().len() - errors);
            if workers == 1 {
                baseline = Some(analysis);
            }
        }
        // The incremental path: revise one plan (bump its version; still
        // newer than installed, so the batch stays clean) and reanalyze.
        let baseline = baseline.expect("workers=1 ran");
        let mut revised = plans[0].clone();
        revised.version = revised.version.next();
        for (_, uim) in &mut revised.uims {
            uim.version = revised.version;
        }
        let delta = PlanDelta {
            revised: vec![(0, revised)],
            ..PlanDelta::default()
        };
        let incremental = BatchAnalyzer::new(1).reanalyze(&baseline, &delta, &ctx);
        entries.push(Json::Obj(vec![
            ("scale".into(), Json::Str(scale.name.into())),
            ("plans".into(), Json::Num(plans.len() as f64)),
            ("errors".into(), Json::Num(tally.0 as f64)),
            ("warnings".into(), Json::Num(tally.1 as f64)),
            ("points".into(), Json::Arr(points)),
            (
                "incremental_relinted".into(),
                Json::Num(incremental.revalidated() as f64),
            ),
        ]));
    }
    Json::Obj(vec![("scales".into(), Json::Arr(entries))])
}

/// Run the whole benchmark on `threads` workers, with each grid run
/// going through the partitioned engine when `partitions > 1` and window
/// coalescing per `coalescing` (the canonical timing-stripped artifact
/// is byte-identical for every combination — the `partitioning` and
/// `overhead` sections are probed at fixed settings precisely so the
/// CLI flags can't change them). `smoke` restricts to the small scales
/// and seed counts (< 10 s wall) for CI; the full run regenerates the
/// committed baseline.
pub fn run_bench(smoke: bool, threads: usize, partitions: usize, coalescing: bool) -> Json {
    let mut scale_values = Vec::new();
    for scale in &scales() {
        let runs = if smoke {
            scale.smoke_runs
        } else {
            scale.full_runs
        };
        if runs == 0 {
            continue;
        }
        let result = run_scale(scale, runs, threads, partitions, coalescing);
        scale_values.push(scale_to_json(&result));
    }
    let scaling = Json::Obj(vec![
        ("run_level".into(), run_level_scaling_probe(smoke)),
        ("in_run".into(), in_run_scaling_probe(smoke)),
    ]);
    let partitioning = partitioning_probe(smoke);
    let overhead = overhead_probe(smoke);
    let analysis = analysis_probe(smoke);
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("load_factor".into(), Json::Num(LOAD_FACTOR)),
        ("smoke".into(), Json::Bool(smoke)),
        ("thread_scaling".into(), scaling),
        ("partitioning".into(), partitioning),
        ("overhead".into(), overhead),
        ("analysis".into(), analysis),
        ("scales".into(), Json::Arr(scale_values)),
    ])
}

fn scale_to_json(r: &ScaleResult) -> Json {
    let systems = r
        .systems
        .iter()
        .map(|s| {
            let events_per_sec = if s.wall_secs > 0.0 {
                s.events as f64 / s.wall_secs
            } else {
                0.0
            };
            Json::Obj(vec![
                ("system".into(), Json::Str(s.system.into())),
                ("runs".into(), Json::Num(s.runs as f64)),
                ("events".into(), Json::Num(s.events as f64)),
                ("wall_secs".into(), Json::Num(s.wall_secs)),
                ("events_per_sec".into(), Json::Num(events_per_sec.round())),
                (
                    "peak_queue_depth".into(),
                    Json::Num(s.peak_queue_depth as f64),
                ),
                ("fct_p50_ms".into(), Json::Num(s.fct_p50_ms)),
                ("fct_p99_ms".into(), Json::Num(s.fct_p99_ms)),
                (
                    "completion_rate".into(),
                    Json::Num(s.completed_flows as f64 / s.total_flows.max(1) as f64),
                ),
                ("stranded_flows".into(), Json::Num(s.stranded_flows as f64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("scale".into(), Json::Str(r.scale.into())),
        ("nodes".into(), Json::Num(r.nodes as f64)),
        ("links".into(), Json::Num(r.links as f64)),
        ("flows".into(), Json::Num(r.flows as f64)),
        ("systems".into(), Json::Arr(systems)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{strip_timing, validate_report};

    /// The smallest cell end to end: every system completes the Fig.-1
    /// scale workload, produces events, and reports plausible FCTs.
    #[test]
    fn fig1_cell_runs_for_every_system() {
        let scale = &scales()[0];
        let result = run_scale(scale, 1, 1, 1, true);
        assert_eq!(result.nodes, 8);
        assert_eq!(result.systems.len(), 4);
        for s in &result.systems {
            assert_eq!(
                s.completed_flows, s.total_flows,
                "{} did not complete",
                s.system
            );
            assert_eq!(s.stranded_flows, 0, "{} stranded a flow", s.system);
            assert!(s.events > 0);
            assert!(s.peak_queue_depth > 0);
            assert!(s.fct_p50_ms > 0.0 && s.fct_p99_ms >= s.fct_p50_ms);
        }
    }

    #[test]
    fn smoke_report_validates() {
        let report = run_bench(true, 1, 1, true);
        validate_report(&report, 1).unwrap();
        // Smoke mode must not claim full-scale coverage.
        assert!(validate_report(&report, 4).is_err());
    }

    /// The tentpole determinism claim: the canonical (timing-stripped)
    /// artifact is byte-identical whether the grid ran on one worker or
    /// four.
    #[test]
    fn thread_count_does_not_change_the_canonical_artifact() {
        let serial = strip_timing(&run_bench(true, 1, 1, true)).to_string_pretty();
        let sharded = strip_timing(&run_bench(true, 4, 1, true)).to_string_pretty();
        assert_eq!(serial, sharded);
    }

    /// The in-run twin of the claim above: routing every grid run
    /// through the 4-way partitioned engine leaves the canonical
    /// artifact byte-identical to the sequential one.
    #[test]
    fn partition_count_does_not_change_the_canonical_artifact() {
        let sequential = strip_timing(&run_bench(true, 1, 1, true)).to_string_pretty();
        let partitioned = strip_timing(&run_bench(true, 1, 4, true)).to_string_pretty();
        assert_eq!(sequential, partitioned);
    }

    /// The third leg of the determinism claim: disabling window
    /// coalescing (pure fixed-lookahead windows) leaves the canonical
    /// artifact byte-identical — the `overhead` and `partitioning`
    /// probes run at fixed settings, and the grid runs' observables
    /// never depended on the window shape.
    #[test]
    fn coalescing_does_not_change_the_canonical_artifact() {
        let coalesced = strip_timing(&run_bench(true, 1, 4, true)).to_string_pretty();
        let fixed = strip_timing(&run_bench(true, 1, 4, false)).to_string_pretty();
        assert_eq!(coalesced, fixed);
    }

    /// The `overhead` section is mandatory in v4: it must be present,
    /// cover the (partitions, coalescing) grid, and show the ≥5x window
    /// reduction that justifies its existence.
    #[test]
    fn validation_checks_the_overhead_section() {
        let report = run_bench(true, 1, 1, true);
        let mut stripped = report.clone();
        if let Json::Obj(members) = &mut stripped {
            members.retain(|(k, _)| k != "overhead");
        }
        let err = validate_report(&stripped, 1).unwrap_err();
        assert!(err.contains("overhead"), "unhelpful error: {err}");

        // Tamper the window counts: rewriting every `windows` field to
        // the same value erases the coalesced-vs-fixed reduction, and
        // the ≥5x pin must fire.
        let text = report.to_string_pretty();
        let mut broken = String::new();
        for line in text.lines() {
            if line.trim_start().starts_with("\"windows\":") && line.ends_with(',') {
                let indent = &line[..line.len() - line.trim_start().len()];
                broken.push_str(&format!("{indent}\"windows\": 1000,\n"));
            } else {
                broken.push_str(line);
                broken.push('\n');
            }
        }
        let err = validate_report(&Json::parse(&broken).unwrap(), 1).unwrap_err();
        assert!(
            err.contains("5x") || err.contains("windows"),
            "unhelpful error: {err}"
        );
    }

    /// `parallel_map` preserves input order for every thread count,
    /// including more threads than jobs.
    #[test]
    fn parallel_map_is_order_preserving() {
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(37, threads, |i| i * i);
            assert_eq!(got, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(parallel_map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn validation_rejects_tampered_reports() {
        let report = run_bench(true, 1, 1, true);
        let text = report.to_string_pretty();
        validate_report(&Json::parse(&text).unwrap(), 1).unwrap();

        let broken = text.replace("p4update-bench-v4", "other-schema");
        assert!(validate_report(&Json::parse(&broken).unwrap(), 1).is_err());

        let broken = text.replace("\"ez-segway\"", "\"renamed\"");
        assert!(validate_report(&Json::parse(&broken).unwrap(), 1).is_err());

        let broken = text.replace("\"completion_rate\": 1", "\"completion_rate\": 0.5");
        assert!(validate_report(&Json::parse(&broken).unwrap(), 1).is_err());
    }

    /// Superseded schema tags (v1: no `thread_scaling`; v2: flat
    /// `thread_scaling`, no `partitioning` section) must both be
    /// rejected, with the offending tag named in the error.
    #[test]
    fn validation_rejects_superseded_schemas() {
        let report = run_bench(true, 1, 1, true);
        for old in [
            "p4update-bench-v1",
            "p4update-bench-v2",
            "p4update-bench-v3",
        ] {
            let text = report.to_string_pretty().replace("p4update-bench-v4", old);
            let err = validate_report(&Json::parse(&text).unwrap(), 1).unwrap_err();
            assert!(err.contains(old), "unhelpful error: {err}");
        }
    }

    /// The `partitioning` section is mandatory in v3 and its per-shard
    /// event counts must add up to the entry's event total.
    #[test]
    fn validation_checks_the_partitioning_section() {
        let report = run_bench(true, 1, 1, true);
        let mut stripped = report.clone();
        if let Json::Obj(members) = &mut stripped {
            members.retain(|(k, _)| k != "partitioning");
        }
        let err = validate_report(&stripped, 1).unwrap_err();
        assert!(err.contains("partitioning"), "unhelpful error: {err}");

        let text = report.to_string_pretty();
        let broken = text.replace(
            "\"per_partition_events\": [",
            "\"per_partition_events\": [999, ",
        );
        let err = validate_report(&Json::parse(&broken).unwrap(), 1).unwrap_err();
        assert!(
            err.contains("per_partition_events"),
            "unhelpful error: {err}"
        );
    }

    /// Duplicate scale entries and duplicate system entries are both
    /// rejected even when every individual entry would validate.
    #[test]
    fn validation_rejects_duplicate_scales_and_systems() {
        let report = run_bench(true, 1, 1, true);

        let mut dup_scale = report.clone();
        if let Json::Obj(members) = &mut dup_scale {
            for (k, v) in members.iter_mut() {
                if k == "scales" {
                    if let Json::Arr(items) = v {
                        let first = items[0].clone();
                        items.push(first);
                    }
                }
            }
        }
        let err = validate_report(&dup_scale, 1).unwrap_err();
        assert!(err.contains("duplicate scale"), "unhelpful error: {err}");

        let mut dup_system = report.clone();
        if let Json::Obj(members) = &mut dup_system {
            for (k, v) in members.iter_mut() {
                if k == "scales" {
                    if let Json::Arr(items) = v {
                        if let Json::Obj(scale) = &mut items[0] {
                            for (sk, sv) in scale.iter_mut() {
                                if sk == "systems" {
                                    if let Json::Arr(sys) = sv {
                                        let first = sys[0].clone();
                                        sys.push(first);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = validate_report(&dup_system, 1).unwrap_err();
        assert!(err.contains("duplicate system"), "unhelpful error: {err}");
    }
}
