//! The scale runner: drives multi-flow updates over three topology
//! scales for every system under test and aggregates the measurements
//! the `BENCH_p4update.json` baseline records.

use crate::json::Json;
use crate::workload::bench_workload;
use p4update_core::Strategy;
use p4update_des::{Samples, SimDuration, SimTime};
use p4update_net::{topologies, FlowId, Topology};
use p4update_sim::{
    simulation, Event, NetworkSim, SimConfig, StreamingMetrics, System, TimingConfig,
};

/// Schema tag of the emitted artifact; bump on layout changes.
pub const SCHEMA: &str = "p4update-bench-v1";

/// The gravity-model load factor all perf runs use (§9.1's near-capacity
/// multi-flow setting).
pub const LOAD_FACTOR: f64 = 0.55;

/// The four systems every scale measures, with their artifact labels.
pub fn systems() -> [(&'static str, System); 4] {
    [
        ("p4update-sl", System::P4Update(Strategy::ForceSingle)),
        ("p4update-dl", System::P4Update(Strategy::ForceDual)),
        ("ez-segway", System::EzSegway { congestion: true }),
        ("central", System::Central { congestion: true }),
    ]
}

/// One topology scale of the benchmark.
pub struct Scale {
    /// Artifact label ("fig1", "ft64", "ft512").
    pub name: &'static str,
    /// Topology constructor.
    pub build: fn() -> Topology,
    /// Timing model for this scale.
    pub timing: fn(&Topology) -> TimingConfig,
    /// Seeds to run per system at full fidelity.
    pub full_runs: u64,
    /// Seeds to run per system in smoke mode (0 = skipped).
    pub smoke_runs: u64,
}

fn wan_timing(topo: &Topology) -> TimingConfig {
    TimingConfig::wan_multi_flow(topo.centroid())
}

fn dc_timing(_topo: &Topology) -> TimingConfig {
    TimingConfig::fat_tree()
}

/// The benchmark's three scales: Fig.-1-size, 64-switch, and 512-switch.
pub fn scales() -> [Scale; 3] {
    [
        Scale {
            name: "fig1",
            build: topologies::fig1,
            timing: wan_timing,
            full_runs: 20,
            smoke_runs: 2,
        },
        Scale {
            name: "ft64",
            build: topologies::synthetic_fat_tree_64,
            timing: dc_timing,
            full_runs: 5,
            smoke_runs: 1,
        },
        Scale {
            name: "ft512",
            build: topologies::synthetic_fat_tree_512,
            timing: dc_timing,
            full_runs: 2,
            smoke_runs: 0,
        },
    ]
}

/// Measurements of one (scale, system) cell, aggregated over seeds.
pub struct SystemResult {
    /// Artifact label of the system.
    pub system: &'static str,
    /// Seeds run.
    pub runs: u64,
    /// Total events delivered across runs.
    pub events: u64,
    /// Total wall-clock seconds spent inside the event loop.
    pub wall_secs: f64,
    /// Largest pending-event high-water mark over all runs.
    pub peak_queue_depth: usize,
    /// Median flow-completion time (ms since trigger), across all flows
    /// of all runs.
    pub fct_p50_ms: f64,
    /// 99th-percentile flow-completion time (ms).
    pub fct_p99_ms: f64,
    /// Flows that completed inside the horizon, across all runs.
    pub completed_flows: u64,
    /// Flows attempted across all runs (`flows × runs`).
    pub total_flows: u64,
}

/// Measurements of one topology scale.
pub struct ScaleResult {
    /// Scale label.
    pub scale: &'static str,
    /// Switch count.
    pub nodes: usize,
    /// Link count.
    pub links: usize,
    /// Flows updated per run (one per switch, gravity model).
    pub flows: usize,
    /// Per-system cells.
    pub systems: Vec<SystemResult>,
}

/// Run one (topology, system) cell for one seed. Returns
/// `(events, peak_queue_depth, per-flow completion times in ms, wall
/// time)`. A flow missing from the completion-time list failed to finish
/// inside the horizon (ez-Segway can strand flows under contention).
/// Workload construction happens outside the timed section; the returned
/// `Duration` covers only the event loop.
fn run_once(
    topo: &Topology,
    timing: TimingConfig,
    system: System,
    seed: u64,
) -> (u64, usize, Vec<f64>, std::time::Duration) {
    let workload = bench_workload(topo, seed);
    let config = SimConfig::new(timing, seed).with_analysis_gate(false);
    let mut world = NetworkSim::new(
        topo.clone(),
        system,
        config,
        Some(workload.free_capacity.clone()),
    )
    .with_metrics_sink(Box::new(StreamingMetrics::new()));
    for u in &workload.updates {
        if let Some(old) = &u.old_path {
            world.install_initial_path(u.flow, old, u.size);
        }
    }
    let batch = world.add_batch(workload.updates.clone());
    let mut sim = simulation(world);
    sim.schedule_at(SimTime::ZERO, Event::Trigger { batch });
    let start = std::time::Instant::now();
    let _ = sim.run_until(SimTime::ZERO + SimDuration::from_secs(600));
    let wall = start.elapsed();
    let events = sim.events_delivered();
    let peak = sim.peak_queue_depth();
    let world = sim.into_world();
    let flows: Vec<FlowId> = workload.updates.iter().map(|u| u.flow).collect();
    let mut fct = Vec::with_capacity(flows.len());
    for &f in &flows {
        let t = world
            .sink()
            .completions()
            .iter()
            .filter(|&&(_, g, _)| g == f)
            .map(|&(t, _, _)| t)
            .max();
        if let Some(t) = t {
            fct.push(t.as_millis_f64());
        }
    }
    (events, peak, fct, wall)
}

/// Run one scale for every system.
pub fn run_scale(scale: &Scale, runs: u64) -> ScaleResult {
    let topo = (scale.build)();
    let timing = (scale.timing)(&topo);
    let flows = topo.node_count();
    let mut results = Vec::new();
    for (label, system) in systems() {
        let mut events = 0u64;
        let mut wall = std::time::Duration::ZERO;
        let mut peak = 0usize;
        let mut fct = Samples::new();
        for seed in 0..runs {
            let (e, p, times, w) = run_once(&topo, timing, system, 1 + seed);
            events += e;
            wall += w;
            peak = peak.max(p);
            for t in times {
                fct.push(t);
            }
        }
        let ps = fct.percentiles(&[50.0, 99.0]);
        results.push(SystemResult {
            system: label,
            runs,
            events,
            wall_secs: wall.as_secs_f64(),
            peak_queue_depth: peak,
            fct_p50_ms: ps[0],
            fct_p99_ms: ps[1],
            completed_flows: fct.len() as u64,
            total_flows: flows as u64 * runs,
        });
    }
    ScaleResult {
        scale: scale.name,
        nodes: topo.node_count(),
        links: topo.link_count(),
        flows,
        systems: results,
    }
}

/// Run the whole benchmark. `smoke` restricts to the small scales and
/// seed counts (< 10 s wall) for CI; the full run regenerates the
/// committed baseline.
pub fn run_bench(smoke: bool) -> Json {
    let mut scale_values = Vec::new();
    for scale in &scales() {
        let runs = if smoke {
            scale.smoke_runs
        } else {
            scale.full_runs
        };
        if runs == 0 {
            continue;
        }
        let result = run_scale(scale, runs);
        scale_values.push(scale_to_json(&result));
    }
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("load_factor".into(), Json::Num(LOAD_FACTOR)),
        ("smoke".into(), Json::Bool(smoke)),
        ("scales".into(), Json::Arr(scale_values)),
    ])
}

fn scale_to_json(r: &ScaleResult) -> Json {
    let systems = r
        .systems
        .iter()
        .map(|s| {
            let events_per_sec = if s.wall_secs > 0.0 {
                s.events as f64 / s.wall_secs
            } else {
                0.0
            };
            Json::Obj(vec![
                ("system".into(), Json::Str(s.system.into())),
                ("runs".into(), Json::Num(s.runs as f64)),
                ("events".into(), Json::Num(s.events as f64)),
                ("wall_secs".into(), Json::Num(s.wall_secs)),
                ("events_per_sec".into(), Json::Num(events_per_sec.round())),
                (
                    "peak_queue_depth".into(),
                    Json::Num(s.peak_queue_depth as f64),
                ),
                ("fct_p50_ms".into(), Json::Num(s.fct_p50_ms)),
                ("fct_p99_ms".into(), Json::Num(s.fct_p99_ms)),
                (
                    "completion_rate".into(),
                    Json::Num(s.completed_flows as f64 / s.total_flows.max(1) as f64),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("scale".into(), Json::Str(r.scale.into())),
        ("nodes".into(), Json::Num(r.nodes as f64)),
        ("links".into(), Json::Num(r.links as f64)),
        ("flows".into(), Json::Num(r.flows as f64)),
        ("systems".into(), Json::Arr(systems)),
    ])
}

/// Validate a benchmark artifact: schema tag, at least `min_scales`
/// scales, exactly the four expected systems per scale, and finite,
/// plausible numbers throughout. This is what the gate script runs
/// against both the smoke output and the committed baseline.
pub fn validate_report(doc: &Json, min_scales: usize) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema tag must be {SCHEMA:?}"));
    }
    doc.get("load_factor")
        .and_then(Json::as_f64)
        .filter(|l| (0.0..=1.0).contains(l))
        .ok_or("load_factor must be in [0, 1]")?;
    let scales = doc
        .get("scales")
        .and_then(Json::as_arr)
        .ok_or("missing scales array")?;
    if scales.len() < min_scales {
        return Err(format!(
            "need at least {min_scales} scales, found {}",
            scales.len()
        ));
    }
    let expected: Vec<&str> = systems().iter().map(|&(label, _)| label).collect();
    for scale in scales {
        let name = scale
            .get("scale")
            .and_then(Json::as_str)
            .ok_or("scale missing name")?;
        for key in ["nodes", "links", "flows"] {
            scale
                .get(key)
                .and_then(Json::as_f64)
                .filter(|&v| v.is_finite() && v > 0.0)
                .ok_or_else(|| format!("{name}: {key} must be a positive number"))?;
        }
        let systems = scale
            .get("systems")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{name}: missing systems array"))?;
        let labels: Vec<&str> = systems
            .iter()
            .filter_map(|s| s.get("system").and_then(Json::as_str))
            .collect();
        if labels != expected {
            return Err(format!(
                "{name}: systems must be {expected:?}, got {labels:?}"
            ));
        }
        for sys in systems {
            let label = sys.get("system").and_then(Json::as_str).unwrap_or("?");
            for key in [
                "runs",
                "events",
                "events_per_sec",
                "peak_queue_depth",
                "fct_p50_ms",
                "fct_p99_ms",
            ] {
                sys.get(key)
                    .and_then(Json::as_f64)
                    .filter(|&v| v.is_finite() && v > 0.0)
                    .ok_or_else(|| format!("{name}/{label}: {key} must be a positive number"))?;
            }
            let (p50, p99) = (
                sys.get("fct_p50_ms").and_then(Json::as_f64).unwrap_or(0.0),
                sys.get("fct_p99_ms").and_then(Json::as_f64).unwrap_or(0.0),
            );
            if p99 < p50 {
                return Err(format!("{name}/{label}: p99 < p50"));
            }
            // ez-Segway can strand individual flows under contention (it
            // retries forever); everything else must finish everything. A
            // rate below 0.95 means the run itself is broken.
            let rate = sys
                .get("completion_rate")
                .and_then(Json::as_f64)
                .filter(|r| (0.0..=1.0).contains(r))
                .ok_or_else(|| format!("{name}/{label}: completion_rate must be in [0, 1]"))?;
            if rate < 0.95 {
                return Err(format!("{name}/{label}: completion_rate {rate} below 0.95"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smallest cell end to end: every system completes the Fig.-1
    /// scale workload, produces events, and reports plausible FCTs.
    #[test]
    fn fig1_cell_runs_for_every_system() {
        let scale = &scales()[0];
        let result = run_scale(scale, 1);
        assert_eq!(result.nodes, 8);
        assert_eq!(result.systems.len(), 4);
        for s in &result.systems {
            assert_eq!(
                s.completed_flows, s.total_flows,
                "{} did not complete",
                s.system
            );
            assert!(s.events > 0);
            assert!(s.peak_queue_depth > 0);
            assert!(s.fct_p50_ms > 0.0 && s.fct_p99_ms >= s.fct_p50_ms);
        }
    }

    #[test]
    fn smoke_report_validates() {
        let report = run_bench(true);
        validate_report(&report, 1).unwrap();
        // Smoke mode must not claim full-scale coverage.
        assert!(validate_report(&report, 3).is_err());
    }

    #[test]
    fn validation_rejects_tampered_reports() {
        let report = run_bench(true);
        let text = report.to_string_pretty();
        validate_report(&Json::parse(&text).unwrap(), 1).unwrap();

        let broken = text.replace("p4update-bench-v1", "other-schema");
        assert!(validate_report(&Json::parse(&broken).unwrap(), 1).is_err());

        let broken = text.replace("\"ez-segway\"", "\"renamed\"");
        assert!(validate_report(&Json::parse(&broken).unwrap(), 1).is_err());

        let broken = text.replace("\"completion_rate\": 1", "\"completion_rate\": 0.5");
        assert!(validate_report(&Json::parse(&broken).unwrap(), 1).is_err());
    }
}
