//! # p4update-des
//!
//! A deterministic discrete-event simulation (DES) engine, the execution
//! substrate of the P4Update reproduction.
//!
//! The paper evaluates P4Update on BMv2 software switches under Mininet; this
//! crate replaces that testbed with a simulator in which all latency sources
//! (link propagation, control-plane queueing, rule-installation delay) are
//! explicit model parameters. A run is a pure function of the world's initial
//! state and a `u64` seed, which is what lets the harness replay the paper's
//! adversarial scenarios — reordered, delayed, or lost control messages —
//! exactly.
//!
//! ## Pieces
//!
//! - [`SimTime`] / [`SimDuration`]: integer-nanosecond simulated time.
//! - [`World`] / [`Simulation`] / [`Scheduler`]: the event loop. Ties are
//!   broken FIFO by default, so same-instant events are delivered in
//!   scheduling order.
//! - [`EventQueue`] / [`QueueBackend`]: pluggable event storage — a
//!   calendar queue (O(1) amortized, the default) and the original binary
//!   heap, extracting the identical `(time, seq)` total order.
//! - [`Chooser`] / [`ChoiceKind`]: the choice-point seam. Tie-breaks (and
//!   world-defined decisions like per-message faults) route through a
//!   pluggable policy, which is how the `p4update-explore` crate drives
//!   the engine through many interleavings and replays recorded ones.
//! - [`SimRng`]: seedable RNG with the exponential / truncated-normal
//!   samplers the paper's timing model needs (§9.1).
//! - [`Samples`]: empirical CDFs, means, confidence intervals for the
//!   experiment harness.
//! - [`propcheck`]: a tiny in-tree randomized property-test driver (seeded
//!   cases, reproducible failures) used by the repository's test suites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod choice;
mod engine;
pub mod propcheck;
mod queue;
mod rng;
mod stats;
mod time;
mod window;

pub use choice::{ChoiceKind, Chooser, FifoChooser};
pub use engine::{EventRouter, RunOutcome, Scheduler, Simulation, World};
pub use queue::{CalendarQueue, EventQueue, HeapQueue, QueueBackend};
pub use rng::SimRng;
pub use stats::{Reservoir, Samples};
pub use time::{SimDuration, SimTime};
pub use window::{ClassedQueue, FrontCache, Fronts};
