//! Pluggable event queues.
//!
//! The engine extracts pending events in strict `(time, seq)` order; *how*
//! that order is maintained is a backend choice behind the [`EventQueue`]
//! trait. Two implementations exist:
//!
//! - [`HeapQueue`]: the classic `BinaryHeap`, O(log n) per operation. Simple
//!   and allocation-light, but at scale (ft512 peaks above 2 000 pending
//!   events) the comparison-heavy pops dominate the hot loop.
//! - [`CalendarQueue`]: a hierarchical calendar queue / timing wheel. The
//!   near future is a window of power-of-two-width buckets indexed by
//!   `time >> log2(width)` — O(1) amortized schedule and pop — and anything
//!   beyond the window overflows into a far-future binary heap that is
//!   drained into the wheel when the window rotates forward.
//!
//! Both backends realize the *same* strict total order: every pop returns
//! the unique minimum `(time, seq)` key among pending events, so the event
//! sequence delivered to the world is byte-identical whichever backend is
//! installed (`tests/queue_equivalence.rs` proves this differentially on
//! synthetic schedules; the workspace-level harness replays every corpus
//! trace and registry scenario under both).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which [`EventQueue`] implementation a scheduler uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Binary-heap priority queue (the original backend).
    Heap,
    /// Calendar queue with a far-future heap overflow band (the default).
    #[default]
    Calendar,
}

/// A priority queue of events keyed by `(SimTime, seq)`, extracted in
/// strictly increasing key order.
///
/// Implementations may assume keys are never pushed below the key most
/// recently popped (the scheduler clamps to `now`), which is what lets the
/// calendar backend keep only a forward-looking window exact.
pub trait EventQueue<E> {
    /// Insert an event with its total-order key.
    fn push(&mut self, at: SimTime, seq: u64, event: E);
    /// Remove and return the minimum-key event.
    fn pop(&mut self) -> Option<(SimTime, u64, E)>;
    /// The key the next `pop` would return. Takes `&mut self` so backends
    /// may advance lazy internal cursors (the calendar queue sorts its
    /// current bucket on demand).
    fn peek_key(&mut self) -> Option<(SimTime, u64)>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// True when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Pre-size internal storage for roughly `capacity` concurrently
    /// pending events.
    fn reserve(&mut self, capacity: usize);
}

/// An event with its scheduling key. Ordered *inverted* so Rust's max-heap
/// `BinaryHeap` pops the earliest (then lowest-sequence) entry first.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original binary-heap backend.
pub struct HeapQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// An empty heap-backed queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<E> EventQueue<E> for HeapQueue<E> {
    fn push(&mut self, at: SimTime, seq: u64, event: E) {
        self.heap.push(Scheduled { at, seq, event });
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        self.heap.pop().map(|s| (s.at, s.seq, s.event))
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|s| (s.at, s.seq))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn reserve(&mut self, capacity: usize) {
        self.heap.reserve(capacity);
    }
}

/// Number of buckets in the wheel window (power of two).
const NUM_BUCKETS: usize = 1024;
/// log2 of the initial bucket width in nanoseconds: 2^16 ns ≈ 65.5 µs, a
/// few events per bucket under the millisecond-scale timing configs.
const INITIAL_LOG2_WIDTH: u32 = 16;
/// Bucket-width adaptation bounds: 2^8 ns = 256 ns up to 2^32 ns ≈ 4.3 s.
const MIN_LOG2_WIDTH: u32 = 8;
const MAX_LOG2_WIDTH: u32 = 32;
/// Window rotations delivering fewer near events than this double the
/// bucket width (window too fine); more than `NUM_BUCKETS * 8` halve it
/// (buckets too coarse).
const SPARSE_WINDOW: u64 = (NUM_BUCKETS as u64) / 4;
const DENSE_WINDOW: u64 = (NUM_BUCKETS as u64) * 8;

/// Calendar-queue backend: near-future wheel + far-future heap.
///
/// The window covers `[win_start, win_start + NUM_BUCKETS << log2_width)`;
/// an event lands in bucket `(at - win_start) >> log2_width`. Buckets are
/// unsorted until the cursor reaches them, then sorted *descending* once so
/// pops are O(1) `Vec::pop` calls from the back; an event scheduled into
/// the already-sorted current bucket (always at a key ≥ the last pop, per
/// the trait contract) is binary-inserted at its position. A 1-bit-per-
/// bucket occupancy bitmap makes skipping empty buckets a `trailing_zeros`
/// scan rather than a walk. When the wheel drains, the window rotates to
/// the far heap's minimum and every far event now inside the window moves
/// into its bucket; bucket width adapts (×2 / ÷2, deterministically — it
/// is a pure function of the push/pop history) when a window turns out
/// sparse or dense.
pub struct CalendarQueue<E> {
    /// `buckets[i]` holds events for `[win_start + i·W, win_start + (i+1)·W)`.
    buckets: Vec<Vec<Scheduled<E>>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; NUM_BUCKETS / 64],
    /// Window origin (multiple of the bucket width).
    win_start: u64,
    log2_width: u32,
    /// Cursor: buckets below `cur` are empty; `buckets[cur]` is sorted
    /// descending iff `cur_sorted`.
    cur: usize,
    cur_sorted: bool,
    /// Events at or beyond the window end, keyed like the heap backend.
    far: BinaryHeap<Scheduled<E>>,
    /// Pending events in the wheel (excludes `far`).
    near_len: usize,
    /// Near events delivered since the last rotation, for width adaptation.
    delivered_this_window: u64,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// An empty calendar queue with the window at t = 0.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; NUM_BUCKETS / 64],
            win_start: 0,
            log2_width: INITIAL_LOG2_WIDTH,
            cur: 0,
            cur_sorted: false,
            far: BinaryHeap::new(),
            near_len: 0,
            delivered_this_window: 0,
        }
    }

    /// Bucket index for `at`, or `None` when it falls beyond the window.
    fn bucket_of(&self, at: u64) -> Option<usize> {
        let idx = (at - self.win_start) >> self.log2_width;
        (idx < NUM_BUCKETS as u64).then_some(idx as usize)
    }

    fn mark(&mut self, idx: usize) {
        self.occupied[idx / 64] |= 1 << (idx % 64);
    }

    fn unmark(&mut self, idx: usize) {
        self.occupied[idx / 64] &= !(1 << (idx % 64));
    }

    /// Smallest occupied bucket index ≥ `from`, via the bitmap.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= NUM_BUCKETS {
            return None;
        }
        let (mut word, bit) = (from / 64, from % 64);
        let mut bits = self.occupied[word] & (!0u64 << bit);
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word == NUM_BUCKETS / 64 {
                return None;
            }
            bits = self.occupied[word];
        }
    }

    /// Position the cursor on the next non-empty *near* bucket, sorted and
    /// ready to pop. Never rotates the window (callers that may mutate
    /// window position do so explicitly in `pop`; `peek_key` must not move
    /// it, or events popped for a tie-break could no longer be pushed
    /// back). Returns `false` when the wheel is empty.
    fn advance_near(&mut self) -> bool {
        if self.near_len == 0 {
            return false;
        }
        loop {
            if !self.buckets[self.cur].is_empty() {
                if !self.cur_sorted {
                    // Descending by (at, seq): the minimum ends at the
                    // back, so popping is `Vec::pop`.
                    self.buckets[self.cur]
                        .sort_unstable_by_key(|s| std::cmp::Reverse((s.at, s.seq)));
                    self.cur_sorted = true;
                }
                return true;
            }
            let idx = self
                .next_occupied(self.cur + 1)
                .expect("near_len > 0 ⇒ some bucket is occupied");
            self.cur = idx;
            self.cur_sorted = false;
        }
    }

    /// Move the window so it starts at the far heap's minimum and pull
    /// every far event now inside it into the wheel.
    fn rotate(&mut self) {
        // Adapt the bucket width from the density of the window just
        // finished — deterministic: depends only on the event history.
        if self.delivered_this_window < SPARSE_WINDOW && self.log2_width < MAX_LOG2_WIDTH {
            self.log2_width += 1;
        } else if self.delivered_this_window > DENSE_WINDOW && self.log2_width > MIN_LOG2_WIDTH {
            self.log2_width -= 1;
        }
        self.delivered_this_window = 0;

        let min_at = self
            .far
            .peek()
            .expect("rotate with far events")
            .at
            .as_nanos();
        self.win_start = min_at & !((1u64 << self.log2_width) - 1);
        self.cur = 0;
        self.cur_sorted = false;
        while let Some(head) = self.far.peek() {
            match self.bucket_of(head.at.as_nanos()) {
                Some(idx) => {
                    let s = self.far.pop().expect("peeked entry exists");
                    self.buckets[idx].push(s);
                    self.mark(idx);
                    self.near_len += 1;
                }
                None => break,
            }
        }
        self.cur = self.next_occupied(0).expect("rotation moved ≥ 1 event");
    }
}

impl<E> EventQueue<E> for CalendarQueue<E> {
    fn push(&mut self, at: SimTime, seq: u64, event: E) {
        let ns = at.as_nanos();
        // Keys below the window start cannot occur for *new* events (the
        // scheduler clamps to `now`), but the engine re-pushes a popped
        // event when it lies beyond the run horizon; its key is ≥ now and
        // therefore ≥ win_start as well.
        debug_assert!(ns >= self.win_start, "push below the window start");
        match self.bucket_of(ns) {
            Some(idx) => {
                let s = Scheduled { at, seq, event };
                if idx == self.cur && self.cur_sorted {
                    // Keep the ready bucket sorted: binary-insert into the
                    // descending run. New keys are usually near the back
                    // (they are ≥ the last pop), so the memmove is short.
                    let bucket = &mut self.buckets[idx];
                    let pos = bucket.partition_point(|s2| (s2.at, s2.seq) > (at, seq));
                    bucket.insert(pos, s);
                } else {
                    self.buckets[idx].push(s);
                    if idx < self.cur {
                        // Unreachable under the trait contract (keys never
                        // go below the last pop, whose bucket the cursor is
                        // at or before) — but rewinding keeps the queue
                        // correct for any caller, not just the scheduler.
                        self.cur = idx;
                        self.cur_sorted = false;
                    }
                }
                self.mark(idx);
                self.near_len += 1;
            }
            None => self.far.push(Scheduled { at, seq, event }),
        }
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        if !self.advance_near() {
            if self.far.is_empty() {
                return None;
            }
            self.rotate();
            let ready = self.advance_near();
            debug_assert!(ready, "rotation populates the wheel");
        }
        let s = self.buckets[self.cur]
            .pop()
            .expect("advance found an event");
        if self.buckets[self.cur].is_empty() {
            self.unmark(self.cur);
        }
        self.near_len -= 1;
        self.delivered_this_window += 1;
        Some((s.at, s.seq, s.event))
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if self.advance_near() {
            let s = self.buckets[self.cur]
                .last()
                .expect("advance found an event");
            return Some((s.at, s.seq));
        }
        // Wheel empty: the far heap's minimum is the global minimum. Read
        // it without rotating so a peek never moves the window.
        self.far.peek().map(|s| (s.at, s.seq))
    }

    fn len(&self) -> usize {
        self.near_len + self.far.len()
    }

    fn reserve(&mut self, capacity: usize) {
        // Spread the hint across the wheel (the steady-state resting place
        // of pending events) and give the overflow band the rest.
        let per_bucket = capacity.div_ceil(NUM_BUCKETS);
        for b in &mut self.buckets {
            b.reserve(per_bucket);
        }
        self.far.reserve(capacity / 4);
    }
}

/// Enum-dispatched backend storage: static dispatch on the hot path (the
/// engine's pop loop inlines through the match) without adding a type
/// parameter to [`crate::Scheduler`].
pub(crate) enum QueueImpl<E> {
    Heap(HeapQueue<E>),
    Calendar(Box<CalendarQueue<E>>),
}

impl<E> QueueImpl<E> {
    pub(crate) fn new(backend: QueueBackend) -> Self {
        match backend {
            QueueBackend::Heap => QueueImpl::Heap(HeapQueue::new()),
            QueueBackend::Calendar => QueueImpl::Calendar(Box::default()),
        }
    }

    pub(crate) fn backend(&self) -> QueueBackend {
        match self {
            QueueImpl::Heap(_) => QueueBackend::Heap,
            QueueImpl::Calendar(_) => QueueBackend::Calendar,
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, seq: u64, event: E) {
        match self {
            QueueImpl::Heap(q) => q.push(at, seq, event),
            QueueImpl::Calendar(q) => q.push(at, seq, event),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        match self {
            QueueImpl::Heap(q) => q.pop(),
            QueueImpl::Calendar(q) => q.pop(),
        }
    }

    pub(crate) fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        match self {
            QueueImpl::Heap(q) => q.peek_key(),
            QueueImpl::Calendar(q) => q.peek_key(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            QueueImpl::Heap(q) => q.len(),
            QueueImpl::Calendar(q) => q.len(),
        }
    }

    pub(crate) fn reserve(&mut self, capacity: usize) {
        match self {
            QueueImpl::Heap(q) => q.reserve(capacity),
            QueueImpl::Calendar(q) => q.reserve(capacity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn drain<E, Q: EventQueue<E>>(q: &mut Q) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((at, seq, _)) = q.pop() {
            out.push((at.as_nanos(), seq));
        }
        out
    }

    #[test]
    fn calendar_pops_in_key_order() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        let keys: [u64; 7] = [5_000_000, 0, 0, 1 << 40, 77, 5_000_000, 123_456_789];
        for (seq, &ns) in keys.iter().enumerate() {
            q.push(SimTime::from_nanos(ns), seq as u64, 0);
        }
        let order = drain(&mut q);
        let mut expect: Vec<(u64, u64)> = keys
            .iter()
            .enumerate()
            .map(|(s, &ns)| (ns, s as u64))
            .collect();
        expect.sort_unstable();
        assert_eq!(order, expect);
    }

    #[test]
    fn calendar_matches_heap_on_random_interleaved_workload() {
        // Random mixture of pushes (with monotone-floored keys, as the
        // scheduler guarantees) and pops, compared pop-for-pop.
        for seed in 0..20 {
            let mut rng = SimRng::new(seed);
            let mut heap: HeapQueue<u64> = HeapQueue::new();
            let mut cal: CalendarQueue<u64> = CalendarQueue::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for _ in 0..3_000 {
                if rng.uniform_usize(3) > 0 || heap.is_empty() {
                    // Delays spanning sub-bucket to far-band scales.
                    let delay = match rng.uniform_usize(4) {
                        0 => rng.uniform_usize(1_000) as u64,
                        1 => rng.uniform_usize(1 << 16) as u64,
                        2 => rng.uniform_usize(1 << 26) as u64,
                        _ => rng.uniform_usize(1 << 36) as u64,
                    };
                    let at = SimTime::from_nanos(now + delay);
                    heap.push(at, seq, seq);
                    cal.push(at, seq, seq);
                    seq += 1;
                } else {
                    assert_eq!(heap.peek_key(), cal.peek_key(), "seed {seed}");
                    let a = heap.pop();
                    let b = cal.pop();
                    match (&a, &b) {
                        (Some((at, s1, e1)), Some((bt, s2, e2))) => {
                            assert_eq!((at, s1, e1), (bt, s2, e2), "seed {seed}");
                            now = at.as_nanos();
                        }
                        _ => panic!(
                            "seed {seed}: heap {:?} vs calendar {:?}",
                            a.is_some(),
                            b.is_some()
                        ),
                    }
                }
                assert_eq!(heap.len(), cal.len(), "seed {seed}");
            }
            assert_eq!(drain(&mut heap), drain(&mut cal), "seed {seed}");
        }
    }

    #[test]
    fn calendar_handles_same_instant_bursts_fifo() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        let t = SimTime::from_nanos(42);
        for seq in 0..500 {
            q.push(t, seq, seq);
        }
        // Interleave pops with same-time pushes into the sorted bucket.
        let mut seen = Vec::new();
        for _ in 0..100 {
            seen.push(q.pop().unwrap().1);
        }
        for seq in 500..600 {
            q.push(t, seq, seq);
        }
        while let Some((_, seq, _)) = q.pop() {
            seen.push(seq);
        }
        assert_eq!(seen, (0..600).collect::<Vec<_>>());
    }

    #[test]
    fn calendar_rotates_through_sparse_far_future() {
        // Events far apart force repeated rotations (and width doubling).
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        let mut expect = Vec::new();
        for i in 0..50u64 {
            let ns = i * (1 << 34); // ~17 s apart: always in the far band
            q.push(SimTime::from_nanos(ns), i, i);
            expect.push((ns, i));
        }
        assert_eq!(drain(&mut q), expect);
    }

    #[test]
    fn reserve_reaches_both_backends() {
        // Smoke: the hint is accepted and does not disturb ordering.
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            let mut q = QueueImpl::new(backend);
            q.reserve(4096);
            q.push(SimTime::from_nanos(10), 0, 1u8);
            q.push(SimTime::from_nanos(5), 1, 2u8);
            assert_eq!(q.pop().map(|(t, s, _)| (t.as_nanos(), s)), Some((5, 1)));
            assert_eq!(q.pop().map(|(t, s, _)| (t.as_nanos(), s)), Some((10, 0)));
            assert!(q.pop().is_none());
        }
    }
}
