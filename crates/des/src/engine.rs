//! The discrete-event engine.
//!
//! The engine is a priority queue of timestamped events plus a world that
//! consumes them. Determinism is the design constraint everything else bends
//! to: two events at the same instant are delivered in the order they were
//! scheduled (FIFO tie-break on a monotonically increasing sequence number),
//! so a run is a pure function of (world, seed).
//!
//! The FIFO tie-break is one *policy* behind the [`Chooser`] seam: the
//! default [`FifoChooser`] reproduces it exactly, while an exploring
//! chooser (see `p4update-explore`) may pick any of the tied events and
//! thereby steer the run through a different interleaving.

use crate::choice::{ChoiceKind, Chooser, FifoChooser};
use crate::queue::{QueueBackend, QueueImpl};
use crate::time::{SimDuration, SimTime};

/// A world that reacts to events of type `E`.
///
/// The handler receives a [`Scheduler`] through which it may schedule further
/// events; it must not assume anything about wall-clock time.
pub trait World {
    /// The event payload type this world consumes.
    type Event;

    /// Handle one event at simulated time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Routes an event to the index of the queue partition that owns it (see
/// [`Scheduler::set_partitions`]); indices out of range are clamped.
pub type EventRouter<E> = Box<dyn FnMut(&E) -> usize + Send>;

/// The event queue handed to [`World::handle`]; schedules future events.
///
/// Event storage is a pluggable [`crate::EventQueue`] backend selected via
/// [`QueueBackend`] (calendar queue by default, binary heap on request);
/// both realize the identical `(time, seq)` delivery order. Pending/peak
/// counters are tracked here, independent of the backend, so observability
/// (e.g. [`Simulation::peak_queue_depth`]) is backend-invariant by
/// construction.
pub struct Scheduler<E> {
    queue: QueueImpl<E>,
    /// Extra per-partition queues (partitions `1..n`); empty in the default
    /// single-partition configuration, in which case `queue` is the whole
    /// story and the hot paths are exactly the pre-partitioning ones.
    shards: Vec<QueueImpl<E>>,
    /// Routes an event to its partition index (clamped to the shard count).
    /// Only consulted when `shards` is non-empty.
    router: Option<EventRouter<E>>,
    next_seq: u64,
    now: SimTime,
    chooser: Box<dyn Chooser>,
    /// Cached [`Chooser::is_trivial`] so the hot pop path branches on a
    /// plain bool instead of making a virtual call per event.
    trivial: bool,
    /// Total pending events across all shards (maintained incrementally so
    /// sharding doesn't turn `pending()` into a sum loop).
    pending: usize,
    peak_pending: usize,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at t = 0 with the default FIFO tie-break policy
    /// and the default (calendar) queue backend.
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::default())
    }

    /// An empty scheduler using the given queue backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        Scheduler {
            queue: QueueImpl::new(backend),
            shards: Vec::new(),
            router: None,
            next_seq: 0,
            now: SimTime::ZERO,
            chooser: Box::new(FifoChooser),
            trivial: true,
            pending: 0,
            peak_pending: 0,
        }
    }

    /// Shard the pending-event queue into `partitions` per-partition queues,
    /// with `router` mapping each event to its partition (out-of-range
    /// results clamp to the last partition). Any already-pending events are
    /// migrated with their `(time, seq)` keys intact.
    ///
    /// Delivery order is **byte-identical** to the unsharded scheduler at
    /// any partition count: every pop takes the global minimum `(time, seq)`
    /// key across shards, and tie-gathering for a non-trivial [`Chooser`]
    /// collects same-time events from *all* shards and presents them in
    /// global sequence order — never in shard-scan order.
    pub fn set_partitions(&mut self, partitions: usize, router: EventRouter<E>) {
        assert!(partitions >= 1, "at least one partition is required");
        let backend = self.queue.backend();
        let mut old = std::mem::replace(&mut self.queue, QueueImpl::new(backend));
        let mut old_shards = std::mem::take(&mut self.shards);
        self.shards = (1..partitions).map(|_| QueueImpl::new(backend)).collect();
        self.router = Some(router);
        while let Some((at, seq, event)) = old.pop() {
            self.route_push(at, seq, event);
        }
        for mut shard in old_shards.drain(..) {
            while let Some((at, seq, event)) = shard.pop() {
                self.route_push(at, seq, event);
            }
        }
    }

    /// Number of partitions the queue is sharded into (1 = unsharded).
    pub fn partitions(&self) -> usize {
        self.shards.len() + 1
    }

    /// Push with an explicit key into the shard the router assigns.
    fn route_push(&mut self, at: SimTime, seq: u64, event: E) {
        if self.shards.is_empty() {
            self.queue.push(at, seq, event);
        } else {
            let r = self
                .router
                .as_mut()
                .map(|route| route(&event))
                .unwrap_or(0)
                .min(self.shards.len());
            if r == 0 {
                self.queue.push(at, seq, event);
            } else {
                self.shards[r - 1].push(at, seq, event);
            }
        }
        self.pending += 1;
    }

    /// The queue backend in use.
    pub fn backend(&self) -> QueueBackend {
        self.queue.backend()
    }

    /// Switch the queue backend, migrating any pending events (their
    /// `(time, seq)` keys — and therefore delivery order — are preserved).
    pub fn set_backend(&mut self, backend: QueueBackend) {
        if self.queue.backend() == backend {
            return;
        }
        let migrate = |queue: &mut QueueImpl<E>| {
            let mut next = QueueImpl::new(backend);
            next.reserve(queue.len());
            while let Some((at, seq, event)) = queue.pop() {
                next.push(at, seq, event);
            }
            *queue = next;
        };
        migrate(&mut self.queue);
        for shard in &mut self.shards {
            migrate(shard);
        }
    }

    /// Reserve queue capacity up front so steady-state runs never reallocate
    /// mid-simulation. The hint reaches whichever backend is installed.
    pub fn reserve(&mut self, capacity: usize) {
        if self.shards.is_empty() {
            self.queue.reserve(capacity);
        } else {
            let per = capacity / (self.shards.len() + 1) + 1;
            self.queue.reserve(per);
            for shard in &mut self.shards {
                shard.reserve(per);
            }
        }
    }

    /// Replace the choice-point policy (tie-breaks and world-level
    /// decisions). The default is [`FifoChooser`].
    pub fn set_chooser(&mut self, chooser: Box<dyn Chooser>) {
        self.trivial = chooser.is_trivial();
        self.chooser = chooser;
    }

    /// Resolve a world-level choice point (e.g., a per-message fault
    /// decision) through the installed chooser. `arity` must be at least 1;
    /// the result is always in `[0, arity)`, and `0` means "default".
    pub fn choose(&mut self, kind: ChoiceKind, arity: usize) -> usize {
        assert!(arity >= 1, "choice point with no alternatives");
        if arity == 1 {
            return 0;
        }
        let pick = self.chooser.choose(kind, arity);
        assert!(
            pick < arity,
            "chooser picked {pick} at a {kind:?} choice point of arity {arity}"
        );
        pick
    }

    /// Current simulated time (the timestamp of the event being handled).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedule `event` at an absolute time. Events scheduled in the past are
    /// clamped to `now`: delivering them "immediately" keeps causality (a
    /// handler can never observe time moving backwards).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.route_push(at, seq, event);
        if self.pending > self.peak_pending {
            self.peak_pending = self.pending;
        }
    }

    /// Re-insert an event with its original key after a pop (horizon
    /// push-back). Not a new scheduling: pending returns to its pre-pop
    /// value, so the peak high-water mark is untouched.
    fn unpop(&mut self, at: SimTime, seq: u64, event: E) {
        self.route_push(at, seq, event);
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// High-water mark of the pending-event queue over the whole run — the
    /// "peak queue depth" the perf harness reports.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Remove and return the next event to deliver.
    ///
    /// With the trivial (FIFO) chooser this is a plain heap pop. With an
    /// exploring chooser, all events tied at the earliest timestamp are
    /// gathered in FIFO order and presented as a [`ChoiceKind::TieBreak`]
    /// choice point; the unchosen ones go back on the queue (their original
    /// sequence numbers keep the relative FIFO order stable).
    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        let popped = if self.shards.is_empty() {
            self.pop_single()
        } else {
            self.pop_sharded()
        };
        if popped.is_some() {
            self.pending -= 1;
        }
        popped
    }

    fn pop_single(&mut self) -> Option<(SimTime, u64, E)> {
        if self.trivial {
            return self.queue.pop();
        }
        let first = self.queue.pop()?;
        let at = first.0;
        // The queue pops same-time events in increasing sequence order, so
        // `tied` is in FIFO order and index 0 is the historical pick.
        let mut tied = vec![first];
        while self.queue.peek_key().is_some_and(|(t, _)| t == at) {
            tied.push(self.queue.pop().expect("peeked event exists"));
        }
        self.resolve_tie(tied, None)
    }

    /// Pop across partitioned queues: the global minimum `(time, seq)` key
    /// wins, so sharding is invisible in the delivered order.
    fn pop_sharded(&mut self) -> Option<(SimTime, u64, E)> {
        if self.trivial {
            let mut best: Option<(SimTime, u64, usize)> = None;
            if let Some((t, s)) = self.queue.peek_key() {
                best = Some((t, s, 0));
            }
            for (i, shard) in self.shards.iter_mut().enumerate() {
                if let Some((t, s)) = shard.peek_key() {
                    if best.is_none_or(|(bt, bs, _)| (t, s) < (bt, bs)) {
                        best = Some((t, s, i + 1));
                    }
                }
            }
            let (_, _, idx) = best?;
            return if idx == 0 {
                self.queue.pop()
            } else {
                self.shards[idx - 1].pop()
            };
        }
        // Non-trivial chooser: gather the tie set at the earliest timestamp
        // from *every* shard, then order it by global sequence number. A
        // shard-scan order here would leak the partitioning into the
        // choice-point arity/indexing, breaking trace replay.
        let mut at: Option<SimTime> = None;
        if let Some((t, _)) = self.queue.peek_key() {
            at = Some(t);
        }
        for shard in &mut self.shards {
            if let Some((t, _)) = shard.peek_key() {
                if at.is_none_or(|a| t < a) {
                    at = Some(t);
                }
            }
        }
        let at = at?;
        let mut tied: Vec<(SimTime, u64, E, usize)> = Vec::new();
        while self.queue.peek_key().is_some_and(|(t, _)| t == at) {
            let (t, s, e) = self.queue.pop().expect("peeked event exists");
            tied.push((t, s, e, 0));
        }
        for (i, shard) in self.shards.iter_mut().enumerate() {
            while shard.peek_key().is_some_and(|(t, _)| t == at) {
                let (t, s, e) = shard.pop().expect("peeked event exists");
                tied.push((t, s, e, i + 1));
            }
        }
        tied.sort_by_key(|&(_, seq, _, _)| seq);
        let shards_of: Vec<usize> = tied.iter().map(|&(_, _, _, shard)| shard).collect();
        let tied: Vec<(SimTime, u64, E)> = tied.into_iter().map(|(t, s, e, _)| (t, s, e)).collect();
        self.resolve_tie(tied, Some(shards_of))
    }

    /// Present a FIFO-ordered tie set to the chooser; push the unchosen
    /// events back where they came from (original keys intact).
    fn resolve_tie(
        &mut self,
        mut tied: Vec<(SimTime, u64, E)>,
        shards_of: Option<Vec<usize>>,
    ) -> Option<(SimTime, u64, E)> {
        let pick = if tied.len() == 1 {
            0
        } else {
            let pick = self.chooser.choose(ChoiceKind::TieBreak, tied.len());
            assert!(
                pick < tied.len(),
                "chooser picked {pick} at a tie of arity {}",
                tied.len()
            );
            pick
        };
        let chosen = tied.remove(pick);
        for (i, (t, seq, event)) in tied.into_iter().enumerate() {
            let src = i + usize::from(i >= pick);
            match shards_of.as_ref().map(|s| s[src]).unwrap_or(0) {
                0 => self.queue.push(t, seq, event),
                s => self.shards[s - 1].push(t, seq, event),
            }
        }
        Some(chosen)
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    QueueDrained {
        /// Time of the last delivered event.
        finished_at: SimTime,
        /// Total number of events delivered.
        events: u64,
    },
    /// The configured horizon was reached with events still pending.
    HorizonReached {
        /// The horizon that stopped the run.
        horizon: SimTime,
        /// Total number of events delivered before stopping.
        events: u64,
    },
    /// The event budget was exhausted (livelock guard).
    EventBudgetExhausted {
        /// The time at which the budget ran out.
        stopped_at: SimTime,
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl RunOutcome {
    /// True when the queue drained (the normal way a scenario ends).
    pub fn drained(&self) -> bool {
        matches!(self, RunOutcome::QueueDrained { .. })
    }
}

/// The simulation driver: owns the world and the scheduler.
pub struct Simulation<W: World> {
    world: W,
    sched: Scheduler<W::Event>,
    events_delivered: u64,
    /// Hard cap on delivered events; protects tests against livelock from a
    /// buggy world that reschedules forever. Generous by default.
    event_budget: u64,
}

impl<W: World> Simulation<W> {
    /// Wrap a world, starting at t = 0 with an empty queue.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
            events_delivered: 0,
            event_budget: u64::MAX,
        }
    }

    /// Replace the livelock guard (delivered-event cap).
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Pre-size the event queue (see [`Scheduler::reserve`]).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.sched.reserve(capacity);
        self
    }

    /// Select the event-queue backend (see [`Scheduler::set_backend`]).
    /// Pending events migrate, so this may be called after seeding the
    /// queue; delivery order is identical for every backend.
    pub fn with_queue_backend(mut self, backend: QueueBackend) -> Self {
        self.sched.set_backend(backend);
        self
    }

    /// The event-queue backend in use.
    pub fn queue_backend(&self) -> QueueBackend {
        self.sched.backend()
    }

    /// Replace the choice-point policy (see [`Scheduler::set_chooser`]).
    pub fn with_chooser(mut self, chooser: Box<dyn Chooser>) -> Self {
        self.sched.set_chooser(chooser);
        self
    }

    /// Shard the event queue by partition (see [`Scheduler::set_partitions`]).
    /// Delivery order — including tie-break choice points — is byte-identical
    /// to the unsharded simulation at any partition count.
    pub fn with_partitions(mut self, partitions: usize, router: EventRouter<W::Event>) -> Self {
        self.sched.set_partitions(partitions, router);
        self
    }

    /// Number of event-queue partitions (1 = unsharded).
    pub fn partitions(&self) -> usize {
        self.sched.partitions()
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for pre-run configuration).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Total events delivered so far.
    pub fn events_delivered(&self) -> u64 {
        self.events_delivered
    }

    /// High-water mark of pending events (see [`Scheduler::peak_pending`]).
    pub fn peak_queue_depth(&self) -> usize {
        self.sched.peak_pending()
    }

    /// Events currently pending across all queue partitions.
    pub fn pending_events(&self) -> usize {
        self.sched.pending()
    }

    /// Seed the queue before running.
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) {
        self.sched.schedule_at(at, event);
    }

    /// Run until the queue drains.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::from_nanos(u64::MAX))
    }

    /// Run until the queue drains or simulated time would exceed `horizon`.
    /// Events at exactly `horizon` are still delivered.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            if self.events_delivered >= self.event_budget {
                return RunOutcome::EventBudgetExhausted {
                    stopped_at: self.sched.now(),
                    budget: self.event_budget,
                };
            }
            let Some((at, seq, event)) = self.sched.pop() else {
                return RunOutcome::QueueDrained {
                    finished_at: self.sched.now(),
                    events: self.events_delivered,
                };
            };
            if at > horizon {
                // Push back (original key intact): a later `run_until` with
                // a larger horizon must still see this event, in order.
                self.sched.unpop(at, seq, event);
                return RunOutcome::HorizonReached {
                    horizon,
                    events: self.events_delivered,
                };
            }
            self.sched.now = at;
            self.events_delivered += 1;
            self.world.handle(at, event, &mut self.sched);
        }
    }

    /// Deliver exactly one event, if any is pending. Returns its timestamp.
    /// Useful for lock-step tests that interleave assertions with events.
    pub fn step(&mut self) -> Option<SimTime> {
        let (at, _seq, event) = self.sched.pop()?;
        self.sched.now = at;
        self.events_delivered += 1;
        self.world.handle(at, event, &mut self.sched);
        Some(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records the order events arrive in.
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, event: u32, _sched: &mut Scheduler<u32>) {
            self.seen.push((now, event));
        }
    }

    fn ms(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(n)
    }

    #[test]
    fn events_deliver_in_time_order() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.schedule_at(ms(30), 3);
        sim.schedule_at(ms(10), 1);
        sim.schedule_at(ms(20), 2);
        assert!(sim.run().drained());
        let order: Vec<u32> = sim.world().seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        for i in 0..100 {
            sim.schedule_at(ms(5), i);
        }
        sim.run();
        let order: Vec<u32> = sim.world().seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn horizon_stops_and_resumes() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.schedule_at(ms(10), 1);
        sim.schedule_at(ms(20), 2);
        let out = sim.run_until(ms(15));
        assert_eq!(
            out,
            RunOutcome::HorizonReached {
                horizon: ms(15),
                events: 1
            }
        );
        assert_eq!(sim.world().seen.len(), 1);
        assert!(sim.run().drained());
        assert_eq!(sim.world().seen.len(), 2);
    }

    #[test]
    fn events_at_horizon_are_delivered() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.schedule_at(ms(15), 1);
        sim.run_until(ms(15));
        assert_eq!(sim.world().seen.len(), 1);
    }

    /// A world that chains: each event schedules the next until a countdown
    /// hits zero.
    struct Chain {
        fired: u32,
    }
    impl World for Chain {
        type Event = u32;
        fn handle(&mut self, _now: SimTime, event: u32, sched: &mut Scheduler<u32>) {
            self.fired += 1;
            if event > 0 {
                sched.schedule_in(SimDuration::from_millis(1), event - 1);
            }
        }
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut sim = Simulation::new(Chain { fired: 0 });
        sim.schedule_at(ms(0), 9);
        let out = sim.run();
        assert!(out.drained());
        assert_eq!(sim.world().fired, 10);
        assert_eq!(sim.now(), ms(9));
    }

    #[test]
    fn event_budget_stops_livelock() {
        struct Forever;
        impl World for Forever {
            type Event = ();
            fn handle(&mut self, _now: SimTime, _e: (), sched: &mut Scheduler<()>) {
                sched.schedule_in(SimDuration::ZERO, ());
            }
        }
        let mut sim = Simulation::new(Forever).with_event_budget(1000);
        sim.schedule_at(SimTime::ZERO, ());
        let out = sim.run();
        assert_eq!(
            out,
            RunOutcome::EventBudgetExhausted {
                stopped_at: SimTime::ZERO,
                budget: 1000
            }
        );
    }

    #[test]
    fn past_events_clamp_to_now() {
        struct PastScheduler {
            second_delivery: Option<SimTime>,
        }
        impl World for PastScheduler {
            type Event = u8;
            fn handle(&mut self, now: SimTime, e: u8, sched: &mut Scheduler<u8>) {
                if e == 0 {
                    // Try to schedule into the past.
                    sched.schedule_at(SimTime::ZERO, 1);
                } else {
                    self.second_delivery = Some(now);
                }
            }
        }
        let mut sim = Simulation::new(PastScheduler {
            second_delivery: None,
        });
        sim.schedule_at(ms(10), 0);
        sim.run();
        assert_eq!(sim.world().second_delivery, Some(ms(10)));
    }

    /// Picks alternative 0 like FIFO, but through the non-trivial seam
    /// path (tie sets are gathered and presented).
    struct ExplicitFifo;
    impl Chooser for ExplicitFifo {
        fn choose(&mut self, _kind: ChoiceKind, _arity: usize) -> usize {
            0
        }
    }

    /// Always picks the newest tied event (reverses FIFO).
    struct Lifo;
    impl Chooser for Lifo {
        fn choose(&mut self, _kind: ChoiceKind, arity: usize) -> usize {
            arity - 1
        }
    }

    /// Regression pin for the choice-point seam: the default policy is
    /// FIFO, and routing the same run through an explicit always-0 chooser
    /// (the non-trivial seam path) delivers the identical order.
    #[test]
    fn default_policy_is_fifo_and_choosing_zero_matches_it() {
        let run = |chooser: Option<Box<dyn Chooser>>| -> Vec<u32> {
            let mut sim = Simulation::new(Recorder { seen: vec![] });
            if let Some(c) = chooser {
                sim = sim.with_chooser(c);
            }
            for i in 0..50 {
                sim.schedule_at(ms(5), i);
                sim.schedule_at(ms(9), 100 + i);
            }
            assert!(sim.run().drained());
            sim.world().seen.iter().map(|&(_, e)| e).collect()
        };
        let default_order = run(None);
        let explicit_fifo = run(Some(Box::new(ExplicitFifo)));
        assert_eq!(default_order, explicit_fifo);
        let expected: Vec<u32> = (0..50).chain(100..150).collect();
        assert_eq!(default_order, expected);
    }

    /// The seam is live: a non-FIFO chooser really changes tie delivery
    /// order (and only tie delivery order — time order is untouched).
    #[test]
    fn lifo_chooser_reverses_ties_but_not_time_order() {
        let mut sim = Simulation::new(Recorder { seen: vec![] }).with_chooser(Box::new(Lifo));
        for i in 0..10 {
            sim.schedule_at(ms(5), i);
        }
        sim.schedule_at(ms(1), 99);
        assert!(sim.run().drained());
        let order: Vec<u32> = sim.world().seen.iter().map(|&(_, e)| e).collect();
        let mut expected: Vec<u32> = vec![99];
        expected.extend((0..10).rev());
        assert_eq!(order, expected);
    }

    /// World-level choice points resolve through the same chooser, with
    /// arity-1 decisions short-circuited to the default.
    #[test]
    fn scheduler_choose_consults_the_chooser() {
        let mut sched: Scheduler<u32> = Scheduler::new();
        assert_eq!(sched.choose(ChoiceKind::Fault, 4), 0);
        sched.set_chooser(Box::new(Lifo));
        assert_eq!(sched.choose(ChoiceKind::Fault, 4), 3);
        assert_eq!(sched.choose(ChoiceKind::Fault, 1), 0);
    }

    /// Peak queue depth is a high-water mark: it survives the drain and
    /// counts the seed events plus everything scheduled mid-run.
    #[test]
    fn peak_queue_depth_tracks_high_water_mark() {
        let mut sim = Simulation::new(Recorder { seen: vec![] }).with_queue_capacity(64);
        assert_eq!(sim.peak_queue_depth(), 0);
        for i in 0..7 {
            sim.schedule_at(ms(i), i as u32);
        }
        assert_eq!(sim.peak_queue_depth(), 7);
        assert!(sim.run().drained());
        // Drained, but the peak is remembered.
        assert_eq!(sim.peak_queue_depth(), 7);
    }

    /// Replacing the chooser updates the cached trivial flag in both
    /// directions: FIFO -> exploring -> FIFO keeps delivery semantics.
    #[test]
    fn chooser_swap_updates_fast_path() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim = sim.with_chooser(Box::new(Lifo));
        sim = sim.with_chooser(Box::new(FifoChooser));
        for i in 0..10 {
            sim.schedule_at(ms(5), i);
        }
        assert!(sim.run().drained());
        let order: Vec<u32> = sim.world().seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    /// Both queue backends drive the identical delivery order, through the
    /// trivial FIFO path and the tie-gathering chooser path alike.
    #[test]
    fn queue_backends_deliver_identically() {
        let run = |backend: QueueBackend,
                   chooser: Option<Box<dyn Chooser>>|
         -> Vec<(SimTime, u32)> {
            let mut sim = Simulation::new(Recorder { seen: vec![] }).with_queue_backend(backend);
            if let Some(c) = chooser {
                sim = sim.with_chooser(c);
            }
            for i in 0..40 {
                sim.schedule_at(ms(u64::from(i % 7)), i);
                sim.schedule_at(ms(5_000 + u64::from(i)), 1000 + i);
            }
            assert!(sim.run().drained());
            sim.world().seen.clone()
        };
        assert_eq!(
            run(QueueBackend::Heap, None),
            run(QueueBackend::Calendar, None)
        );
        assert_eq!(
            run(QueueBackend::Heap, Some(Box::new(Lifo))),
            run(QueueBackend::Calendar, Some(Box::new(Lifo)))
        );
    }

    /// Switching backends mid-configuration migrates pending events with
    /// their keys, so delivery order (incl. FIFO ties) is unchanged.
    #[test]
    fn backend_swap_migrates_pending_events() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        assert_eq!(sim.queue_backend(), QueueBackend::Calendar);
        for i in 0..20 {
            sim.schedule_at(ms(7), i);
            sim.schedule_at(ms(3 + u64::from(i)), 100 + i);
        }
        sim = sim.with_queue_backend(QueueBackend::Heap);
        assert_eq!(sim.queue_backend(), QueueBackend::Heap);
        assert_eq!(sim.peak_queue_depth(), 40);
        assert!(sim.run().drained());
        let mut expected = Simulation::new(Recorder { seen: vec![] });
        for i in 0..20 {
            expected.schedule_at(ms(7), i);
            expected.schedule_at(ms(3 + u64::from(i)), 100 + i);
        }
        assert!(expected.run().drained());
        assert_eq!(sim.world().seen, expected.world().seen);
    }

    /// A churn workload (self-scheduling chains with deliberate time
    /// collisions) delivers identically at any partition count.
    #[test]
    fn sharded_queue_matches_unsharded_on_churn() {
        struct Churn {
            seen: Vec<(SimTime, u32)>,
        }
        impl World for Churn {
            type Event = u32;
            fn handle(&mut self, now: SimTime, e: u32, sched: &mut Scheduler<u32>) {
                self.seen.push((now, e));
                if !e.is_multiple_of(3) {
                    sched.schedule_in(SimDuration::from_millis(u64::from(e % 5)), e / 2);
                }
                if e.is_multiple_of(7) && e > 0 {
                    sched.schedule_at(now, e - 1);
                }
            }
        }
        let run = |partitions: usize| -> Vec<(SimTime, u32)> {
            let mut sim = Simulation::new(Churn { seen: vec![] });
            if partitions > 1 {
                sim = sim.with_partitions(partitions, Box::new(|e: &u32| *e as usize % 4));
            }
            for i in 0..200u32 {
                sim.schedule_at(ms(u64::from(i % 11)), i);
            }
            assert!(sim.run().drained());
            sim.world().seen.clone()
        };
        let baseline = run(1);
        for partitions in [2, 3, 4, 8] {
            assert_eq!(run(partitions), baseline, "{partitions} partitions");
        }
    }

    /// Regression pin for the latent tie-gathering fragility: with the queue
    /// sharded, a tie set spanning shards must be presented to the chooser in
    /// global *sequence* order, not in shard-scan order. (Events are
    /// scheduled so that shard order and FIFO order disagree: the earliest-
    /// scheduled tied events land in the highest-index shard.)
    #[test]
    fn cross_shard_ties_are_gathered_in_global_seq_order() {
        let run = |partitions: usize| -> Vec<(SimTime, u32)> {
            let mut sim = Simulation::new(Recorder { seen: vec![] })
                .with_chooser(Box::new(ExplicitFifo))
                .with_partitions(partitions, Box::new(|e: &u32| 3 - (*e as usize % 4)));
            for i in 0..64 {
                sim.schedule_at(ms(5), i);
                sim.schedule_at(ms(7), 100 + i);
            }
            assert!(sim.run().drained());
            sim.world().seen.clone()
        };
        // Always-0 chooser == FIFO: global seq order regardless of shards.
        let expected: Vec<(SimTime, u32)> = (0..64)
            .map(|i| (ms(5), i))
            .chain((0..64).map(|i| (ms(7), 100 + i)))
            .collect();
        for partitions in [1, 2, 4] {
            assert_eq!(run(partitions), expected, "{partitions} partitions");
        }
        // And a LIFO chooser sees the same arity/indexing at every partition
        // count, so its (reversed) pick sequence is also shard-invariant.
        let lifo = |partitions: usize| -> Vec<(SimTime, u32)> {
            let mut sim = Simulation::new(Recorder { seen: vec![] })
                .with_chooser(Box::new(Lifo))
                .with_partitions(partitions, Box::new(|e: &u32| 3 - (*e as usize % 4)));
            for i in 0..64 {
                sim.schedule_at(ms(5), i);
            }
            assert!(sim.run().drained());
            sim.world().seen.clone()
        };
        let baseline = lifo(1);
        assert_eq!(
            baseline.iter().map(|&(_, e)| e).collect::<Vec<_>>(),
            (0..64).rev().collect::<Vec<_>>()
        );
        for partitions in [2, 4, 8] {
            assert_eq!(lifo(partitions), baseline, "{partitions} partitions");
        }
    }

    /// Sharding after events are queued migrates them with keys intact, and
    /// pending/peak accounting spans all shards.
    #[test]
    fn set_partitions_migrates_pending_events() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        for i in 0..20 {
            sim.schedule_at(ms(7), i);
            sim.schedule_at(ms(3 + u64::from(i)), 100 + i);
        }
        assert_eq!(sim.peak_queue_depth(), 40);
        sim = sim.with_partitions(4, Box::new(|e: &u32| *e as usize % 4));
        assert_eq!(sim.partitions(), 4);
        assert_eq!(sim.peak_queue_depth(), 40);
        assert!(sim.run().drained());
        let mut expected = Simulation::new(Recorder { seen: vec![] });
        for i in 0..20 {
            expected.schedule_at(ms(7), i);
            expected.schedule_at(ms(3 + u64::from(i)), 100 + i);
        }
        assert!(expected.run().drained());
        assert_eq!(sim.world().seen, expected.world().seen);
    }

    /// Horizon push-back lands back in the right shard with its original
    /// key, so stop/resume is shard-invariant too.
    #[test]
    fn sharded_horizon_stops_and_resumes() {
        let mut sim = Simulation::new(Recorder { seen: vec![] })
            .with_partitions(3, Box::new(|e: &u32| *e as usize % 3));
        for i in 0..9 {
            sim.schedule_at(ms(10 * (1 + u64::from(i % 3))), i);
        }
        let out = sim.run_until(ms(15));
        assert!(matches!(out, RunOutcome::HorizonReached { events: 3, .. }));
        assert_eq!(sim.pending_events(), 6);
        assert!(sim.run().drained());
        assert_eq!(sim.world().seen.len(), 9);
        let times: Vec<SimTime> = sim.world().seen.iter().map(|&(t, _)| t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn step_delivers_one_event() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.schedule_at(ms(1), 1);
        sim.schedule_at(ms(2), 2);
        assert_eq!(sim.step(), Some(ms(1)));
        assert_eq!(sim.world().seen.len(), 1);
        assert_eq!(sim.step(), Some(ms(2)));
        assert_eq!(sim.step(), None);
    }
}
