//! Minimal randomized property-test driver.
//!
//! The repository's property suites (`tests/properties.rs`, the analyzer
//! mutation suite) need "run this closure over N seeded random cases and
//! report the failing case" — a tiny slice of what `proptest` offers, and
//! the only slice we use. Implementing it in-tree keeps the default build
//! free of registry dependencies (the workspace builds offline) while still
//! giving reproducible failures: every case derives its [`SimRng`] stream
//! from the property name and case index alone, so a failure report like
//! `property 'labels_decrease' failed at case 17` replays exactly with no
//! stored seed file.
//!
//! Case counts scale with [`cases`]: callers pass their default, and either
//! the `PROPCHECK_CASES` environment variable or the facade crate's
//! `proptest` cargo feature (which sets the env var multiplier at test time)
//! can raise them for exhaustive runs.

use crate::SimRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Resolve the number of cases to run for one property.
///
/// Returns `default` unless the `PROPCHECK_CASES` environment variable is
/// set to a positive integer, which overrides it. `PROPCHECK_SCALE`
/// multiplies the default instead (used by the facade crate's `proptest`
/// feature to run exhaustive suites without touching each call site).
pub fn cases(default: u32) -> u32 {
    if let Ok(v) = std::env::var("PROPCHECK_CASES") {
        if let Ok(n) = v.trim().parse::<u32>() {
            if n > 0 {
                return n;
            }
        }
    }
    if let Ok(v) = std::env::var("PROPCHECK_SCALE") {
        if let Ok(k) = v.trim().parse::<u32>() {
            if k > 0 {
                return default.saturating_mul(k);
            }
        }
    }
    default
}

/// Derive the deterministic RNG for one (property, case) pair.
///
/// Public so a failing case can be re-run in isolation from a debugger or a
/// one-off unit test.
pub fn case_rng(name: &str, case: u32) -> SimRng {
    // FNV-1a over the property name mixes it into the seed space; the case
    // index then selects the stream. SimRng::new SplitMix-expands the result,
    // so adjacent cases are decorrelated.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SimRng::new(h ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Run `prop` over `n` seeded random cases.
///
/// The closure receives a fresh deterministic [`SimRng`] per case and
/// asserts its property with ordinary `assert!`/`assert_eq!`. On a failing
/// case the driver reports the property name and case index (enough to
/// replay via [`case_rng`]) and re-raises the original panic so the test
/// harness shows the assertion message.
pub fn forall<F>(name: &str, n: u32, prop: F)
where
    F: Fn(&mut SimRng),
{
    for case in 0..n {
        let mut rng = case_rng(name, case);
        let result = catch_unwind(AssertUnwindSafe(|| prop(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "propcheck: property '{name}' failed at case {case}/{n} \
                 (replay with propcheck::case_rng(\"{name}\", {case}))"
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rng_is_deterministic() {
        let mut a = case_rng("p", 3);
        let mut b = case_rng("p", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn case_rng_varies_with_name_and_index() {
        let mut by_name_a = case_rng("alpha", 0);
        let mut by_name_b = case_rng("beta", 0);
        assert_ne!(by_name_a.next_u64(), by_name_b.next_u64());
        let mut by_case_a = case_rng("alpha", 0);
        let mut by_case_b = case_rng("alpha", 1);
        assert_ne!(by_case_a.next_u64(), by_case_b.next_u64());
    }

    #[test]
    fn forall_runs_every_case() {
        let count = std::cell::Cell::new(0u32);
        forall("counting", 25, |_| count.set(count.get() + 1));
        assert_eq!(count.get(), 25);
    }

    #[test]
    fn forall_propagates_failures() {
        let hit = catch_unwind(AssertUnwindSafe(|| {
            forall("failing", 10, |rng| {
                // Fails on some case almost surely.
                assert!(rng.uniform_f64() < 0.5, "triggered");
            });
        }));
        assert!(hit.is_err());
    }

    #[test]
    fn cases_default_passthrough() {
        // Neither env var is set in the test environment.
        if std::env::var("PROPCHECK_CASES").is_err() && std::env::var("PROPCHECK_SCALE").is_err() {
            assert_eq!(cases(64), 64);
        }
    }
}
