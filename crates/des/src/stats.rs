//! Small statistics helpers shared by the experiment harness: empirical CDFs,
//! means with confidence intervals, percentile extraction.

/// An empirical distribution over f64 samples.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Samples {
            values: iter.into_iter().collect(),
        }
    }
}

impl Samples {
    /// Empty sample set.
    pub fn new() -> Self {
        Samples { values: Vec::new() }
    }

    /// Build from a slice of values.
    pub fn from_values(values: &[f64]) -> Self {
        Samples {
            values: values.to_vec(),
        }
    }

    /// Record a sample.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw values in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Arithmetic mean; 0.0 for an empty set.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample standard deviation (n-1 denominator); 0.0 for fewer than two
    /// samples.
    pub fn std_dev(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let ss: f64 = self.values.iter().map(|v| (v - mean) * (v - mean)).sum();
        (ss / (n as f64 - 1.0)).sqrt()
    }

    /// Half-width of the 99% confidence interval on the mean (normal
    /// approximation, z = 2.576), as used for Fig. 8's error bars.
    pub fn ci99_half_width(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        2.576 * self.std_dev() / (n as f64).sqrt()
    }

    /// Percentile in `[0, 100]` by linear interpolation between order
    /// statistics; 0.0 for an empty set.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let p = p.clamp(0.0, 100.0) / 100.0;
        let idx = p * (sorted.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = idx - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// Median (p50).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Minimum; 0.0 for an empty set.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Maximum; 0.0 for an empty set.
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// The empirical CDF as `(value, cumulative_probability)` points, sorted
    /// by value — exactly the series a Fig. 7-style plot consumes.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = sorted.len() as f64;
        sorted
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, (i + 1) as f64 / n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let s = Samples::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn empty_set_is_safe() {
        let s = Samples::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert!(s.cdf_points().is_empty());
        assert!(s.is_empty());
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Samples::from_iter([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 40.0);
        assert_eq!(s.median(), 25.0);
        assert!((s.percentile(25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let s = Samples::from_iter([3.0, 1.0, 2.0]);
        let cdf = s.cdf_points();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0], (1.0, 1.0 / 3.0));
        assert_eq!(cdf[2], (3.0, 1.0));
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn min_max() {
        let s = Samples::from_iter([5.0, -1.0, 3.0]);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let small = Samples::from_iter((0..10).map(|i| i as f64));
        let big = Samples::from_iter((0..1000).map(|i| (i % 10) as f64));
        assert!(big.ci99_half_width() < small.ci99_half_width());
    }
}
