//! Small statistics helpers shared by the experiment harness: empirical CDFs,
//! means with confidence intervals, percentile extraction.

/// An empirical distribution over f64 samples.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Samples {
            values: iter.into_iter().collect(),
        }
    }
}

impl Samples {
    /// Empty sample set.
    pub fn new() -> Self {
        Samples { values: Vec::new() }
    }

    /// Build from a slice of values.
    pub fn from_values(values: &[f64]) -> Self {
        Samples {
            values: values.to_vec(),
        }
    }

    /// Record a sample.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw values in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Arithmetic mean; 0.0 for an empty set.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample standard deviation (n-1 denominator); 0.0 for fewer than two
    /// samples.
    pub fn std_dev(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let ss: f64 = self.values.iter().map(|v| (v - mean) * (v - mean)).sum();
        (ss / (n as f64 - 1.0)).sqrt()
    }

    /// Half-width of the 99% confidence interval on the mean (normal
    /// approximation, z = 2.576), as used for Fig. 8's error bars.
    pub fn ci99_half_width(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        2.576 * self.std_dev() / (n as f64).sqrt()
    }

    /// Percentile in `[0, 100]` by linear interpolation between order
    /// statistics; 0.0 for an empty set.
    ///
    /// The boundaries are exact by construction: any `p <= 0` returns the
    /// minimum and any `p >= 100` the maximum (no interpolation arithmetic
    /// is performed, so float rounding in `p * (n - 1) / 100` can never
    /// blend the extreme order statistic with its neighbor or index out of
    /// bounds on small sets). A NaN `p` falls into the minimum branch
    /// rather than poisoning the index computation.
    pub fn percentile(&self, p: f64) -> f64 {
        percentile_of_sorted(&self.sorted(), p)
    }

    fn sorted(&self) -> Vec<f64> {
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        sorted
    }

    /// Median (p50).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Minimum; 0.0 for an empty set.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Maximum; 0.0 for an empty set.
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Several percentiles in one pass (a single clone + sort), for report
    /// emitters that want p50/p90/p99 together.
    pub fn percentiles(&self, ps: &[f64]) -> Vec<f64> {
        let sorted = self.sorted();
        ps.iter()
            .map(|&p| percentile_of_sorted(&sorted, p))
            .collect()
    }

    /// The empirical CDF as `(value, cumulative_probability)` points, sorted
    /// by value — exactly the series a Fig. 7-style plot consumes.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = sorted.len() as f64;
        sorted
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, (i + 1) as f64 / n))
            .collect()
    }
}

/// Shared interpolation core over an already-sorted slice.
fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    // Exact boundary short-circuits; a NaN `p` clamps to the minimum.
    if p.is_nan() || p <= 0.0 {
        return sorted[0];
    }
    if p >= 100.0 {
        return sorted[sorted.len() - 1];
    }
    let idx = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = (lo + 1).min(sorted.len() - 1);
    let frac = idx - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Fixed-memory uniform sample of an unbounded stream (Vitter's
/// Algorithm R), plus exact running count / sum / min / max.
///
/// This is what lets the streaming metrics sink report p50/p99 completion
/// or queueing figures for runs whose full sample series would not fit in
/// memory: the reservoir holds at most `capacity` values no matter how
/// many are pushed, every pushed value has equal probability of being
/// retained, and the extremes and mean stay exact because they are
/// tracked outside the reservoir. Deterministic for a given seed (driven
/// by [`SimRng`]), so simulation runs remain reproducible.
#[derive(Debug, Clone)]
pub struct Reservoir {
    buf: Vec<f64>,
    capacity: usize,
    seen: u64,
    sum: f64,
    min: f64,
    max: f64,
    rng: crate::SimRng,
}

impl Reservoir {
    /// An empty reservoir retaining at most `capacity` samples.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            buf: Vec::new(),
            capacity,
            seen: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            rng: crate::SimRng::new(seed),
        }
    }

    /// Offer one sample to the reservoir.
    pub fn push(&mut self, v: f64) {
        self.seen += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if self.buf.len() < self.capacity {
            self.buf.push(v);
        } else {
            // Keep v with probability capacity/seen by replacing a
            // uniformly random slot; Algorithm R keeps the retained set
            // uniform over everything seen so far.
            let slot = (self.rng.next_u64() % self.seen) as usize;
            if slot < self.capacity {
                self.buf[slot] = v;
            }
        }
    }

    /// Total number of samples offered (not the number retained).
    pub fn len(&self) -> u64 {
        self.seen
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.seen == 0
    }

    /// Number of samples currently retained (`min(len, capacity)`).
    pub fn retained(&self) -> usize {
        self.buf.len()
    }

    /// Exact running mean; 0.0 for an empty reservoir.
    pub fn mean(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.sum / self.seen as f64
        }
    }

    /// Exact minimum over everything pushed; 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum over everything pushed; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Percentile estimate from the retained sample, with the boundaries
    /// (`p <= 0`, `p >= 100`) snapped to the exact running min/max.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.seen == 0 {
            return 0.0;
        }
        if p.is_nan() || p <= 0.0 {
            return self.min();
        }
        if p >= 100.0 {
            return self.max();
        }
        let mut sorted = self.buf.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        percentile_of_sorted(&sorted, p)
    }

    /// Snapshot the retained values as a [`Samples`] set (for CDFs etc.).
    pub fn samples(&self) -> Samples {
        Samples::from_values(&self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let s = Samples::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn empty_set_is_safe() {
        let s = Samples::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert!(s.cdf_points().is_empty());
        assert!(s.is_empty());
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Samples::from_iter([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 40.0);
        assert_eq!(s.median(), 25.0);
        assert!((s.percentile(25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let s = Samples::from_iter([3.0, 1.0, 2.0]);
        let cdf = s.cdf_points();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0], (1.0, 1.0 / 3.0));
        assert_eq!(cdf[2], (3.0, 1.0));
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn min_max() {
        let s = Samples::from_iter([5.0, -1.0, 3.0]);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 5.0);
    }

    /// Boundary spec for tiny sample sets, written before the fix: every
    /// percentile of a 0-element set is 0.0, every percentile of a
    /// 1-element set is that element, and on a 2-element set p0/p100 are
    /// exactly the extremes (no interpolation residue) while interior
    /// percentiles interpolate linearly.
    #[test]
    fn percentile_boundaries_on_zero_one_two_element_sets() {
        let empty = Samples::new();
        for p in [-10.0, 0.0, 50.0, 100.0, 250.0] {
            assert_eq!(empty.percentile(p), 0.0);
        }

        let one = Samples::from_iter([7.5]);
        for p in [-10.0, 0.0, 0.001, 50.0, 99.999, 100.0, 250.0] {
            assert_eq!(one.percentile(p), 7.5, "p = {p}");
        }

        let two = Samples::from_iter([4.0, 2.0]);
        assert_eq!(two.percentile(-5.0), 2.0);
        assert_eq!(two.percentile(0.0), 2.0);
        assert_eq!(two.percentile(100.0), 4.0);
        assert_eq!(two.percentile(130.0), 4.0);
        assert!((two.percentile(50.0) - 3.0).abs() < 1e-12);
        assert!((two.percentile(25.0) - 2.5).abs() < 1e-12);
        // The extremes must be *exact* order statistics even for p values
        // adjacent to the boundary, where naive `p/100 * (n-1)` index
        // arithmetic could round past the last element.
        assert!(two.percentile(99.999_999_999) <= 4.0);
        assert!(two.percentile(0.000_000_001) >= 2.0);
    }

    /// A NaN percentile argument must not index out of bounds or poison
    /// the result; it resolves to the minimum branch.
    #[test]
    fn percentile_nan_p_is_contained() {
        let s = Samples::from_iter([1.0, 2.0, 3.0]);
        assert_eq!(s.percentile(f64::NAN), 1.0);
    }

    #[test]
    fn percentiles_batch_matches_individual() {
        let s = Samples::from_iter([10.0, 20.0, 30.0, 40.0, 50.0]);
        let batch = s.percentiles(&[0.0, 25.0, 50.0, 99.0, 100.0]);
        let single: Vec<f64> = [0.0, 25.0, 50.0, 99.0, 100.0]
            .iter()
            .map(|&p| s.percentile(p))
            .collect();
        assert_eq!(batch, single);
    }

    #[test]
    fn reservoir_below_capacity_is_exact() {
        let mut r = Reservoir::new(16, 1);
        for v in [5.0, 1.0, 3.0] {
            r.push(v);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.retained(), 3);
        assert_eq!(r.min(), 1.0);
        assert_eq!(r.max(), 5.0);
        assert!((r.mean() - 3.0).abs() < 1e-12);
        assert_eq!(r.percentile(0.0), 1.0);
        assert_eq!(r.percentile(100.0), 5.0);
        assert!((r.percentile(50.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reservoir_bounds_memory_and_keeps_exact_extremes() {
        let mut r = Reservoir::new(64, 7);
        for i in 0..100_000u64 {
            r.push(i as f64);
        }
        assert_eq!(r.len(), 100_000);
        assert_eq!(r.retained(), 64);
        // min/max/mean are exact regardless of what the reservoir dropped.
        assert_eq!(r.min(), 0.0);
        assert_eq!(r.max(), 99_999.0);
        assert!((r.mean() - 49_999.5).abs() < 1e-6);
        assert_eq!(r.percentile(0.0), 0.0);
        assert_eq!(r.percentile(100.0), 99_999.0);
        // The retained sample is uniform, so the median estimate lands
        // well inside the bulk of the distribution.
        let p50 = r.percentile(50.0);
        assert!((20_000.0..80_000.0).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn reservoir_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut r = Reservoir::new(8, seed);
            for i in 0..1000u64 {
                r.push(i as f64);
            }
            let mut s = r.samples().values().to_vec();
            s.sort_by(f64::total_cmp);
            s
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn reservoir_empty_is_safe() {
        let r = Reservoir::new(4, 0);
        assert!(r.is_empty());
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.min(), 0.0);
        assert_eq!(r.max(), 0.0);
        assert_eq!(r.percentile(50.0), 0.0);
        assert!(r.samples().is_empty());
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let small = Samples::from_iter((0..10).map(|i| i as f64));
        let big = Samples::from_iter((0..1000).map(|i| (i % 10) as f64));
        assert!(big.ci99_half_width() < small.ci99_half_width());
    }
}
