//! Simulated time.
//!
//! Time is kept as an integer number of nanoseconds since simulation start.
//! Integer time makes event ordering exact and runs reproducible: there is no
//! floating-point drift between platforms, and two events scheduled for the
//! same instant compare equal rather than "almost equal".

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Time expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// Duration since an earlier instant. Saturates at zero if `earlier` is
    /// actually later — callers comparing out-of-order timestamps get a zero
    /// span instead of a panic.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from integer seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional milliseconds, rounding to the nearest
    /// nanosecond and clamping negatives to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 || !ms.is_finite() {
            return SimDuration(0);
        }
        SimDuration((ms * 1.0e6).round() as u64)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond
    /// and clamping negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration(0);
        }
        SimDuration((s * 1.0e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Span expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// Multiply the span by an integer factor.
    pub const fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs > self`; use
    /// [`SimTime::saturating_since`] when the ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_millis(20).as_nanos(), 20_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(7).as_millis_f64(), 7.0);
    }

    #[test]
    fn fractional_construction_rounds() {
        assert_eq!(SimDuration::from_millis_f64(0.0001).as_nanos(), 100);
        assert_eq!(SimDuration::from_millis_f64(-3.0).as_nanos(), 0);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_millis_f64(), 10.0);
        let t2 = t + SimDuration::from_millis(5);
        assert_eq!((t2 - t).as_millis_f64(), 5.0);
        assert_eq!(t.saturating_since(t2), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_is_milliseconds() {
        assert_eq!(SimTime::from_nanos(1_500_000).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
    }
}
