//! Queue and front-time hooks for windowed (conservative-lookahead)
//! engines.
//!
//! A conservative parallel engine advances shards inside a window
//! `[t_min, W)` that no cross-shard event can land in. Two pieces of
//! bookkeeping dominate that loop when windows are small:
//!
//! - knowing each shard's *front* (earliest pending event) without
//!   re-peeking every queue on every window, and
//! - knowing each shard's *barrier front* — the earliest pending event
//!   that could ever cause a cross-shard emission — which bounds how far
//!   the window can be stretched past `t_min` (window coalescing).
//!
//! [`ClassedQueue`] splits a shard's pending events into a *main* class
//! (events whose handlers may emit across shards) and a *deferred* class
//! (events whose handler's transitive descendants provably stay
//! shard-local, e.g. poll ticks that only re-arm themselves). Pops still
//! come out in global `(time, seq)` order across both classes, so the
//! delivery order is exactly that of a single queue; the split only
//! exists so [`ClassedQueue::barrier_key`] can report the main-class
//! front. [`FrontCache`] memoizes both fronts per shard with explicit
//! dirty marking, so a barrier that touched three shards re-peeks three
//! queues, not all of them.

use crate::queue::{QueueBackend, QueueImpl};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A deferred-class entry, ordered like the main queue: min `(at, seq)`
/// pops first (the heap is a max-heap, so the ordering is inverted).
struct Deferred<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Deferred<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Deferred<E> {}
impl<E> PartialOrd for Deferred<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Deferred<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A two-class event queue: the *main* class (any backend) holds events
/// that may emit cross-shard; the *deferred* class (a small heap) holds
/// events whose descendants provably stay local. [`Self::pop`] returns
/// the global `(time, seq)` minimum over both classes — byte-identical
/// delivery order to a single queue — while [`Self::barrier_key`] exposes
/// the main-class front alone.
pub struct ClassedQueue<E> {
    main: QueueImpl<E>,
    deferred: BinaryHeap<Deferred<E>>,
}

impl<E> ClassedQueue<E> {
    /// An empty queue with the given main-class backend.
    pub fn new(backend: QueueBackend) -> Self {
        ClassedQueue {
            main: QueueImpl::new(backend),
            deferred: BinaryHeap::new(),
        }
    }

    /// Insert an event; `deferred` selects the class. The classification
    /// must be closed under the handler relation: a deferred event's
    /// handler may only schedule further deferred (shard-local) events.
    pub fn push(&mut self, at: SimTime, seq: u64, event: E, deferred: bool) {
        if deferred {
            self.deferred.push(Deferred { at, seq, event });
        } else {
            self.main.push(at, seq, event);
        }
    }

    /// Remove and return the minimum-`(time, seq)` event of either class.
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        let main = self.main.peek_key();
        let def = self.deferred.peek().map(|d| (d.at, d.seq));
        let from_main = match (main, def) {
            (None, None) => return None,
            (Some(m), Some(d)) => m < d,
            (Some(_), None) => true,
            (None, Some(_)) => false,
        };
        if from_main {
            self.main.pop()
        } else {
            self.deferred.pop().map(|d| (d.at, d.seq, d.event))
        }
    }

    /// The key the next [`Self::pop`] would return.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        let main = self.main.peek_key();
        let def = self.deferred.peek().map(|d| (d.at, d.seq));
        match (main, def) {
            (Some(m), Some(d)) => Some(m.min(d)),
            (a, b) => a.or(b),
        }
    }

    /// The main-class front: the earliest pending event that could emit
    /// cross-shard. `None` means every pending event (if any) is deferred
    /// — the shard can never again influence another shard.
    pub fn barrier_key(&mut self) -> Option<(SimTime, u64)> {
        self.main.peek_key()
    }

    /// Pending events across both classes.
    pub fn len(&self) -> usize {
        self.main.len() + self.deferred.len()
    }

    /// True when no events are pending in either class.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pre-size internal storage for roughly `capacity` pending events.
    pub fn reserve(&mut self, capacity: usize) {
        self.main.reserve(capacity);
        // Deferred events (self-rearming timers) are a small minority.
        self.deferred.reserve(capacity / 8);
    }
}

/// A shard's cached front times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fronts {
    /// Earliest pending event of any class (`None`: shard drained).
    pub next: Option<SimTime>,
    /// Earliest pending main-class (cross-capable) event.
    pub barrier: Option<SimTime>,
}

/// Per-shard [`Fronts`] memo with explicit dirty marking: the window loop
/// calls [`FrontCache::refresh`] each iteration, and only shards marked
/// dirty since the last refresh (because they popped, received a push, or
/// drained their side ledger) pay a re-peek.
pub struct FrontCache {
    fronts: Vec<Fronts>,
    dirty: Vec<bool>,
}

impl FrontCache {
    /// A cache for `n` shards, all initially dirty.
    pub fn new(n: usize) -> Self {
        FrontCache {
            fronts: vec![Fronts::default(); n],
            dirty: vec![true; n],
        }
    }

    /// Number of shards tracked.
    pub fn len(&self) -> usize {
        self.fronts.len()
    }

    /// True when tracking no shards.
    pub fn is_empty(&self) -> bool {
        self.fronts.is_empty()
    }

    /// Mark shard `i`'s cached fronts stale.
    pub fn mark_dirty(&mut self, i: usize) {
        self.dirty[i] = true;
    }

    /// Whether shard `i` is marked stale.
    pub fn is_dirty(&self, i: usize) -> bool {
        self.dirty[i]
    }

    /// Current fronts for shard `i`, recomputing via `probe` only if the
    /// shard is marked dirty.
    pub fn refresh(&mut self, i: usize, probe: impl FnOnce() -> Fronts) -> Fronts {
        if self.dirty[i] {
            self.fronts[i] = probe();
            self.dirty[i] = false;
        }
        self.fronts[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{EventQueue, HeapQueue};
    use crate::rng::SimRng;

    /// Pops interleave both classes in exact `(time, seq)` order — the
    /// classed queue is observationally a single queue.
    #[test]
    fn classed_pop_order_matches_single_queue() {
        for seed in 0..10 {
            let mut rng = SimRng::new(seed);
            let mut classed = ClassedQueue::new(QueueBackend::Calendar);
            let mut single: HeapQueue<u64> = HeapQueue::new();
            let mut now = 0u64;
            let mut seq = 0u64;
            for _ in 0..2_000 {
                if rng.uniform_usize(3) > 0 || classed.is_empty() {
                    let at = SimTime::from_nanos(now + rng.uniform_usize(1 << 24) as u64);
                    let deferred = rng.uniform_usize(4) == 0;
                    classed.push(at, seq, seq, deferred);
                    single.push(at, seq, seq);
                    seq += 1;
                } else {
                    assert_eq!(classed.peek_key(), single.peek_key(), "seed {seed}");
                    let a = classed.pop().expect("non-empty");
                    let b = single.pop().expect("same length");
                    assert_eq!(a, b, "seed {seed}");
                    now = a.0.as_nanos();
                }
                assert_eq!(classed.len(), single.len());
            }
        }
    }

    /// `barrier_key` tracks only the main class; a deferred-only queue
    /// reports `None` even though events are pending.
    #[test]
    fn barrier_key_ignores_the_deferred_class() {
        let mut q: ClassedQueue<u8> = ClassedQueue::new(QueueBackend::Heap);
        q.push(SimTime::from_nanos(10), 0, 1, true);
        q.push(SimTime::from_nanos(50), 1, 2, true);
        assert_eq!(q.peek_key(), Some((SimTime::from_nanos(10), 0)));
        assert_eq!(q.barrier_key(), None);
        q.push(SimTime::from_nanos(30), 2, 3, false);
        assert_eq!(q.barrier_key(), Some((SimTime::from_nanos(30), 2)));
        // The earlier deferred event still pops first.
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 0, 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), 2, 3)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(50), 1, 2)));
        assert_eq!(q.pop(), None);
    }

    /// The cache probes only dirty shards and returns memoized fronts for
    /// clean ones.
    #[test]
    fn front_cache_probes_only_dirty_shards() {
        let mut cache = FrontCache::new(3);
        assert_eq!(cache.len(), 3);
        let f0 = Fronts {
            next: Some(SimTime::from_nanos(5)),
            barrier: Some(SimTime::from_nanos(7)),
        };
        assert_eq!(cache.refresh(0, || f0), f0);
        assert!(!cache.is_dirty(0));
        // A clean shard must not invoke the probe.
        assert_eq!(cache.refresh(0, || panic!("probed a clean shard")), f0);
        cache.mark_dirty(0);
        let f1 = Fronts {
            next: None,
            barrier: None,
        };
        assert_eq!(cache.refresh(0, || f1), f1);
    }
}
