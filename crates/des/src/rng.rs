//! Deterministic random number generation for simulations.
//!
//! Every run of the simulator is parameterized by a single `u64` seed; all
//! stochastic model components (link jitter, rule-install delays, traffic
//! matrices) draw from [`SimRng`] so a run can be replayed exactly.
//!
//! The exponential and truncated-normal samplers used by the timing model
//! (paper §9.1) live here so the workspace does not need a distributions
//! dependency beyond `rand` itself.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Seedable RNG wrapper with the samplers the timing model needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create an RNG from a run seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child RNG. Used to give each model component its
    /// own stream so adding draws in one component does not perturb another.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        // splitmix-style mixing of a fresh draw with the salt.
        let mut z = self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::new(z ^ (z >> 31))
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.uniform_f64()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_usize over empty range");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform_f64() < p
        }
    }

    /// Exponential draw with the given mean (inverse-CDF method).
    ///
    /// The paper's single-flow scenario slows each rule installation by
    /// `exp(100) ms` (§9.1); this sampler reproduces NumPy's
    /// `random.exponential(scale)` parameterization (scale = mean).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = 1.0 - self.uniform_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Standard normal draw (Box–Muller; one value per call keeps the
    /// consumption pattern simple and reproducible).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.uniform_f64(); // (0, 1], avoids ln(0)
        let u2 = self.uniform_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with mean/std-dev, truncated below at `floor`.
    ///
    /// Used for the fat-tree control-plane latency model (Huang et al.):
    /// resampling would bias the mean, so we clamp, which preserves ordering
    /// of draws across seeds.
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, floor: f64) -> f64 {
        (mean + std_dev * self.standard_normal()).max(floor)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Pick one element uniformly at random. Returns `None` on empty input.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.uniform_usize(items.len())])
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent_of_later_parent_use() {
        let mut parent1 = SimRng::new(7);
        let mut child1 = parent1.fork(1);
        let c1: Vec<u64> = (0..8).map(|_| child1.next_u64()).collect();

        let mut parent2 = SimRng::new(7);
        let mut child2 = parent2.fork(1);
        // Consuming the parent afterwards must not change the child's stream.
        let _ = parent2.next_u64();
        let c2: Vec<u64> = (0..8).map(|_| child2.next_u64()).collect();
        assert_eq!(c1, c2);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(99);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(100.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean was {mean}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            assert!(rng.exponential(3.0) >= 0.0);
        }
    }

    #[test]
    fn normal_clamped_respects_floor() {
        let mut rng = SimRng::new(11);
        for _ in 0..10_000 {
            assert!(rng.normal_clamped(35.0, 15.0, 1.0) >= 1.0);
        }
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::new(123);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance was {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(0);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::new(3);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[7u8]), Some(&7));
    }

    #[test]
    fn uniform_range_degenerate() {
        let mut rng = SimRng::new(3);
        assert_eq!(rng.uniform_range(5.0, 5.0), 5.0);
        assert_eq!(rng.uniform_range(5.0, 4.0), 5.0);
        let x = rng.uniform_range(1.0, 2.0);
        assert!((1.0..2.0).contains(&x));
    }
}
