//! Deterministic random number generation for simulations.
//!
//! Every run of the simulator is parameterized by a single `u64` seed; all
//! stochastic model components (link jitter, rule-install delays, traffic
//! matrices) draw from [`SimRng`] so a run can be replayed exactly.
//!
//! The generator is an in-tree xoshiro256++ (Blackman & Vigna) seeded
//! through SplitMix64 — the same construction `rand`'s 64-bit `SmallRng`
//! uses — so the workspace needs no external RNG dependency and builds
//! fully offline. The exponential and truncated-normal samplers used by
//! the timing model (paper §9.1) live here too.

/// Seedable RNG wrapper with the samplers the timing model needs.
///
/// Backed by xoshiro256++: 256 bits of state, period `2^256 - 1`, and
/// excellent equidistribution — far more than a simulation harness needs,
/// at a cost of four shifts and a rotate per draw.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step: the canonical stream used to expand a 64-bit seed into
/// generator state (Vigna; also what `rand`'s `seed_from_u64` does).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create an RNG from a run seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zero words from any seed, but keep the guard explicit.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Next raw 64-bit draw (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit draw (upper half of a 64-bit draw, which has the
    /// better-mixed bits in the `++` scrambler).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Derive an independent child RNG. Used to give each model component its
    /// own stream so adding draws in one component does not perturb another.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        // splitmix-style mixing of a fresh draw with the salt.
        let mut z = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::new(z ^ (z >> 31))
    }

    /// Uniform draw in `[0, 1)`: 53 random mantissa bits.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.uniform_f64()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Lemire's widening-multiply method with rejection: exactly uniform,
    /// one multiply in the common case.
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_usize over empty range");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let low = m as u64;
            if low >= n && low < n.wrapping_neg() {
                // Fast accept for the overwhelming majority of draws.
                return (m >> 64) as usize;
            }
            // Exact-threshold path (and rejection of biased low residues).
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform_f64() < p
        }
    }

    /// Exponential draw with the given mean (inverse-CDF method).
    ///
    /// The paper's single-flow scenario slows each rule installation by
    /// `exp(100) ms` (§9.1); this sampler reproduces NumPy's
    /// `random.exponential(scale)` parameterization (scale = mean).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = 1.0 - self.uniform_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Standard normal draw (Box–Muller; one value per call keeps the
    /// consumption pattern simple and reproducible).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.uniform_f64(); // (0, 1], avoids ln(0)
        let u2 = self.uniform_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with mean/std-dev, truncated below at `floor`.
    ///
    /// Used for the fat-tree control-plane latency model (Huang et al.):
    /// resampling would bias the mean, so we clamp, which preserves ordering
    /// of draws across seeds.
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, floor: f64) -> f64 {
        (mean + std_dev * self.standard_normal()).max(floor)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Pick one element uniformly at random. Returns `None` on empty input.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.uniform_usize(items.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn matches_reference_xoshiro256plusplus_vectors() {
        // First draws of xoshiro256++ from the state produced by SplitMix64
        // over seed 0 — the construction rand's 64-bit SmallRng uses, so
        // historical seeded runs keep their streams after the in-tree port.
        let mut sm = 0u64;
        let s: Vec<u64> = (0..4).map(|_| splitmix64(&mut sm)).collect();
        assert_eq!(
            s,
            vec![
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F,
                0xF88B_B8A8_724C_81EC
            ]
        );
        let mut rng = SimRng::new(0);
        // Reference value computed from the published xoshiro256++
        // algorithm over that state.
        let first = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        assert_eq!(rng.next_u64(), first);
    }

    #[test]
    fn uniform_usize_is_in_range_and_covers() {
        let mut rng = SimRng::new(17);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = rng.uniform_usize(7);
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn fork_streams_are_independent_of_later_parent_use() {
        let mut parent1 = SimRng::new(7);
        let mut child1 = parent1.fork(1);
        let c1: Vec<u64> = (0..8).map(|_| child1.next_u64()).collect();

        let mut parent2 = SimRng::new(7);
        let mut child2 = parent2.fork(1);
        // Consuming the parent afterwards must not change the child's stream.
        let _ = parent2.next_u64();
        let c2: Vec<u64> = (0..8).map(|_| child2.next_u64()).collect();
        assert_eq!(c1, c2);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(99);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(100.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 100.0).abs() < 2.0, "mean was {mean}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            assert!(rng.exponential(3.0) >= 0.0);
        }
    }

    #[test]
    fn normal_clamped_respects_floor() {
        let mut rng = SimRng::new(11);
        for _ in 0..10_000 {
            assert!(rng.normal_clamped(35.0, 15.0, 1.0) >= 1.0);
        }
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::new(123);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance was {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(0);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::new(3);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[7u8]), Some(&7));
    }

    #[test]
    fn uniform_range_degenerate() {
        let mut rng = SimRng::new(3);
        assert_eq!(rng.uniform_range(5.0, 5.0), 5.0);
        assert_eq!(rng.uniform_range(5.0, 4.0), 5.0);
        let x = rng.uniform_range(1.0, 2.0);
        assert!((1.0..2.0).contains(&x));
    }
}
