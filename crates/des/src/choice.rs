//! Choice points: the seam through which schedule exploration drives the
//! engine.
//!
//! A deterministic run of the engine still contains *decisions* — which of
//! several same-timestamp events to deliver first, whether a fault strikes
//! a message — that the seed-driven implementation resolves one fixed way.
//! Each such decision is surfaced as a *choice point*: the engine (or the
//! world) asks the scheduler's [`Chooser`] to pick one of `arity`
//! alternatives. Alternative `0` is always the default behavior (FIFO
//! tie-break, no fault), so the default [`FifoChooser`] reproduces the
//! historical engine byte-for-byte, while an exploring chooser can steer
//! the run through any interleaving and record the path it took as a
//! replayable trace (see the `p4update-explore` crate).

/// What kind of decision a choice point represents.
///
/// The kind is advisory — it labels trace entries and lets strategies
/// weight decisions differently — and does not change the contract: pick
/// an index in `[0, arity)`, where `0` is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChoiceKind {
    /// Tie-break among same-timestamp events. The alternatives are the
    /// tied events in FIFO (scheduling) order; picking `0` reproduces the
    /// engine's historical FIFO delivery.
    TieBreak,
    /// A fault decision attached to a message. The world defines the
    /// alternatives; `0` must mean "no fault".
    Fault,
    /// A byzantine decision attached to a message: whether (and how) the
    /// sending switch *lies* — forging labels, replaying stale state,
    /// equivocating, or faking acknowledgements. The world defines the
    /// alternatives; `0` must mean "send honestly". Traces containing
    /// this kind use the v2 trace format (`p4update-explore`).
    Byzantine,
}

impl ChoiceKind {
    /// Stable one-word token used in trace files.
    pub fn token(self) -> &'static str {
        match self {
            ChoiceKind::TieBreak => "tie",
            ChoiceKind::Fault => "fault",
            ChoiceKind::Byzantine => "byz",
        }
    }

    /// Inverse of [`ChoiceKind::token`].
    pub fn from_token(s: &str) -> Option<Self> {
        match s {
            "tie" => Some(ChoiceKind::TieBreak),
            "fault" => Some(ChoiceKind::Fault),
            "byz" => Some(ChoiceKind::Byzantine),
            _ => None,
        }
    }
}

/// A decision procedure for choice points.
///
/// Implementations must be deterministic functions of their own state: the
/// engine guarantees it asks the same questions in the same order for the
/// same world and seed, which is what makes recorded choice sequences
/// replayable.
pub trait Chooser: Send {
    /// Pick one of `arity` alternatives (`arity >= 1`). Must return a
    /// value in `[0, arity)`; `0` is the default behavior.
    fn choose(&mut self, kind: ChoiceKind, arity: usize) -> usize;

    /// Fast-path hint: a trivial chooser always picks `0`, letting the
    /// scheduler skip gathering tie sets entirely. Exploring choosers
    /// must return `false` or they will never be consulted.
    fn is_trivial(&self) -> bool {
        false
    }
}

/// The default policy: always alternative `0` — FIFO tie-breaks, no
/// faults. This is the engine's historical behavior, now expressed through
/// the choice-point seam.
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoChooser;

impl Chooser for FifoChooser {
    fn choose(&mut self, _kind: ChoiceKind, _arity: usize) -> usize {
        0
    }

    fn is_trivial(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_chooser_always_picks_the_default() {
        let mut c = FifoChooser;
        assert!(c.is_trivial());
        for arity in 1..5 {
            assert_eq!(c.choose(ChoiceKind::TieBreak, arity), 0);
            assert_eq!(c.choose(ChoiceKind::Fault, arity), 0);
        }
    }

    #[test]
    fn kind_tokens_round_trip() {
        for kind in [
            ChoiceKind::TieBreak,
            ChoiceKind::Fault,
            ChoiceKind::Byzantine,
        ] {
            assert_eq!(ChoiceKind::from_token(kind.token()), Some(kind));
        }
        assert_eq!(ChoiceKind::from_token("bogus"), None);
    }
}
