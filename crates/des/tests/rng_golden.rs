//! Golden vectors for [`p4update_des::SimRng`].
//!
//! The explorer's trace corpus (and every recorded experiment) is only
//! replayable if the RNG produces bit-identical streams forever — across
//! platforms, compiler versions, and refactors. These vectors freeze the
//! current xoshiro256++-over-SplitMix64 construction: raw outputs must
//! match *exactly*, and the derived samplers (which go through `ln`,
//! `cos`, and float division) must match to within a tolerance far
//! tighter than any timing model cares about.
//!
//! If this test ever fails, the generator changed, and every committed
//! trace in `tests/corpus/` is stale. Do not update the constants without
//! regenerating the corpus.

// The sampler constants are printed at 17 significant digits (f64 round-trip
// precision); some carry digits beyond what the nearest f64 needs, which is
// fine for golden vectors compared under a tolerance.
#![allow(clippy::excessive_precision)]

use p4update_des::SimRng;

const SAMPLER_TOL: f64 = 1e-12;

#[test]
fn raw_xoshiro_outputs_are_frozen() {
    let golden_deadbeef: [u64; 8] = [
        0x0C52_0EB8_FEA9_8EDE,
        0x2B74_A633_8B80_E0E2,
        0xBE23_8770_C379_5322,
        0x5F23_5F98_A244_EA97,
        0xE004_F0CC_1514_D858,
        0x436A_2099_63FF_9223,
        0x8302_E81B_9685_B6D4,
        0xA7EE_C00B_77EC_3019,
    ];
    let mut rng = SimRng::new(0xDEAD_BEEF);
    for (i, &want) in golden_deadbeef.iter().enumerate() {
        assert_eq!(rng.next_u64(), want, "seed 0xDEADBEEF draw {i}");
    }

    let golden_one: [u64; 8] = [
        0xCFC5_D07F_6F03_C29B,
        0xBF42_4132_963F_E08D,
        0x19A3_7D57_57AA_F520,
        0xBF08_119F_05CD_56D6,
        0x2F47_184B_8618_6FA4,
        0x9729_9FCA_E720_2345,
        0xFCA3_C795_08F4_1507,
        0x85FE_A5C9_0363_F221,
    ];
    let mut rng = SimRng::new(1);
    for (i, &want) in golden_one.iter().enumerate() {
        assert_eq!(rng.next_u64(), want, "seed 1 draw {i}");
    }
}

#[test]
fn next_u32_and_forked_streams_are_frozen() {
    let mut rng = SimRng::new(42);
    let golden_u32: [u32; 4] = [0xD076_4D4F, 0x519E_4174, 0xFBE0_7CFB, 0xB37D_9F60];
    for (i, &want) in golden_u32.iter().enumerate() {
        assert_eq!(rng.next_u32(), want, "seed 42 u32 draw {i}");
    }

    let mut parent = SimRng::new(42);
    let mut child = parent.fork(7);
    let golden_fork: [u64; 4] = [
        0x9008_6D31_8BB6_C001,
        0x39ED_48A5_7E4A_107E,
        0x45EB_7293_EA3F_35C3,
        0x9366_FA17_7CAB_B4F6,
    ];
    for (i, &want) in golden_fork.iter().enumerate() {
        assert_eq!(child.next_u64(), want, "fork(7) of seed 42 draw {i}");
    }
}

#[test]
fn samplers_are_frozen_within_tolerance() {
    let check = |label: &str, got: f64, want: f64| {
        assert!(
            (got - want).abs() <= SAMPLER_TOL * want.abs().max(1.0),
            "{label}: got {got:.17e}, want {want:.17e}"
        );
    };

    let mut rng = SimRng::new(42);
    let golden_uniform = [
        8.143_051_451_229_098_57e-1,
        3.188_210_400_616_611_21e-1,
        9.838_941_681_774_887_59e-1,
        7.011_355_981_347_555_67e-1,
    ];
    for (i, &want) in golden_uniform.iter().enumerate() {
        check(&format!("uniform_f64 draw {i}"), rng.uniform_f64(), want);
    }

    let mut rng = SimRng::new(42);
    let golden_exponential = [
        1.683_650_517_646_568_90e1,
        3.839_302_174_317_093_64e0,
        4.128_573_847_578_658_73e1,
        1.207_765_313_923_566_10e1,
    ];
    for (i, &want) in golden_exponential.iter().enumerate() {
        check(
            &format!("exponential(10) draw {i}"),
            rng.exponential(10.0),
            want,
        );
    }

    let mut rng = SimRng::new(42);
    let golden_normal = [
        -7.689_930_538_210_061_34e-1,
        -8.684_461_074_702_454_21e-1,
        -1.510_974_983_000_670_68e0,
        -4.087_085_854_552_935_94e-1,
    ];
    for (i, &want) in golden_normal.iter().enumerate() {
        check(
            &format!("standard_normal draw {i}"),
            rng.standard_normal(),
            want,
        );
    }

    let mut rng = SimRng::new(42);
    let golden_usize: [usize; 8] = [8, 3, 9, 7, 7, 5, 1, 6];
    for (i, &want) in golden_usize.iter().enumerate() {
        assert_eq!(rng.uniform_usize(10), want, "uniform_usize(10) draw {i}");
    }
}
