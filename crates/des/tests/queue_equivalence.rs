//! Differential proof, engine level: the calendar queue and the binary
//! heap drive byte-identical runs. A reactive world schedules seeded
//! pseudo-random follow-ups (bursts of same-instant ties, near-future
//! chatter, far-future timers — the mixture a network sim produces), runs
//! under both backends, and the complete delivery transcripts must match
//! exactly, as must the backend-invariant accounting (`peak_queue_depth`).
//!
//! The workspace-level `tests/queue_equivalence.rs` extends this to every
//! committed corpus trace and registry scenario.

use p4update_des::{
    QueueBackend, RunOutcome, Scheduler, SimDuration, SimRng, SimTime, Simulation, World,
};

/// A world whose handler schedules a deterministic pseudo-random mixture
/// of follow-up events, recording everything it sees.
struct Churn {
    rng: SimRng,
    seen: Vec<(u64, u32)>,
    budget: u32,
}

impl World for Churn {
    type Event = u32;

    fn handle(&mut self, now: SimTime, event: u32, sched: &mut Scheduler<u32>) {
        self.seen.push((now.as_nanos(), event));
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        // 0–3 follow-ups spanning the backend's interesting bands: exact
        // ties, sub-bucket offsets, in-window jumps, far-band timers.
        for _ in 0..self.rng.uniform_usize(4) {
            let delay = match self.rng.uniform_usize(8) {
                0 | 1 => SimDuration::ZERO,
                2 | 3 => SimDuration::from_nanos(self.rng.uniform_usize(50_000) as u64),
                4 | 5 => SimDuration::from_micros(self.rng.uniform_usize(5_000) as u64),
                6 => SimDuration::from_millis(self.rng.uniform_usize(500) as u64),
                _ => SimDuration::from_secs(1 + self.rng.uniform_usize(30) as u64),
            };
            sched.schedule_in(delay, event.wrapping_mul(31).wrapping_add(1));
        }
    }
}

fn run(backend: QueueBackend, seed: u64, capacity: usize) -> (Vec<(u64, u32)>, usize, RunOutcome) {
    let mut sim = Simulation::new(Churn {
        rng: SimRng::new(seed),
        seen: Vec::new(),
        budget: 4_000,
    })
    .with_queue_backend(backend)
    .with_queue_capacity(capacity)
    .with_event_budget(50_000);
    for i in 0..32 {
        sim.schedule_at(SimTime::from_nanos(u64::from(i % 5) * 1_000_000), i);
    }
    let out = sim.run();
    let peak = sim.peak_queue_depth();
    (sim.into_world().seen, peak, out)
}

/// Full-run transcripts are identical for every seed, and the queue
/// high-water mark agrees (it is tracked above the backend, and both
/// backends hold exactly the same pending set at every instant).
#[test]
fn synthetic_runs_are_byte_identical_across_backends() {
    for seed in 0..25 {
        let (heap, heap_peak, heap_out) = run(QueueBackend::Heap, seed, 0);
        let (cal, cal_peak, cal_out) = run(QueueBackend::Calendar, seed, 0);
        assert_eq!(heap, cal, "seed {seed}: delivery transcripts diverge");
        assert_eq!(heap_peak, cal_peak, "seed {seed}: peak depth diverges");
        assert_eq!(heap_out, cal_out, "seed {seed}: run outcome diverges");
    }
}

/// The `with_queue_capacity` hint reaches both backends without touching
/// semantics: transcript and peak depth are invariant in the hint too.
#[test]
fn capacity_hint_reaches_backends_without_changing_behavior() {
    let (base, base_peak, _) = run(QueueBackend::Calendar, 7, 0);
    for capacity in [1, 64, 4096, 100_000] {
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            let (seen, peak, _) = run(backend, 7, capacity);
            assert_eq!(seen, base, "{backend:?} capacity {capacity}");
            assert_eq!(peak, base_peak, "{backend:?} capacity {capacity}");
        }
    }
}

/// Horizon stop/resume (which pushes an already-popped event back into the
/// queue) preserves equivalence: resuming under either backend continues
/// the identical transcript.
#[test]
fn horizon_resume_is_backend_invariant() {
    let run_chunked = |backend: QueueBackend| -> Vec<(u64, u32)> {
        let mut sim = Simulation::new(Churn {
            rng: SimRng::new(99),
            seen: Vec::new(),
            budget: 2_000,
        })
        .with_queue_backend(backend)
        .with_event_budget(20_000);
        for i in 0..16 {
            sim.schedule_at(SimTime::ZERO, i);
        }
        // Advance in uneven horizon chunks; each boundary exercises the
        // pop-then-push-back path.
        for secs in [1u64, 2, 3, 5, 8, 13, 21, 400] {
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(secs));
        }
        sim.run();
        sim.into_world().seen
    };
    assert_eq!(
        run_chunked(QueueBackend::Heap),
        run_chunked(QueueBackend::Calendar)
    );
}
