//! Gravity-model traffic matrix synthesis (Roughan, CCR '05, as cited in
//! §9.1): the demand between nodes `i` and `j` is proportional to the
//! product of per-node masses, here drawn from an exponential distribution
//! — the standard way to synthesize realistic WAN traffic matrices from
//! nothing but a node count.

use p4update_des::SimRng;
use p4update_net::NodeId;

/// A synthesized traffic matrix: `demand[i][j]` is the rate from node `i`
/// to node `j` (zero on the diagonal), in link-capacity units.
#[derive(Debug, Clone)]
pub struct TrafficMatrix {
    demand: Vec<Vec<f64>>,
}

impl TrafficMatrix {
    /// Synthesize a gravity-model matrix for `n` nodes, scaled so the total
    /// demand equals `total`.
    pub fn gravity(rng: &mut SimRng, n: usize, total: f64) -> Self {
        assert!(n >= 2, "a traffic matrix needs at least two nodes");
        assert!(total > 0.0, "total demand must be positive");
        // Per-node in/out masses: exponential, as in Roughan's synthesis.
        let out_mass: Vec<f64> = (0..n).map(|_| rng.exponential(1.0)).collect();
        let in_mass: Vec<f64> = (0..n).map(|_| rng.exponential(1.0)).collect();
        let out_sum: f64 = out_mass.iter().sum();
        let in_sum: f64 = in_mass.iter().sum();
        let mut demand = vec![vec![0.0; n]; n];
        let mut sum = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let d = (out_mass[i] / out_sum) * (in_mass[j] / in_sum);
                    demand[i][j] = d;
                    sum += d;
                }
            }
        }
        // Normalize to the requested total.
        let scale = total / sum;
        for row in &mut demand {
            for d in row.iter_mut() {
                *d *= scale;
            }
        }
        TrafficMatrix { demand }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.demand.len()
    }

    /// True for a zero-node matrix (never produced by [`Self::gravity`]).
    pub fn is_empty(&self) -> bool {
        self.demand.is_empty()
    }

    /// Demand from `src` to `dst`.
    pub fn demand(&self, src: NodeId, dst: NodeId) -> f64 {
        self.demand[src.index()][dst.index()]
    }

    /// Total demand across all pairs.
    pub fn total(&self) -> f64 {
        self.demand.iter().flatten().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_normalized() {
        let mut rng = SimRng::new(1);
        let tm = TrafficMatrix::gravity(&mut rng, 10, 500.0);
        assert!((tm.total() - 500.0).abs() < 1e-6);
        assert_eq!(tm.len(), 10);
    }

    #[test]
    fn diagonal_is_zero_and_entries_nonnegative() {
        let mut rng = SimRng::new(2);
        let tm = TrafficMatrix::gravity(&mut rng, 8, 100.0);
        for i in 0..8 {
            assert_eq!(tm.demand(NodeId(i), NodeId(i)), 0.0);
            for j in 0..8 {
                assert!(tm.demand(NodeId(i), NodeId(j)) >= 0.0);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TrafficMatrix::gravity(&mut SimRng::new(7), 6, 10.0);
        let b = TrafficMatrix::gravity(&mut SimRng::new(7), 6, 10.0);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(
                    a.demand(NodeId(i), NodeId(j)),
                    b.demand(NodeId(i), NodeId(j))
                );
            }
        }
    }

    #[test]
    fn demands_are_heterogeneous() {
        let mut rng = SimRng::new(3);
        let tm = TrafficMatrix::gravity(&mut rng, 12, 100.0);
        let mut values: Vec<f64> = (0..12)
            .flat_map(|i| (0..12).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j)
            .map(|(i, j)| tm.demand(NodeId(i), NodeId(j)))
            .collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Gravity with exponential masses is skewed: the top pair should
        // carry much more than the median pair.
        let median = values[values.len() / 2];
        let max = *values.last().unwrap();
        assert!(max > 3.0 * median, "max {max} vs median {median}");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_node_panics() {
        TrafficMatrix::gravity(&mut SimRng::new(0), 1, 1.0);
    }
}
