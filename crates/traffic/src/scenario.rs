//! The evaluation's workload scenarios (§9.1):
//!
//! - **single flow**: old and new paths intentionally long and triggering
//!   segmentation, sufficient capacity everywhere;
//! - **multiple flows**: each node picks a destination uniformly at random,
//!   old = shortest path, new = 2nd-shortest path, gravity-model sizes
//!   aiming near capacity, regenerated until the new assignment is
//!   feasible.

use crate::gravity::TrafficMatrix;
use p4update_des::SimRng;
use p4update_net::{k_shortest_paths, FlowId, FlowUpdate, NodeId, Path, Topology};
use std::collections::BTreeMap;

/// A generated workload: per-flow updates plus the capacity view after the
/// *old* paths are allocated (the state an experiment starts from).
#[derive(Debug, Clone)]
pub struct Workload {
    /// One update per flow.
    pub updates: Vec<FlowUpdate>,
    /// Free capacity per directed link once every old path is allocated.
    pub free_capacity: BTreeMap<(NodeId, NodeId), f64>,
}

/// Allocate old paths against link capacities; `None` if any link
/// overflows.
fn allocate_old_paths(
    topo: &Topology,
    updates: &[FlowUpdate],
) -> Option<BTreeMap<(NodeId, NodeId), f64>> {
    let mut free: BTreeMap<(NodeId, NodeId), f64> = BTreeMap::new();
    for link in topo.links() {
        free.insert((link.a, link.b), link.capacity);
        free.insert((link.b, link.a), link.capacity);
    }
    for u in updates {
        if let Some(old) = &u.old_path {
            for e in old.edges() {
                let c = free.get_mut(&e).expect("path edges are links");
                *c -= u.size;
                if *c < -1e-9 {
                    return None;
                }
            }
        }
    }
    Some(free)
}

/// Check that migrating every flow to its new path ends feasible (the
/// generator's acceptance criterion: "if the new flow paths are not
/// feasible w.r.t. capacity, we repeat the traffic generation").
fn new_paths_feasible(topo: &Topology, updates: &[FlowUpdate]) -> bool {
    let mut free: BTreeMap<(NodeId, NodeId), f64> = BTreeMap::new();
    for link in topo.links() {
        free.insert((link.a, link.b), link.capacity);
        free.insert((link.b, link.a), link.capacity);
    }
    for u in updates {
        for e in u.new_path.edges() {
            let c = free.get_mut(&e).expect("path edges are links");
            *c -= u.size;
            if *c < -1e-9 {
                return false;
            }
        }
    }
    true
}

/// Count the backward transitions among the nodes shared by old and new
/// path: consecutive shared nodes (in new-path order) whose old-path
/// distance to the egress *increases* create the loop potential the
/// dual-layer mechanism exists for (§3.2).
fn backward_transitions(old: &Path, new: &Path) -> usize {
    let shared: Vec<u32> = new
        .nodes()
        .iter()
        .filter_map(|&n| old.distance_to_egress(n))
        .collect();
    shared.windows(2).filter(|w| w[0] <= w[1]).count()
}

/// Total number of fresh interior nodes inside *backward* segments: the
/// nodes whose rules the dual-layer mechanism can pre-install while the
/// segment waits for its loop dependency — the paper's headline
/// parallelization gain (§3.2, §10: "can also update the forwarding rules
/// of nodes inside backward segments right away").
fn backward_interior_size(old: &Path, new: &Path) -> usize {
    // Positions of shared (gateway) nodes on the new path with their
    // old-path distances.
    let gateways: Vec<(usize, u32)> = new
        .nodes()
        .iter()
        .enumerate()
        .filter_map(|(i, &n)| old.distance_to_egress(n).map(|d| (i, d)))
        .collect();
    gateways
        .windows(2)
        .filter(|w| w[0].1 <= w[1].1)
        .map(|w| w[1].0 - w[0].0 - 1)
        .sum()
}

/// Concatenate path legs, dropping the duplicated junction nodes; `None`
/// when the result revisits a node (not simple).
fn join_legs(legs: &[&Path]) -> Option<Path> {
    let mut nodes: Vec<NodeId> = Vec::new();
    for (i, leg) in legs.iter().enumerate() {
        let start = usize::from(i > 0);
        for &n in &leg.nodes()[start..] {
            if nodes.contains(&n) {
                return None;
            }
            nodes.push(n);
        }
    }
    (nodes.len() >= 2).then(|| Path::new(nodes))
}

/// Shortest path that avoids `banned` nodes entirely.
fn shortest_avoiding(topo: &Topology, src: NodeId, dst: NodeId, banned: &[NodeId]) -> Option<Path> {
    if banned.contains(&src) || banned.contains(&dst) || src == dst {
        return None;
    }
    // Reuse Yen's machinery through the public API: compute k-shortest
    // and filter. Cheaper: a dedicated filtered Dijkstra lives in
    // p4update-net's internals; here a small local search suffices for the
    // evaluated topology sizes.
    // Integer-nanosecond costs keep the heap ordering exact.
    let mut dist: Vec<u64> = vec![u64::MAX; topo.node_count()];
    let mut prev: Vec<Option<NodeId>> = vec![None; topo.node_count()];
    let mut heap = std::collections::BinaryHeap::new();
    dist[src.index()] = 0;
    heap.push((std::cmp::Reverse(0u64), src));
    while let Some((std::cmp::Reverse(d), v)) = heap.pop() {
        if v == dst {
            break;
        }
        if d > dist[v.index()] {
            continue;
        }
        for &(w, link) in topo.neighbors(v) {
            if banned.contains(&w) {
                continue;
            }
            let nd = dist[v.index()].saturating_add(topo.link(link).latency.as_nanos());
            if nd < dist[w.index()] {
                dist[w.index()] = nd;
                prev[w.index()] = Some(v);
                heap.push((std::cmp::Reverse(nd), w));
            }
        }
    }
    if dist[dst.index()] == u64::MAX {
        return None;
    }
    let mut nodes = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = prev[cur.index()]?;
        nodes.push(cur);
    }
    nodes.reverse();
    Some(Path::new(nodes))
}

/// The single-flow scenario. The paper intentionally selects old and new
/// paths that "traverse a long distance within the topology and ... trigger
/// segmentation" (§9.1) — i.e., a Fig. 1-shaped pair: the old path visits
/// intermediate waypoints `x` then `y`; the new path visits `y` then `x`
/// through fresh detours, producing forward segments plus one backward
/// segment with freshly-installed interior nodes. This constructor searches
/// all `(a, x, y, b)` waypoint combinations for the pair maximizing the
/// backward segment's interior, then total length.
pub fn single_flow(topo: &Topology) -> FlowUpdate {
    let nodes: Vec<NodeId> = topo.node_ids().collect();
    let mut best: Option<((usize, usize, usize), Path, Path)> = None;
    for &a in &nodes {
        for &b in &nodes {
            if a == b {
                continue;
            }
            for &x in &nodes {
                if x == a || x == b {
                    continue;
                }
                for &y in &nodes {
                    if y == a || y == b || y == x {
                        continue;
                    }
                    // Old path: a -> x -> y -> b along shortest legs.
                    let Some(l1) = shortest_avoiding(topo, a, x, &[y, b]) else {
                        continue;
                    };
                    let Some(l2) = shortest_avoiding(topo, x, y, &[a, b]) else {
                        continue;
                    };
                    let Some(l3) = shortest_avoiding(topo, y, b, &[a, x]) else {
                        continue;
                    };
                    let Some(old) = join_legs(&[&l1, &l2, &l3]) else {
                        continue;
                    };
                    // New path: a -> y -> x -> b avoiding the old path's
                    // interior nodes, so the detours are fresh installs.
                    let interior: Vec<NodeId> = old
                        .nodes()
                        .iter()
                        .copied()
                        .filter(|&n| n != a && n != b && n != x && n != y)
                        .collect();
                    // Only the backward (y -> x) leg must be fresh; the
                    // other legs may reuse old-path nodes (they become
                    // extra gateways, splitting forward segments).
                    let ban_ay = [x, b];
                    let Some(n1) = shortest_avoiding(topo, a, y, &ban_ay) else {
                        continue;
                    };
                    let mut ban_yx: Vec<NodeId> = interior.clone();
                    ban_yx.extend(n1.nodes().iter().copied().filter(|&n| n != y));
                    ban_yx.push(b);
                    let Some(n2) = shortest_avoiding(topo, y, x, &ban_yx) else {
                        continue;
                    };
                    let mut ban_xb: Vec<NodeId> = Vec::new();
                    ban_xb.extend(n1.nodes().iter().copied().filter(|&n| n != x));
                    ban_xb.extend(n2.nodes().iter().copied().filter(|&n| n != x));
                    let Some(n3) = shortest_avoiding(topo, x, b, &ban_xb) else {
                        continue;
                    };
                    let Some(new) = join_legs(&[&n1, &n2, &n3]) else {
                        continue;
                    };
                    if backward_transitions(&old, &new) == 0 {
                        continue;
                    }
                    let score = (
                        backward_interior_size(&old, &new).min(4),
                        backward_transitions(&old, &new).min(3),
                        old.hop_count() + new.hop_count(),
                    );
                    if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
                        best = Some((score, old, new));
                    }
                }
            }
        }
    }
    if let Some((_, old, new)) = best {
        return FlowUpdate::new(FlowId(0), Some(old), new, 1.0);
    }
    // Fallback: longest shortest/2nd-shortest pair.
    let mut fallback: Option<(usize, Path, Path)> = None;
    for &src in &nodes {
        for &dst in &nodes {
            if src >= dst {
                continue;
            }
            let paths = k_shortest_paths(topo, src, dst, 2);
            if paths.len() < 2 {
                continue;
            }
            let score = paths[0].hop_count() + paths[1].hop_count();
            if fallback.as_ref().is_none_or(|(s, _, _)| score > *s) {
                fallback = Some((score, paths[0].clone(), paths[1].clone()));
            }
        }
    }
    let (_, old, new) = fallback.expect("topology has at least one 2-path pair");
    FlowUpdate::new(FlowId(0), Some(old), new, 1.0)
}

/// The multiple-flows scenario: every node picks a distinct destination
/// uniformly at random; old = shortest path, new = 2nd-shortest; sizes
/// from a gravity matrix scaled to `load_factor` of the mean link
/// capacity times the link count (i.e., near capacity at 0.3–0.5 for the
/// evaluated WANs). Regenerates until old and new assignments are both
/// feasible.
pub fn multi_flow(topo: &Topology, rng: &mut SimRng, load_factor: f64) -> Workload {
    let nodes: Vec<NodeId> = topo.node_ids().collect();
    let n = nodes.len();
    let total_capacity: f64 = topo.links().iter().map(|l| l.capacity).sum();
    let target_total = total_capacity * load_factor;

    for _attempt in 0..200 {
        let tm = TrafficMatrix::gravity(rng, n, target_total);
        let mut updates = Vec::new();
        let mut ok = true;
        for (i, &src) in nodes.iter().enumerate() {
            // Uniformly random destination other than the source.
            let mut dst = nodes[rng.uniform_usize(n)];
            while dst == src {
                dst = nodes[rng.uniform_usize(n)];
            }
            let paths = k_shortest_paths(topo, src, dst, 2);
            if paths.len() < 2 {
                ok = false;
                break;
            }
            let size = tm
                .demand(src, dst)
                .max(target_total / (n as f64 * n as f64));
            updates.push(FlowUpdate::new(
                FlowId(i as u32),
                Some(paths[0].clone()),
                paths[1].clone(),
                size,
            ));
        }
        if !ok {
            continue;
        }
        if let Some(free) = allocate_old_paths(topo, &updates) {
            if new_paths_feasible(topo, &updates) {
                return Workload {
                    updates,
                    free_capacity: free,
                };
            }
        }
    }
    panic!(
        "could not generate a feasible workload for {} at load {load_factor}",
        topo.name
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4update_net::topologies;

    #[test]
    fn single_flow_triggers_segmentation_on_b4() {
        let topo = topologies::b4();
        let u = single_flow(&topo);
        let old = u.old_path.as_ref().expect("has old path");
        assert!(old.hop_count() >= 2);
        assert!(u.new_path.hop_count() >= 2);
        assert_ne!(old, &u.new_path);
        assert!(old.validate(&topo));
        assert!(u.new_path.validate(&topo));
    }

    #[test]
    fn single_flow_is_deterministic() {
        let topo = topologies::internet2();
        let a = single_flow(&topo);
        let b = single_flow(&topo);
        assert_eq!(a.new_path, b.new_path);
        assert_eq!(a.old_path, b.old_path);
    }

    #[test]
    fn multi_flow_generates_one_update_per_node() {
        let topo = topologies::b4();
        let mut rng = SimRng::new(11);
        let w = multi_flow(&topo, &mut rng, 0.3);
        assert_eq!(w.updates.len(), topo.node_count());
        for u in &w.updates {
            assert!(u.old_path.as_ref().unwrap().validate(&topo));
            assert!(u.new_path.validate(&topo));
            assert!(u.size > 0.0);
            assert_eq!(u.old_path.as_ref().unwrap().ingress(), u.new_path.ingress());
        }
    }

    #[test]
    fn multi_flow_old_allocation_fits_capacity() {
        let topo = topologies::internet2();
        let mut rng = SimRng::new(5);
        let w = multi_flow(&topo, &mut rng, 0.3);
        for &free in w.free_capacity.values() {
            assert!(free >= -1e-9, "over-allocated link: {free}");
        }
    }

    #[test]
    fn multi_flow_new_assignment_is_feasible() {
        let topo = topologies::b4();
        let mut rng = SimRng::new(9);
        let w = multi_flow(&topo, &mut rng, 0.3);
        assert!(new_paths_feasible(&topo, &w.updates));
    }

    #[test]
    fn fat_tree_multi_flow_works() {
        let topo = topologies::fat_tree(4);
        let mut rng = SimRng::new(13);
        let w = multi_flow(&topo, &mut rng, 0.2);
        assert_eq!(w.updates.len(), topo.node_count());
    }
}
