//! # p4update-traffic
//!
//! Workload generation for the evaluation (§9.1): gravity-model traffic
//! matrices (Roughan's synthesis) and the single-flow / multiple-flows
//! scenario builders, including the feasibility acceptance loop the paper
//! describes ("if the new flow paths are not feasible w.r.t. capacity, we
//! repeat the traffic generation").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gravity;
pub mod scenario;

pub use gravity::TrafficMatrix;
pub use scenario::{multi_flow, single_flow, Workload};
