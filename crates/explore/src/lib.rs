//! # p4update-explore
//!
//! Adversarial schedule exploration for the P4Update simulator.
//!
//! The discrete-event engine surfaces every nondeterministic decision —
//! same-timestamp tie-breaks and per-message fault injection — as a
//! numbered *choice point* (`p4update_des::Chooser`). This crate searches
//! the space of choice sequences for schedules that break the paper's
//! consistency properties (the paranoid checker is the oracle), shrinks
//! any counterexample to a minimal set of forced decisions with delta
//! debugging, and stores the result as a text [`Trace`] that replays
//! byte-identically in CI.
//!
//! Pipeline:
//!
//! 1. [`scenarios`] — named deterministic setups (Fig. 1, Fig. 2,
//!    many-gateway dual-layer).
//! 2. [`search`] — random-walk and bounded systematic exploration.
//! 3. [`shrink`] — ddmin minimization of a failing trace.
//! 4. [`trace`] — the replayable choice-trace format; [`verify_replay`]
//!    re-executes a trace and checks its pinned outcome.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenarios;
pub mod search;
pub mod shrink;
pub mod trace;

pub use trace::{ChoiceRecord, ForcedChoice, FreePolicy, Trace, TraceChooser};

use p4update_core::Violation;
use p4update_net::Partitioner;
use std::collections::BTreeMap;

/// Outcome of one explored or replayed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Events delivered before the horizon (or queue drain).
    pub events: u64,
    /// Whether the event queue drained before the horizon.
    pub drained: bool,
    /// Violations the paranoid checker recorded, in detection order
    /// (deduplicated by the simulator).
    pub violations: Vec<Violation>,
    /// Every choice point consulted, in consultation order.
    pub choices: Vec<ChoiceRecord>,
}

/// Execute `scenario` at `seed` with the given forced decisions; free
/// choice points resolve through `free`. Errors on unknown scenario
/// names.
pub fn run(
    scenario: &str,
    seed: u64,
    forced: BTreeMap<u64, ForcedChoice>,
    free: FreePolicy,
) -> Result<RunReport, String> {
    run_inner(scenario, seed, forced, free, None)
}

/// Like [`run`], but forcing the engine's event-queue backend. Both
/// backends promise the same (time, seq) total order, so the report —
/// event count, drain flag, violations, and the full choice-consultation
/// sequence — must be identical; the workspace differential test replays
/// the whole corpus through this to prove it.
pub fn run_with_backend(
    scenario: &str,
    seed: u64,
    forced: BTreeMap<u64, ForcedChoice>,
    free: FreePolicy,
    backend: p4update_des::QueueBackend,
) -> Result<RunReport, String> {
    run_inner(scenario, seed, forced, free, Some(backend))
}

/// Like [`run`], but running the *merged sharded* event queue: the
/// scheduler splits into `partitions` pod-partitioned shards plus a
/// controller shard and pops the global `(time, seq)` minimum across
/// them ([`p4update_des::Simulation::with_partitions`]). This keeps the
/// fully general sequential semantics — faults, forced choices, paranoid
/// checking — so every corpus trace must replay byte-identically at any
/// partition count; `tests/partition_equivalence.rs` enforces that.
pub fn run_partitioned(
    scenario: &str,
    seed: u64,
    forced: BTreeMap<u64, ForcedChoice>,
    free: FreePolicy,
    partitions: usize,
) -> Result<RunReport, String> {
    run_full(scenario, seed, forced, free, None, Some(partitions))
}

/// Outcome of one deterministic scenario run through the windowed
/// parallel engine ([`p4update_sim::PartitionedSim`]) or its sequential
/// baseline (see [`run_windowed`]).
///
/// Equality of two reports means the runs were observationally
/// identical: same event count, same drain status, and the same final
/// world metrics (the `fingerprint` is the full debug rendering of
/// [`p4update_sim::Metrics`], which captures every per-flow transition
/// the run produced). The window counters are engine diagnostics and
/// deliberately *not* part of the fingerprint — they vary with the
/// partition count and coalescing setting while the observables must
/// not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowedReport {
    /// Events delivered before the horizon (or queue drain).
    pub events: u64,
    /// Whether the event queue drained before the horizon.
    pub drained: bool,
    /// Synchronization rounds the windowed engine ran (0 for the
    /// sequential baseline).
    pub windows: u64,
    /// Rounds that advanced past the fixed-lookahead window width via
    /// coalescing or a serial phase (0 for the sequential baseline and
    /// with coalescing disabled).
    pub windows_coalesced: u64,
    /// Debug rendering of the final world metrics.
    pub fingerprint: String,
}

impl WindowedReport {
    /// The observable portion of the report — everything except the
    /// engine-diagnostic window counters. Two runs of the same scenario
    /// must agree on this at every partition count, thread count, and
    /// coalescing setting.
    pub fn observables(&self) -> (u64, bool, &str) {
        (self.events, self.drained, &self.fingerprint)
    }
}

/// Run deterministic scenario `name` at `seed` through the windowed
/// parallel engine with `partitions` partitions and `threads` worker
/// threads, or — with `partitions == 0` — through the plain sequential
/// engine as the baseline. `coalescing` toggles window coalescing and
/// serial phases (ignored by the baseline).
///
/// Scenarios come from [`scenarios::build_deterministic`], so the world
/// carries the engine-portable configuration (no faults, no paranoid
/// oracle, analysis gate off) and the same name/seed builds the exact
/// same world for every engine. Fat-tree topologies are cut per pod;
/// topologies outside the fat-tree name grammar (where the pod
/// partitioner lands everything in partition 0) fall back to the
/// striped cut so the partition count is honoured.
pub fn run_windowed(
    name: &str,
    seed: u64,
    partitions: usize,
    threads: usize,
    coalescing: bool,
) -> Result<WindowedReport, String> {
    let det = scenarios::build_deterministic(name, seed)
        .ok_or_else(|| format!("unknown or modified scenario {name:?}"))?;
    if partitions == 0 {
        let mut sim = p4update_sim::simulation(det.world);
        sim.schedule_at(
            det.trigger_at,
            p4update_sim::Event::Trigger { batch: det.batch },
        );
        let outcome = sim.run_until(det.horizon);
        let events = sim.events_delivered();
        let world = sim.into_world();
        return Ok(WindowedReport {
            events,
            drained: outcome.drained(),
            windows: 0,
            windows_coalesced: 0,
            fingerprint: format!("{:?}", world.metrics()),
        });
    }
    let pod = p4update_net::PodPartitioner::new(det.world.topology(), partitions);
    let striped = partitions > 1
        && det
            .world
            .topology()
            .node_ids()
            .all(|id| pod.partition_of(id) == 0);
    let stripe = p4update_net::StripePartitioner::new(partitions);
    let part: &dyn p4update_net::Partitioner = if striped { &stripe } else { &pod };
    let mut sim =
        p4update_sim::PartitionedSim::new(det.world, part, threads)?.with_coalescing(coalescing);
    sim.schedule_at(
        det.trigger_at,
        p4update_sim::Event::Trigger { batch: det.batch },
    );
    let outcome = sim.run_until(det.horizon).map_err(|v| v.to_string())?;
    let events = sim.events_delivered();
    let windows = sim.windows();
    let windows_coalesced = sim.windows_coalesced();
    let world = sim.into_world();
    Ok(WindowedReport {
        events,
        drained: outcome.drained(),
        windows,
        windows_coalesced,
        fingerprint: format!("{:?}", world.metrics()),
    })
}

/// [`replay`] through the merged sharded queue (see [`run_partitioned`]).
pub fn replay_partitioned(trace: &Trace, partitions: usize) -> Result<RunReport, String> {
    run_partitioned(
        &trace.scenario,
        trace.seed,
        trace.choices.clone(),
        FreePolicy::Default,
        partitions,
    )
}

fn run_inner(
    scenario: &str,
    seed: u64,
    forced: BTreeMap<u64, ForcedChoice>,
    free: FreePolicy,
    backend: Option<p4update_des::QueueBackend>,
) -> Result<RunReport, String> {
    run_full(scenario, seed, forced, free, backend, None)
}

fn run_full(
    scenario: &str,
    seed: u64,
    forced: BTreeMap<u64, ForcedChoice>,
    free: FreePolicy,
    backend: Option<p4update_des::QueueBackend>,
    partitions: Option<usize>,
) -> Result<RunReport, String> {
    let built =
        scenarios::build(scenario, seed).ok_or_else(|| format!("unknown scenario {scenario:?}"))?;
    let (chooser, log) = TraceChooser::with_policy(forced, free);
    let mut sim = built.sim.with_chooser(Box::new(chooser));
    if let Some(backend) = backend {
        sim = sim.with_queue_backend(backend);
    }
    if let Some(partitions) = partitions {
        let topo = sim.world().topology();
        let part = p4update_net::PodPartitioner::new(topo, partitions);
        let router = p4update_sim::event_router(topo, &part);
        // `partitions` switch shards + 1 controller shard.
        sim = sim.with_partitions(partitions.max(1) + 1, router);
    }
    let outcome = sim.run_until(built.horizon);
    let events = sim.events_delivered();
    let world = sim.into_world();
    let violations = world.violations.into_iter().map(|(_, v)| v).collect();
    let choices = log.lock().expect("choice log lock").clone();
    Ok(RunReport {
        events,
        drained: outcome.drained(),
        violations,
        choices,
    })
}

/// Replay `trace` exactly: its forced decisions, defaults everywhere
/// else. Does *not* check the trace's pinned expectations — see
/// [`verify_replay`].
pub fn replay(trace: &Trace) -> Result<RunReport, String> {
    run(
        &trace.scenario,
        trace.seed,
        trace.choices.clone(),
        FreePolicy::Default,
    )
}

/// [`replay`] under an explicitly chosen event-queue backend (see
/// [`run_with_backend`]).
pub fn replay_with_backend(
    trace: &Trace,
    backend: p4update_des::QueueBackend,
) -> Result<RunReport, String> {
    run_with_backend(
        &trace.scenario,
        trace.seed,
        trace.choices.clone(),
        FreePolicy::Default,
        backend,
    )
}

/// Replay `trace` and check its pinned expectations (event count and the
/// exact violation list). Returns the report on success and a diagnostic
/// string on the first mismatch — this is the CI-facing entry point for
/// the committed corpus.
pub fn verify_replay(trace: &Trace) -> Result<RunReport, String> {
    let report = replay(trace)?;
    if let Some(expected) = trace.expect_events {
        if expected != report.events {
            return Err(format!(
                "{}@{}: expected {expected} events, replay delivered {}",
                trace.scenario, trace.seed, report.events
            ));
        }
    }
    if trace.expect_violations != report.violations {
        return Err(format!(
            "{}@{}: expected violations {:?}, replay produced {:?}",
            trace.scenario,
            trace.seed,
            trace
                .expect_violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>(),
            report
                .violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
        ));
    }
    Ok(report)
}

/// Canonicalize and pin `trace`: replay it, rebuild the forced set from
/// the decisions that actually deviated (dropping stale no-op entries and
/// refreshing recorded kind/arity), and pin the replay's event count and
/// violation list as the trace's expectations. After `pin`,
/// [`verify_replay`] succeeds by construction.
pub fn pin(trace: &mut Trace) -> Result<RunReport, String> {
    let report = replay(trace)?;
    let canonical = Trace::from_choices(trace.scenario.clone(), trace.seed, &report.choices);
    trace.choices = canonical.choices;
    trace.expect_events = Some(report.events);
    trace.expect_violations = report.violations.clone();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_scenario_is_an_error() {
        let t = Trace::new("nope", 1);
        assert!(replay(&t).is_err());
    }

    #[test]
    fn default_replay_is_deterministic_and_clean() {
        // The base schedule (no forced deviations) of every scenario is
        // consistent and reproducible run-to-run.
        for info in scenarios::SCENARIOS {
            let t = Trace::new(info.name, 1);
            let a = replay(&t).unwrap();
            let b = replay(&t).unwrap();
            assert_eq!(a, b, "{} not deterministic", info.name);
            assert!(
                a.violations.is_empty(),
                "{} base run violated: {:?}",
                info.name,
                a.violations
            );
            assert!(a.events > 0);
            assert!(!a.choices.is_empty(), "{} consulted no choices", info.name);
        }
    }

    #[test]
    fn pin_makes_verify_replay_pass() {
        let mut t = Trace::new("fig1-single", 3);
        // A forced entry that will be a no-op (huge index): pin drops it.
        t.choices.insert(
            u64::MAX - 1,
            ForcedChoice {
                kind: p4update_des::ChoiceKind::Fault,
                arity: 4,
                pick: 1,
            },
        );
        pin(&mut t).unwrap();
        assert!(t.choices.is_empty(), "stale entry should canonicalize away");
        assert!(t.expect_events.is_some());
        verify_replay(&t).unwrap();
    }

    #[test]
    fn run_windowed_matches_the_sequential_baseline() {
        // fig1 is outside the fat-tree name grammar, so this also
        // exercises the striped-cut fallback.
        let base = run_windowed("fig1-dual", 1, 0, 1, true).unwrap();
        assert!(base.events > 0);
        assert!(base.drained);
        assert_eq!(base.windows, 0);
        for coalescing in [true, false] {
            let w = run_windowed("fig1-dual", 1, 2, 1, coalescing).unwrap();
            assert_eq!(
                w.observables(),
                base.observables(),
                "coalescing={coalescing}"
            );
            assert!(w.windows > 0);
        }
    }

    #[test]
    fn run_windowed_rejects_modified_scenarios() {
        assert!(run_windowed("fig1-dual+repl2", 1, 2, 1, true).is_err());
        assert!(run_windowed("nope", 1, 2, 1, true).is_err());
    }

    #[test]
    fn verify_replay_reports_expectation_mismatch() {
        let mut t = Trace::new("fig2-p4", 1);
        pin(&mut t).unwrap();
        t.expect_events = Some(t.expect_events.unwrap() + 1);
        let err = verify_replay(&t).unwrap_err();
        assert!(err.contains("expected"), "unhelpful error: {err}");
    }
}
