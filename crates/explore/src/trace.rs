//! The choice trace: a recorded path through the engine's choice points,
//! with a line-oriented text format that replays byte-identically.
//!
//! A run of the simulator consults its [`Chooser`] at a sequence of choice
//! points; numbering those consultations `0, 1, 2, …` gives every decision
//! a stable index *along its own trajectory*. A trace stores the decisions
//! that deviated from the default (everything not listed is alternative
//! `0`), plus the expected outcome, so a committed counterexample can be
//! re-executed and checked on every CI run.
//!
//! ## File format (version 1)
//!
//! ```text
//! # p4update-explore choice trace v1
//! scenario fig2-ez
//! seed 1
//! expect-events 412
//! expect-violation loop flow=0 cycle=3>1>2
//! choice 17 fault 4 1
//! choice 23 tie 3 2
//! ```
//!
//! - `scenario` / `seed` identify the deterministic base run (see
//!   [`crate::scenarios`]).
//! - `expect-events` is the total number of delivered events; together
//!   with the `expect-violation` lines (in detection order, stable
//!   encoding from `p4update_core::Violation`) it pins the replay outcome
//!   exactly.
//! - `choice <index> <kind> <arity> <pick>` forces consultation `<index>`
//!   to `<pick>`. Kind and arity document the decision; replay applies the
//!   pick by index and ignores a forced entry whose pick is out of range
//!   for the arity actually encountered (that only happens to stale or
//!   hand-edited traces — the shrinker relies on this no-op semantic while
//!   it perturbs prefixes).
//! - `#`-prefixed lines and blank lines are comments.
//!
//! ## Version 2
//!
//! Format version 2 is version 1 plus the `byz` choice kind (byzantine
//! lying decisions, `p4update_des::ChoiceKind::Byzantine`). Serialization
//! picks the *lowest* version that can express the trace — a trace with no
//! byzantine choices emits the v1 header byte-for-byte — so the committed
//! v1 corpus is untouched by the format extension. The parser accepts both
//! headers; a `byz` choice under an explicit v1 header is a parse error
//! (the file lies about its own version).

use p4update_core::Violation;
use p4update_des::{ChoiceKind, Chooser, SimRng};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Format-version marker, first line of every trace file (version 1).
pub const TRACE_HEADER: &str = "# p4update-explore choice trace v1";

/// Version-2 marker: v1 plus byzantine (`byz`) choices (see module docs).
pub const TRACE_HEADER_V2: &str = "# p4update-explore choice trace v2";

/// One consulted choice point: its consultation index, what kind of
/// decision it was, how many alternatives existed, and which was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChoiceRecord {
    /// Consultation sequence number within the run (0-based).
    pub index: u64,
    /// Decision kind (advisory; see module docs).
    pub kind: ChoiceKind,
    /// Number of alternatives presented.
    pub arity: u32,
    /// Alternative taken (`0` = default).
    pub pick: u32,
}

/// A forced decision stored in a trace (the record minus its index, which
/// is the map key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForcedChoice {
    /// Decision kind as recorded.
    pub kind: ChoiceKind,
    /// Arity as recorded.
    pub arity: u32,
    /// Alternative to take.
    pub pick: u32,
}

/// A replayable choice trace (see module docs for the file format).
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Name of the scenario in [`crate::scenarios`] this trace drives.
    pub scenario: String,
    /// Scenario seed.
    pub seed: u64,
    /// Expected total delivered events, if pinned.
    pub expect_events: Option<u64>,
    /// Expected violations in detection order (empty = clean run
    /// expected only if `expect_events` is also set; an un-pinned trace
    /// carries no expectations).
    pub expect_violations: Vec<Violation>,
    /// Forced decisions by consultation index.
    pub choices: BTreeMap<u64, ForcedChoice>,
}

impl Trace {
    /// An empty trace for `scenario`/`seed`: replays the default schedule.
    pub fn new(scenario: impl Into<String>, seed: u64) -> Self {
        Trace {
            scenario: scenario.into(),
            seed,
            expect_events: None,
            expect_violations: Vec::new(),
            choices: BTreeMap::new(),
        }
    }

    /// Build a trace from a run's full choice log, keeping only the
    /// non-default decisions (the rest replay as `0` implicitly).
    pub fn from_choices(scenario: impl Into<String>, seed: u64, log: &[ChoiceRecord]) -> Self {
        let mut t = Trace::new(scenario, seed);
        for r in log {
            if r.pick != 0 {
                t.choices.insert(
                    r.index,
                    ForcedChoice {
                        kind: r.kind,
                        arity: r.arity,
                        pick: r.pick,
                    },
                );
            }
        }
        t
    }

    /// Number of forced (non-default) decisions.
    pub fn forced_count(&self) -> usize {
        self.choices.len()
    }

    /// True when the trace needs format version 2 (it forces at least one
    /// byzantine decision).
    pub fn needs_v2(&self) -> bool {
        self.choices
            .values()
            .any(|c| c.kind == ChoiceKind::Byzantine)
    }

    /// Serialize to the text format, under the lowest format version that
    /// can express the trace. `parse` of the result yields an equal trace,
    /// and serializing that parses back byte-identically.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let header = if self.needs_v2() {
            TRACE_HEADER_V2
        } else {
            TRACE_HEADER
        };
        let _ = writeln!(s, "{header}");
        let _ = writeln!(s, "scenario {}", self.scenario);
        let _ = writeln!(s, "seed {}", self.seed);
        if let Some(ev) = self.expect_events {
            let _ = writeln!(s, "expect-events {ev}");
        }
        for v in &self.expect_violations {
            let _ = writeln!(s, "expect-violation {v}");
        }
        for (&index, c) in &self.choices {
            let _ = writeln!(
                s,
                "choice {index} {} {} {}",
                c.kind.token(),
                c.arity,
                c.pick
            );
        }
        s
    }

    /// Parse the text format. Returns a description of the first problem
    /// on malformed input.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut scenario: Option<String> = None;
        let mut seed: Option<u64> = None;
        let mut expect_events = None;
        let mut expect_violations = Vec::new();
        let mut choices = BTreeMap::new();
        // Declared format version, when a header comment is present.
        // Headerless traces (hand-written tests) are treated leniently as
        // the newest version.
        let mut declared: Option<u8> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let err = |what: &str| format!("line {}: {what}: {raw:?}", lineno + 1);
            if line.is_empty() || line.starts_with('#') {
                if line == TRACE_HEADER {
                    declared = Some(1);
                } else if line == TRACE_HEADER_V2 {
                    declared = Some(2);
                }
                continue;
            }
            let (key, rest) = line.split_once(' ').ok_or_else(|| err("missing value"))?;
            match key {
                "scenario" => scenario = Some(rest.trim().to_string()),
                "seed" => {
                    seed = Some(rest.trim().parse().map_err(|_| err("bad seed"))?);
                }
                "expect-events" => {
                    expect_events = Some(rest.trim().parse().map_err(|_| err("bad count"))?);
                }
                "expect-violation" => {
                    expect_violations
                        .push(Violation::parse(rest.trim()).ok_or_else(|| err("bad violation"))?);
                }
                "choice" => {
                    let parts: Vec<&str> = rest.split_whitespace().collect();
                    let [index, kind, arity, pick] = parts.as_slice() else {
                        return Err(err("expected: choice <index> <kind> <arity> <pick>"));
                    };
                    let kind = ChoiceKind::from_token(kind).ok_or_else(|| err("bad kind"))?;
                    if kind == ChoiceKind::Byzantine && declared == Some(1) {
                        return Err(err("byzantine choice in a trace declared v1"));
                    }
                    let arity: u32 = arity.parse().map_err(|_| err("bad arity"))?;
                    let pick: u32 = pick.parse().map_err(|_| err("bad pick"))?;
                    if arity < 2 || pick == 0 || pick >= arity {
                        return Err(err("pick must be in [1, arity) and arity >= 2"));
                    }
                    let index: u64 = index.parse().map_err(|_| err("bad index"))?;
                    if choices
                        .insert(index, ForcedChoice { kind, arity, pick })
                        .is_some()
                    {
                        return Err(err("duplicate choice index"));
                    }
                }
                _ => return Err(err("unknown directive")),
            }
        }
        Ok(Trace {
            scenario: scenario.ok_or("missing `scenario` line")?,
            seed: seed.ok_or("missing `seed` line")?,
            expect_events,
            expect_violations,
            choices,
        })
    }
}

/// What an exploring chooser does at choice points that are *not* forced
/// by a trace prefix.
pub enum FreePolicy {
    /// Take the default (alternative 0) everywhere: pure replay.
    Default,
    /// Random walk: deviate from the default with the given per-kind
    /// probabilities, choosing uniformly among the non-default
    /// alternatives when deviating.
    Random {
        /// The walk's private RNG (independent of the scenario seed).
        rng: SimRng,
        /// Probability of injecting a fault at a `Fault` choice point.
        fault_p: f64,
        /// Probability of a non-FIFO pick at a `TieBreak` choice point.
        tie_p: f64,
        /// Probability of lying at a `Byzantine` choice point.
        byz_p: f64,
    },
}

/// The exploring chooser: forces a trace's decisions by consultation
/// index, resolves everything else through a [`FreePolicy`], and logs the
/// complete decision sequence into a shared buffer the driver reads back
/// after the run.
pub struct TraceChooser {
    next_index: u64,
    forced: BTreeMap<u64, ForcedChoice>,
    free: FreePolicy,
    log: Arc<Mutex<Vec<ChoiceRecord>>>,
}

impl TraceChooser {
    /// Chooser for a pure replay of `trace`.
    pub fn replay(trace: &Trace) -> (Self, Arc<Mutex<Vec<ChoiceRecord>>>) {
        Self::with_policy(trace.choices.clone(), FreePolicy::Default)
    }

    /// Chooser with explicit forced decisions and free policy.
    pub fn with_policy(
        forced: BTreeMap<u64, ForcedChoice>,
        free: FreePolicy,
    ) -> (Self, Arc<Mutex<Vec<ChoiceRecord>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        (
            TraceChooser {
                next_index: 0,
                forced,
                free,
                log: Arc::clone(&log),
            },
            log,
        )
    }
}

impl Chooser for TraceChooser {
    fn choose(&mut self, kind: ChoiceKind, arity: usize) -> usize {
        let index = self.next_index;
        self.next_index += 1;
        let pick = match self.forced.get(&index) {
            // Out-of-range forced picks are no-ops (see module docs).
            Some(f) if (f.pick as usize) < arity => f.pick as usize,
            Some(_) => 0,
            None => match &mut self.free {
                FreePolicy::Default => 0,
                FreePolicy::Random {
                    rng,
                    fault_p,
                    tie_p,
                    byz_p,
                } => {
                    let p = match kind {
                        ChoiceKind::Fault => *fault_p,
                        ChoiceKind::TieBreak => *tie_p,
                        ChoiceKind::Byzantine => *byz_p,
                    };
                    if rng.chance(p) {
                        1 + rng.uniform_usize(arity - 1)
                    } else {
                        0
                    }
                }
            },
        };
        self.log
            .lock()
            .expect("choice log lock")
            .push(ChoiceRecord {
                index,
                kind,
                arity: arity as u32,
                pick: pick as u32,
            });
        pick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4update_net::{FlowId, NodeId};

    fn sample_trace() -> Trace {
        let mut t = Trace::new("fig2-ez", 1);
        t.expect_events = Some(412);
        t.expect_violations = vec![Violation::Loop {
            flow: FlowId(0),
            cycle: vec![NodeId(3), NodeId(1), NodeId(2)],
        }];
        t.choices.insert(
            17,
            ForcedChoice {
                kind: ChoiceKind::Fault,
                arity: 4,
                pick: 1,
            },
        );
        t.choices.insert(
            23,
            ForcedChoice {
                kind: ChoiceKind::TieBreak,
                arity: 3,
                pick: 2,
            },
        );
        t
    }

    #[test]
    fn text_round_trip_is_byte_identical() {
        let t = sample_trace();
        let text = t.to_text();
        let parsed = Trace::parse(&text).unwrap();
        assert_eq!(parsed, t);
        assert_eq!(parsed.to_text(), text);
    }

    /// Traces without byzantine choices keep emitting the v1 header
    /// byte-for-byte; a byzantine choice upgrades the header to v2 and
    /// still round-trips.
    #[test]
    fn version_is_the_lowest_that_expresses_the_trace() {
        let v1 = sample_trace();
        assert!(!v1.needs_v2());
        assert!(v1.to_text().starts_with(TRACE_HEADER));

        let mut v2 = sample_trace();
        v2.choices.insert(
            40,
            ForcedChoice {
                kind: ChoiceKind::Byzantine,
                arity: 2,
                pick: 1,
            },
        );
        assert!(v2.needs_v2());
        let text = v2.to_text();
        assert!(text.starts_with(TRACE_HEADER_V2));
        let parsed = Trace::parse(&text).unwrap();
        assert_eq!(parsed, v2);
        assert_eq!(parsed.to_text(), text);
    }

    /// A `byz` choice under an explicit v1 header is a lie about the
    /// file's own version and must be rejected; headerless hand-written
    /// traces stay lenient.
    #[test]
    fn byzantine_choices_are_rejected_under_a_v1_header() {
        let bad = format!("{TRACE_HEADER}\nscenario x\nseed 1\nchoice 0 byz 2 1\n");
        assert!(Trace::parse(&bad).unwrap_err().contains("v1"));
        let ok = "scenario x\nseed 1\nchoice 0 byz 2 1\n";
        assert_eq!(Trace::parse(ok).unwrap().forced_count(), 1);
        let ok2 = format!("{TRACE_HEADER_V2}\nscenario x\nseed 1\nchoice 0 byz 2 1\n");
        assert!(Trace::parse(&ok2).is_ok());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# hello\n\nscenario x\n# mid\nseed 7\n";
        let t = Trace::parse(text).unwrap();
        assert_eq!(t.scenario, "x");
        assert_eq!(t.seed, 7);
        assert!(t.choices.is_empty());
    }

    #[test]
    fn malformed_lines_are_rejected_with_location() {
        for bad in [
            "seed 1\n",                                // missing scenario
            "scenario x\n",                            // missing seed
            "scenario x\nseed nope\n",                 // bad seed
            "scenario x\nseed 1\nchoice 0 tie 3\n",    // short choice
            "scenario x\nseed 1\nchoice 0 tie 3 0\n",  // default pick stored
            "scenario x\nseed 1\nchoice 0 tie 3 3\n",  // pick >= arity
            "scenario x\nseed 1\nchoice 0 warp 3 1\n", // unknown kind
            "scenario x\nseed 1\nfrobnicate 9\n",      // unknown directive
            "scenario x\nseed 1\nexpect-violation ???\n",
        ] {
            assert!(Trace::parse(bad).is_err(), "accepted: {bad:?}");
        }
        let dup = "scenario x\nseed 1\nchoice 0 tie 3 1\nchoice 0 tie 3 2\n";
        assert!(Trace::parse(dup).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn replay_chooser_forces_by_index_and_logs_everything() {
        let t = sample_trace();
        let (mut chooser, log) = TraceChooser::replay(&t);
        // Indices 0..17 free (default), 17 forced to 1, 18.. free.
        for i in 0..17 {
            assert_eq!(chooser.choose(ChoiceKind::Fault, 4), 0, "index {i}");
        }
        assert_eq!(chooser.choose(ChoiceKind::Fault, 4), 1);
        // Forced pick out of range for the encountered arity: no-op.
        for _ in 18..23 {
            chooser.choose(ChoiceKind::TieBreak, 2);
        }
        assert_eq!(chooser.choose(ChoiceKind::TieBreak, 2), 0); // pick 2 >= arity 2
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 24);
        assert_eq!(log[17].pick, 1);
        assert_eq!(log[23].pick, 0);
    }

    #[test]
    fn from_choices_keeps_only_deviations() {
        let log = vec![
            ChoiceRecord {
                index: 0,
                kind: ChoiceKind::TieBreak,
                arity: 2,
                pick: 0,
            },
            ChoiceRecord {
                index: 1,
                kind: ChoiceKind::Fault,
                arity: 4,
                pick: 2,
            },
        ];
        let t = Trace::from_choices("s", 9, &log);
        assert_eq!(t.forced_count(), 1);
        assert_eq!(t.choices[&1].pick, 2);
    }

    #[test]
    fn random_policy_is_reproducible() {
        let run = |seed: u64| {
            let (mut c, log) = TraceChooser::with_policy(
                BTreeMap::new(),
                FreePolicy::Random {
                    rng: SimRng::new(seed),
                    fault_p: 0.3,
                    tie_p: 0.3,
                    byz_p: 0.3,
                },
            );
            for _ in 0..100 {
                c.choose(ChoiceKind::Fault, 4);
                c.choose(ChoiceKind::TieBreak, 3);
            }
            let log = log.lock().unwrap().clone();
            log
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
