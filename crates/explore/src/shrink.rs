//! Counterexample shrinking: delta debugging over a failing trace's
//! forced decisions.
//!
//! A random walk typically deviates at dozens of choice points, of which
//! one or two actually matter. [`shrink`] minimizes the forced set with
//! ddmin (Zeller & Hildebrandt): repeatedly re-run the scenario with
//! subsets of the deviations and keep any subset that still triggers the
//! target violation, then additionally lower each surviving pick toward
//! the default. The result is canonicalized and pinned, so it lands in
//! the corpus ready for byte-exact replay.

use crate::trace::{ForcedChoice, FreePolicy, Trace};
use crate::{pin, run, RunReport};
use p4update_core::Violation;
use std::collections::BTreeMap;

/// A shrink result: the minimized trace and accounting.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized, canonicalized, pinned trace.
    pub trace: Trace,
    /// Report of the minimized trace's replay.
    pub report: RunReport,
    /// Simulation runs spent shrinking (including the pinning replay).
    pub runs_used: u32,
}

/// Minimize `trace` while `target` stays among the replay's violations.
///
/// Errors if `trace` does not reproduce `target` to begin with, or on
/// scenario failures. The returned trace is 1-minimal with respect to
/// entry removal: deleting any single remaining forced decision loses the
/// violation.
pub fn shrink(trace: &Trace, target: &Violation) -> Result<ShrinkOutcome, String> {
    let mut runs_used = 0;
    let mut test = |choices: &BTreeMap<u64, ForcedChoice>| -> Result<bool, String> {
        runs_used += 1;
        let report = run(
            &trace.scenario,
            trace.seed,
            choices.clone(),
            FreePolicy::Default,
        )?;
        Ok(report.violations.contains(target))
    };

    if !test(&trace.choices)? {
        return Err(format!(
            "trace does not reproduce the target violation `{target}`"
        ));
    }

    let mut current: Vec<(u64, ForcedChoice)> =
        trace.choices.iter().map(|(&i, &c)| (i, c)).collect();

    // Phase 1: ddmin over the entry list.
    if !current.is_empty() && test(&BTreeMap::new())? {
        current.clear();
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = None;
        for i in 0..granularity {
            let start = i * chunk;
            if start >= current.len() {
                break;
            }
            let end = (start + chunk).min(current.len());
            // Complement: everything except chunk i.
            let candidate: BTreeMap<u64, ForcedChoice> = current[..start]
                .iter()
                .chain(&current[end..])
                .copied()
                .collect();
            if candidate.len() < current.len() && test(&candidate)? {
                reduced = Some(candidate);
                break;
            }
        }
        match reduced {
            Some(candidate) => {
                current = candidate.into_iter().collect();
                granularity = granularity.saturating_sub(1).max(2);
            }
            None => {
                if granularity >= current.len() {
                    break;
                }
                granularity = (granularity * 2).min(current.len());
            }
        }
    }

    // Phase 2: lower surviving picks toward the default (a duplicate that
    // could have been a drop, a later tie pick that could have been an
    // earlier one).
    for entry_idx in 0..current.len() {
        let (index, choice) = current[entry_idx];
        for lower in 1..choice.pick {
            let mut candidate: BTreeMap<u64, ForcedChoice> = current.iter().copied().collect();
            candidate.insert(
                index,
                ForcedChoice {
                    pick: lower,
                    ..choice
                },
            );
            if test(&candidate)? {
                current[entry_idx].1.pick = lower;
                break;
            }
        }
    }

    let mut minimized = Trace::new(trace.scenario.clone(), trace.seed);
    minimized.choices = current.into_iter().collect();
    let report = pin(&mut minimized)?;
    runs_used += 1;
    if !report.violations.contains(target) {
        return Err("shrink lost the target violation while pinning".into());
    }
    Ok(ShrinkOutcome {
        trace: minimized,
        report,
        runs_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{random_walk, WalkOptions};
    use crate::verify_replay;

    /// End-to-end tentpole property: search finds the Fig. 2 loop, shrink
    /// reduces it to very few forced decisions, and the result is
    /// 1-minimal and verifies byte-exactly.
    #[test]
    fn shrinks_the_fig2_counterexample_to_a_minimal_trace() {
        let hit = random_walk("fig2-ez", 1, WalkOptions::default())
            .unwrap()
            .expect("walk must find the Fig. 2 loop");
        let target = hit
            .report
            .violations
            .iter()
            .find(|v| matches!(v, Violation::Loop { .. }))
            .expect("loop violation")
            .clone();
        let before = hit.trace.forced_count();
        let out = shrink(&hit.trace, &target).unwrap();
        let after = out.trace.forced_count();
        assert!(after <= before, "shrinking must not grow the trace");
        assert!(
            after <= 3,
            "Fig. 2 needs at most a couple of deviations, kept {after}"
        );
        assert!(out.report.violations.contains(&target));

        // Pinned: replays with identical outcome, byte-identical text.
        let replayed = verify_replay(&out.trace).unwrap();
        assert_eq!(replayed.events, out.report.events);
        let text = out.trace.to_text();
        let reparsed = Trace::parse(&text).unwrap();
        assert_eq!(reparsed.to_text(), text);

        // 1-minimal: dropping any single forced decision loses the loop.
        for &idx in out.trace.choices.keys() {
            let mut fewer = out.trace.clone();
            fewer.choices.remove(&idx);
            let report = crate::replay(&fewer).unwrap();
            assert!(
                !report.violations.contains(&target),
                "forced decision {idx} was removable"
            );
        }
    }

    #[test]
    fn shrink_rejects_a_trace_that_never_failed() {
        let mut t = Trace::new("fig2-p4", 1);
        crate::pin(&mut t).unwrap();
        let bogus = Violation::Blackhole {
            flow: p4update_net::FlowId(0),
            at: p4update_net::NodeId(0),
        };
        assert!(shrink(&t, &bogus).is_err());
    }
}
